"""Setup shim + optional compiled-kernel build.

All metadata lives in pyproject.toml; this file (a) keeps
``pip install -e . --no-use-pep517`` working in offline environments that
lack the ``wheel`` package, and (b) builds the optional C event-kernel
backend (``repro.sim._ckernel``).  The extension is best-effort: when no
C compiler/Python headers are available the build warns and continues,
and ``repro.sim.kernel`` silently falls back to the pure-Python kernel.

Build it in a source checkout with::

    python setup.py build_ext --inplace
"""

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class OptionalBuildExt(build_ext):
    """Treat every extension as optional: warn instead of failing."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # toolchain missing entirely
            self._warn(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # compile/link failure
            self._warn(exc)

    @staticmethod
    def _warn(exc):
        print(f"warning: compiled simulator backend not built ({exc}); "
              "falling back to the pure-Python kernel")


setup(
    ext_modules=[
        Extension(
            "repro.sim._ckernel",
            sources=["src/repro/sim/_ckernel.c"],
            extra_compile_args=["-O2"],
            optional=True,
        ),
    ],
    cmdclass={"build_ext": OptionalBuildExt},
)
