"""Thin setup.py shim.

All metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-use-pep517`` works in offline environments that lack
the ``wheel`` package (PEP 660 editable installs need it).
"""

from setuptools import setup

setup()
