"""Locking-granularity study: does GLocks change how you should lock?

A bank of 16 counters is protected by 1, 4 or 16 locks (coarse -> fine).
With software locks, finer granularity is the classic fix for contention —
you pay more lock instances to get parallelism.  With GLocks the *single*
coarse lock is already nearly free per handoff, but it still serializes the
critical sections; meanwhile the chip only has a couple of G-line networks,
so fine granularity must fall back to software locks for most banks.

The study prints makespans for each (granularity, lock kind) pair,
illustrating the design question the paper's provisioning decision raises.

Run: ``python examples/granularity_study.py``
"""

from repro import CMPConfig, Machine
from repro.analysis.report import format_table

N_CORES = 16
N_BANKS = 16
ITERS = 30


def run_config(n_locks: int, kind: str):
    machine = Machine(CMPConfig.baseline(N_CORES), allow_glock_sharing=True)
    locks = [machine.make_lock(kind, name=f"bank{i}") for i in range(n_locks)]
    banks = machine.mem.address_space.alloc_words_padded(N_BANKS)

    def make_program(core):
        def program(ctx):
            for i in range(ITERS):
                bank = (core * 7 + i * 3) % N_BANKS  # scattered bank access
                lock = locks[bank % n_locks]
                yield from ctx.acquire(lock)
                yield from ctx.rmw(banks[bank], lambda v: v + 1)
                yield from ctx.release(lock)
                yield from ctx.compute(25)
        return program

    result = machine.run([make_program(c) for c in range(N_CORES)])
    total = sum(machine.mem.backing.read(b) for b in banks)
    assert total == N_CORES * ITERS
    return result.makespan


def main():
    rows = []
    for n_locks in (1, 4, 16):
        row = [f"{n_locks} lock(s)"]
        for kind in ("mcs", "glock"):
            row.append(run_config(n_locks, kind))
        rows.append(row)
    print(format_table(
        ["granularity", "MCS makespan", "GLocks makespan"], rows,
        title=f"Locking granularity: {N_BANKS} counter banks, "
              f"{N_CORES} cores (GLocks share 2 physical networks)"))
    print("\nMCS needs fine granularity to scale; a single GLock already "
          "closes most of the\ngap, and with 16 program locks multiplexed "
          "onto 2 G-line networks the hardware\nbudget, not the algorithm, "
          "becomes the limit — the provisioning question the\npaper's "
          "future work raises.")


if __name__ == "__main__":
    main()
