"""Multiprogrammed GLock sharing — the paper's second future-work item.

Two independent "applications" time-share one chip: app A (cores 0-7) runs
an SCTR-style hot loop in two phases with different locks, app B (cores
8-15) runs a producer/consumer pair.  Four program-level locks compete for
the chip's two physical GLock networks through the dynamic virtualization
manager: locks bind on first use, idle networks are stolen when an app
changes phase, and when everything is hot the loser degrades to its TATAS
fallback instead of blocking.

Run: ``python examples/multiprogrammed.py``
"""

from repro import CMPConfig, Machine
from repro.core import DynamicGLockManager


def main():
    machine = Machine(CMPConfig.baseline(16))  # 2 physical GLocks
    manager = DynamicGLockManager(machine.glocks, machine.mem)
    mem = machine.mem

    lock_a1 = manager.make_lock("appA-phase1")
    lock_a2 = manager.make_lock("appA-phase2")
    lock_b = manager.make_lock("appB-queue")
    counters = {lk.name: mem.address_space.alloc_line()
                for lk in (lock_a1, lock_a2, lock_b)}

    def app_a(ctx):
        # phase 1: hammer lock_a1; phase 2: switch to lock_a2 (lock_a1 goes
        # quiet and its network becomes stealable)
        for lock in (lock_a1, lock_a2):
            for _ in range(20):
                yield from ctx.acquire(lock)
                yield from ctx.rmw(counters[lock.name], lambda v: v + 1)
                yield from ctx.release(lock)
                yield from ctx.compute(40)

    def app_b(ctx):
        for _ in range(40):
            yield from ctx.acquire(lock_b)
            yield from ctx.rmw(counters[lock_b.name], lambda v: v + 1)
            yield from ctx.release(lock_b)
            yield from ctx.compute(40)

    programs = [app_a] * 8 + [app_b] * 8
    result = machine.run(programs)

    for name, addr in counters.items():
        print(f"{name:13} critical sections: {mem.backing.read(addr)}")
    print(f"\nmakespan: {result.makespan} cycles")
    print(f"binding events: {manager.binds} binds, {manager.steals} steals, "
          f"{manager.fallbacks} fallback acquisitions")
    print("\nthe phase change let appA's second lock steal the network its "
          "first lock\nwent quiet on — no reprovisioning, no correctness "
          "risk, graceful fallback\nwhen demand exceeds the two physical "
          "networks.")


if __name__ == "__main__":
    main()
