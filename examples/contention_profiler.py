"""Contention profiler: the paper's post-mortem grAC/LCR methodology.

Runs the Raytrace proxy with test-and-test&set on every lock, records the
number of concurrent requesters cycle by cycle, and prints each lock's
contention profile — how a practitioner would decide *which* locks deserve
one of the chip's few hardware GLocks (Section IV-B / Figure 7).

Run: ``python examples/contention_profiler.py``
"""

import numpy as np

from repro import CMPConfig, Machine
from repro.analysis import analyze_contention
from repro.analysis.report import format_table
from repro.workloads import make_workload

N_CORES = 16
SCALE = 0.25


def sparkline(lcr: np.ndarray, bins: int = 8) -> str:
    """Tiny ASCII histogram of the LCR distribution over grAC."""
    ramp = " .:-=+*#%@"
    grouped = np.array_split(lcr[1:], bins)
    levels = [chunk.sum() for chunk in grouped]
    peak = max(levels) or 1.0
    return "".join(ramp[min(int(9 * lvl / peak), 9)] for lvl in levels)


def main():
    machine = Machine(CMPConfig.baseline(N_CORES))
    workload = make_workload("raytr", scale=SCALE)
    instance = workload.instantiate(machine, hc_kind="tatas",
                                    other_kind="tatas")
    print(f"profiling {instance.name}: {instance.n_locks} locks on "
          f"{N_CORES} cores ...")
    result = machine.run(instance.programs)
    instance.validate(machine)

    profiles = analyze_contention(result, instance.lock_labels)
    rows = []
    for label in sorted(profiles):
        p = profiles[label]
        rows.append([
            label,
            p.n_acquires,
            p.total_cycles,
            f"{p.aggregate_rate(N_CORES // 2):.0%}",
            sparkline(p.lcr()),
        ])
    print(format_table(
        ["lock", "acquires", "contended cycles", f"grAC>={N_CORES // 2}",
         "LCR profile (low->high grAC)"],
        rows,
        title="Lock contention profiles (TATAS post-mortem)",
    ))
    hc = max(profiles.values(), key=lambda p: p.total_cycles)
    print(f"\nverdict: give '{hc.label}' (and friends with similar profiles) "
          "a hardware GLock;\nleave the flat-profile locks on TATAS — the "
          "paper's hybrid recipe.")


if __name__ == "__main__":
    main()
