"""Quickstart: simulate a 16-core CMP where all cores hammer one counter.

Builds the machine, creates one hardware GLock and one MCS lock, runs the
same program under both, and prints execution time, traffic and energy —
a two-minute tour of the library's public API.

Run: ``python examples/quickstart.py``
"""

from repro import CMPConfig, Machine
from repro.energy import account_run, ed2p


def make_program(lock, counter, iterations):
    def program(ctx):
        for _ in range(iterations):
            yield from ctx.acquire(lock)
            value = yield from ctx.load(counter)
            yield from ctx.store(counter, value + 1)
            yield from ctx.release(lock)
            yield from ctx.compute(50)  # non-critical work

    return program


def run_once(lock_kind: str, n_cores: int = 16, iterations: int = 40):
    machine = Machine(CMPConfig.baseline(n_cores))
    lock = machine.make_lock(lock_kind, name=f"{lock_kind}-demo")
    counter = machine.mem.address_space.alloc_line()
    program = make_program(lock, counter, iterations)
    result = machine.run([program] * n_cores)
    expected = n_cores * iterations
    got = machine.mem.backing.read(counter)
    assert got == expected, f"lost updates: {got} != {expected}"
    energy = account_run(result)
    return result, energy


def main():
    print("GLocks quickstart: 16 cores incrementing one shared counter\n")
    baseline = None
    for kind in ("mcs", "glock"):
        result, energy = run_once(kind)
        metric = ed2p(energy, result.makespan)
        if baseline is None:
            baseline = (result, metric)
        norm_t = result.makespan / baseline[0].makespan
        norm_e = metric / baseline[1]
        print(f"[{kind:5}] makespan = {result.makespan:8d} cycles "
              f"(x{norm_t:.2f} vs MCS)")
        print(f"        lock time   = {result.category_fractions()['lock']:.0%}")
        print(f"        NoC traffic = {result.total_traffic:8d} switch-bytes")
        print(f"        full-chip ED2P = {metric:.3e} pJ*cyc^2 "
              f"(x{norm_e:.2f} vs MCS)")
        print()
    print("GLocks: same program, same data — the lock just stopped costing "
          "coherence traffic.")


if __name__ == "__main__":
    main()
