"""Power over time: watch a lock storm on the power rail.

Runs the ACTR pattern (lock phase / barrier / lock phase) under MCS and
under GLocks with a power sampler attached, then prints an ASCII power
timeline.  Under MCS every lock phase lights up the NoC and the L1s
(invalidation storms + queue spinning); under GLocks the same phases sip
sub-picojoule G-line signals.

Run: ``python examples/power_phases.py``
"""

from repro import CMPConfig, Machine
from repro.energy import PowerSampler
from repro.workloads import make_workload

N_CORES = 16
WINDOW = 3000
BAR = " .:-=+*#%@"


def run_sampled(kind):
    machine = Machine(CMPConfig.baseline(N_CORES))
    inst = make_workload("actr", scale=0.25).instantiate(machine, hc_kind=kind)
    sampler = PowerSampler(machine, window=WINDOW)
    sampler.attach()
    result = machine.run(inst.programs)
    inst.validate(machine)
    return sampler.power_series(), result


def render(series, peak):
    cells = []
    for sample in series:
        level = min(int(9 * sample.watts / peak), 9)
        cells.append(BAR[level])
    return "".join(cells)


def main():
    series = {}
    for kind in ("mcs", "glock"):
        series[kind], result = run_sampled(kind)
        avg = sum(s.watts for s in series[kind]) / len(series[kind])
        print(f"[{kind:5}] {len(series[kind])} windows of {WINDOW} cycles, "
              f"avg power {avg:.3f} W, makespan {result.makespan}")
    peak = max(s.watts for ser in series.values() for s in ser)
    print(f"\npower timeline ({WINDOW}-cycle windows, peak = {peak:.3f} W):")
    for kind in ("mcs", "glock"):
        print(f"  {kind:5} |{render(series[kind], peak)}|")
    print("\nsame program, same phases — the MCS bar runs hotter and longer "
          "because every\nlock phase is a coherence storm; the GLocks run "
          "ends sooner at lower draw.")


if __name__ == "__main__":
    main()
