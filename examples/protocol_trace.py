"""Protocol trace: watch the paper's Figure 4 choreography, live.

Attaches a tracer to a 9-core CMP (the paper's running example) and makes
all nine cores request one GLock in the same cycle, then prints every
G-line signal and lock event — REQ waves at cycle 1/2, the first TOKEN at
cycle 4, 2-cycle intra-row handoffs, and the REL/TOKEN hops through the
primary between rows.  For contrast, the same scenario under MCS prints
the coherence-message storm the GLock network replaces.

Run: ``python examples/protocol_trace.py``
"""

from repro import CMPConfig, Machine
from repro.sim import Tracer


def run_traced(lock_kind: str, categories):
    machine = Machine(CMPConfig.baseline(9))
    tracer = Tracer(categories=categories)
    machine.sim.tracer = tracer
    lock = machine.make_lock(lock_kind)

    def program(ctx):
        yield from ctx.acquire(lock)
        yield from ctx.compute(10)  # a short critical section
        yield from ctx.release(lock)

    machine.run([program] * 9)
    return tracer


def main():
    print("=== GLocks: all 9 cores request at cycle 0 (paper Figure 4) ===")
    tracer = run_traced("glock", categories=("gline", "lock"))
    print(tracer.render(limit=60))
    grants = [e for e in tracer.events("lock") if "granted" in e.description]
    releases = [e for e in tracer.events("lock") if "release" in e.description]
    handoff = grants[1].time - releases[0].time
    print(f"\n{len(grants)} grants; first at cycle {grants[0].time} "
          f"(paper Fig. 4: cycle 4); intra-row handoff = {handoff} cycles "
          "from release to next grant (paper: REL + TOKEN, 2 cycles)\n")

    print("=== same scenario under MCS: the coherence storm ===")
    tracer = run_traced("mcs", categories=("noc",))
    msgs = tracer.events("noc")
    print(f"{len(msgs)} protocol messages on the main data network "
          "(GLocks sent zero). First 15:")
    print(tracer.render(limit=15))


if __name__ == "__main__":
    main()
