"""Scaling study: application speedups under MCS vs GLocks (mini Table IV).

Runs the three application proxies at 2..16 cores with both lock
implementations at reduced input scale and prints the speedup table —
showing where lock overhead starts eating parallel efficiency and how a
2-4-cycle hardware lock pushes that point out.

Run: ``python examples/scaling_study.py``
"""

from repro.analysis.report import format_table
from repro.experiments.common import run_benchmark

APPS = ("raytr", "ocean", "qsort")
CORES = (2, 4, 8, 16)
SCALE = 0.25


def main():
    rows = []
    for name in APPS:
        base = run_benchmark(name, "mcs", n_cores=1, scale=SCALE).makespan
        for kind, label in (("mcs", "MCS"), ("glock", "GL")):
            speedups = [
                base / run_benchmark(name, kind, n_cores=n, scale=SCALE).makespan
                for n in CORES
            ]
            rows.append([name.upper(), label] + [f"{s:.2f}" for s in speedups])
    print(format_table(
        ["Benchmark", "Locks"] + [f"{n} cores" for n in CORES], rows,
        title=f"Application scaling (inputs at {SCALE:.0%} of Table III)",
    ))
    print("\nGL rows should dominate their MCS rows, with the gap widening "
          "as cores grow\n(the full-scale 4..32-core version is "
          "benchmarks/bench_table4_speedup.py).")


if __name__ == "__main__":
    main()
