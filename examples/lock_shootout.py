"""Lock shootout: every lock algorithm under rising contention.

Runs the single-counter workload with each lock kind at 2, 8 and 32 cores
and prints cycles-per-critical-section and total NoC traffic — the Section
II story in one table: simple algorithms degrade with contention, queue
locks stay flat but pay a constant overhead, GLocks stay flat *and* cheap.

Run: ``python examples/lock_shootout.py``
"""

from repro import CMPConfig, Machine
from repro.analysis.report import format_table
from repro.locks import LOCK_KINDS

CORE_COUNTS = (2, 8, 32)
ITERS_TOTAL = 320


def measure(kind: str, n_cores: int):
    machine = Machine(CMPConfig.baseline(n_cores))
    lock = machine.make_lock(kind)
    counter = machine.mem.address_space.alloc_line()
    per_thread = ITERS_TOTAL // n_cores

    def program(ctx):
        for _ in range(per_thread):
            yield from ctx.acquire(lock)
            value = yield from ctx.load(counter)
            yield from ctx.store(counter, value + 1)
            yield from ctx.release(lock)

    result = machine.run([program] * n_cores)
    assert machine.mem.backing.read(counter) == per_thread * n_cores
    n_cs = per_thread * n_cores
    return result.makespan / n_cs, result.total_traffic / n_cs


def main():
    rows = []
    for kind in LOCK_KINDS:
        cells = [kind]
        for n in CORE_COUNTS:
            cyc, traffic = measure(kind, n)
            cells.append(f"{cyc:7.1f} / {traffic:6.0f}")
        rows.append(cells)
    headers = ["lock"] + [f"{n} cores (cyc/CS / B/CS)" for n in CORE_COUNTS]
    print(format_table(headers, rows,
                       title="Lock shootout: cycles and switch-bytes per "
                             "critical section"))
    print("\nReading guide: spin locks explode with cores; queue locks stay "
          "flatter but pay a\nconstant handoff; GLocks track the "
          "physically-impossible ideal lock almost\nexactly — the bytes left "
          "on their row are the shared counter itself, not the lock.")


if __name__ == "__main__":
    main()
