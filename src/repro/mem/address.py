"""Address arithmetic and a bump allocator for workload data layout.

The simulator's address space is flat and word-grained (8-byte words).
Workloads use :class:`AddressSpace` to lay out shared variables with explicit
control over cache-line placement — e.g. SCTR places its counter and lock in
distinct lines, MCTR pads its per-thread counters one per line.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

__all__ = ["WORD_BYTES", "AddressSpace", "line_of", "home_of"]

WORD_BYTES = 8


def line_of(addr: int, line_bytes: int) -> int:
    """Line-aligned base address containing ``addr``."""
    return addr & ~(line_bytes - 1)


def home_of(line_addr: int, line_bytes: int, n_tiles: int) -> int:
    """Home L2 slice for a line: round-robin line interleaving across tiles."""
    return (line_addr // line_bytes) % n_tiles


class AddressSpace:
    """Bump allocator over the simulated flat address space.

    Allocations may carry a ``label``; :meth:`describe` maps an address
    back to ``label+offset``, which is how diagnostics (e.g. the race
    detector's reports) name a raw address after the fact.  Labels are
    pure metadata — they never affect layout or simulation results.
    """

    def __init__(self, line_bytes: int = 64, base: int = 0x10000) -> None:
        self.line_bytes = line_bytes
        self._next = base
        # (start, end, label) regions, in allocation (= address) order
        self._regions: List[Tuple[int, int, str]] = []

    def alloc(self, n_bytes: int, align: int = WORD_BYTES,
              label: Optional[str] = None) -> int:
        """Allocate ``n_bytes`` aligned to ``align`` (power of two)."""
        if align & (align - 1):
            raise ValueError(f"alignment {align} not a power of two")
        addr = (self._next + align - 1) & ~(align - 1)
        self._next = addr + n_bytes
        if label is not None:
            self._regions.append((addr, addr + n_bytes, label))
        return addr

    def alloc_word(self, label: Optional[str] = None) -> int:
        """Allocate one word."""
        return self.alloc(WORD_BYTES, label=label)

    def alloc_line(self, label: Optional[str] = None) -> int:
        """Allocate a full, line-aligned cache line; returns its base."""
        return self.alloc(self.line_bytes, align=self.line_bytes, label=label)

    def alloc_words_padded(self, count: int,
                           label: Optional[str] = None) -> List[int]:
        """Allocate ``count`` words, each in its own cache line (no false
        sharing) — the layout MCTR and MCS queue nodes use."""
        return [self.alloc_line(label=None if label is None
                                else f"{label}[{i}]")
                for i in range(count)]

    def alloc_array(self, n_words: int, label: Optional[str] = None) -> int:
        """Allocate a dense array of words; returns the base address."""
        return self.alloc(n_words * WORD_BYTES, align=self.line_bytes,
                          label=label)

    def describe(self, addr: int) -> str:
        """``label+0xOFF`` for a labelled address, else plain hex."""
        for start, end, label in self._regions:
            if start <= addr < end:
                offset = addr - start
                return label if offset == 0 else f"{label}+{offset:#x}"
        return hex(addr)
