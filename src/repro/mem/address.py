"""Address arithmetic and a bump allocator for workload data layout.

The simulator's address space is flat and word-grained (8-byte words).
Workloads use :class:`AddressSpace` to lay out shared variables with explicit
control over cache-line placement — e.g. SCTR places its counter and lock in
distinct lines, MCTR pads its per-thread counters one per line.
"""

from __future__ import annotations

from typing import List

__all__ = ["WORD_BYTES", "AddressSpace", "line_of", "home_of"]

WORD_BYTES = 8


def line_of(addr: int, line_bytes: int) -> int:
    """Line-aligned base address containing ``addr``."""
    return addr & ~(line_bytes - 1)


def home_of(line_addr: int, line_bytes: int, n_tiles: int) -> int:
    """Home L2 slice for a line: round-robin line interleaving across tiles."""
    return (line_addr // line_bytes) % n_tiles


class AddressSpace:
    """Bump allocator over the simulated flat address space."""

    def __init__(self, line_bytes: int = 64, base: int = 0x10000) -> None:
        self.line_bytes = line_bytes
        self._next = base

    def alloc(self, n_bytes: int, align: int = WORD_BYTES) -> int:
        """Allocate ``n_bytes`` aligned to ``align`` (power of two)."""
        if align & (align - 1):
            raise ValueError(f"alignment {align} not a power of two")
        addr = (self._next + align - 1) & ~(align - 1)
        self._next = addr + n_bytes
        return addr

    def alloc_word(self) -> int:
        """Allocate one word."""
        return self.alloc(WORD_BYTES)

    def alloc_line(self) -> int:
        """Allocate a full, line-aligned cache line; returns its base."""
        return self.alloc(self.line_bytes, align=self.line_bytes)

    def alloc_words_padded(self, count: int) -> List[int]:
        """Allocate ``count`` words, each in its own cache line (no false
        sharing) — the layout MCTR and MCS queue nodes use."""
        return [self.alloc_line() for _ in range(count)]

    def alloc_array(self, n_words: int) -> int:
        """Allocate a dense array of words; returns the base address."""
        return self.alloc(n_words * WORD_BYTES, align=self.line_bytes)
