"""Private L1 data-cache controller (MESI).

The L1 exposes coroutine methods (``load`` / ``store`` / ``rmw`` /
``spin_until``) that the core's thread program drives with ``yield from``,
and a :meth:`handle` callback the mesh invokes for incoming protocol
messages (data grants, invalidations, recalls).

Linearization rule (see DESIGN.md): a memory operation's *value effect* is
applied to the global backing store at the instant the L1 gains sufficient
permission (hit start, or fill/grant arrival).  The residual hit latency is
pure timing.  Because the directory serializes M ownership per line and
invalidates all sharers before granting M, this makes the value history per
word identical to the directory's serialization order — no values ever need
to travel inside protocol messages.

Spin-wait modelling: ``spin_until`` reads the word, and if the predicate
fails it sleeps on a per-line *watch* signal that fires when the line is
invalidated, recalled or evicted — the exact moments a real
test-and-test&set spin loop could first observe a new value.  The elapsed
spin reads are replayed into the L1 access statistics so timing, traffic
and energy match the naive cycle-by-cycle loop (DESIGN.md substitution 3).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.mem import protocol as P
from repro.mem.address import WORD_BYTES, home_of, line_of
from repro.mem.backing import BackingStore
from repro.mem import cache
from repro.noc.messages import Message
from repro.noc.topology import Mesh
from repro.sim.config import CMPConfig
from repro.sim.kernel import Signal, Simulator, compiled_impl
from repro.sim.stats import CounterSet

__all__ = ["L1Cache"]

# MESI states kept in the tag array
M, E, S = "M", "E", "S"

# fill reply kind -> resulting MESI state (module constant: _install runs
# once per miss and must not rebuild this map each time)
_FILL_STATE = {P.DATA: S, P.DATA_E: E, P.DATA_M: M}

#: sentinel returned by :meth:`L1Cache.try_hit` when the access needs a
#: directory transaction (distinct from every real word value, None included)
MISS = object()


class L1Cache:
    """One core's private L1 data cache."""

    def __init__(
        self,
        sim: Simulator,
        config: CMPConfig,
        core_id: int,
        mesh: Mesh,
        backing: BackingStore,
        counters: CounterSet,
    ) -> None:
        self.sim = sim
        self.config = config
        self.core_id = core_id
        self.mesh = mesh
        self.backing = backing
        self.counters = counters
        # cache.TagArray rather than a direct import: the binding follows
        # the active kernel backend (see repro.mem.cache._bind_backend)
        self.tags = cache.TagArray(config.l1)
        self.hit_latency = config.l1.latency
        # hot-path constants, resolved once (line_of/home_of inlined in
        # the access path: these run once or more per memory access)
        self._line_mask = ~(config.line_bytes - 1)
        self._line_bytes = config.line_bytes
        self._n_tiles = config.n_cores
        self._noc = config.noc
        # fused make_msg+send entry point, resolved once (bound C method
        # when the compiled mesh core is active)
        self._send_proto = mesh.send_proto
        # the line of the outstanding transaction, if any; its reply is
        # always delivered through the (reused) _fill_sig because in-order
        # cores have exactly one op in flight
        self._pending: Optional[int] = None
        self._fill_sig = sim.signal(f"l1-{core_id}-fill")
        # line -> watch signal for spin_until sleepers; signals persist
        # across fires so the spin-wakeup path allocates nothing
        self._watches: Dict[int, Signal] = {}
        # hot counters, resolved once (these are bumped per memory access)
        self._c_accesses = counters.bind("l1.accesses")
        self._c_misses = counters.bind("l1.misses")
        self._c_rmw = counters.bind("l1.rmw")
        self._c_spin_cycles = counters.bind("l1.spin_cycles")
        # compiled fast path: when both the tag array and the simulator
        # come from the compiled backend, the whole try_hit body (tag
        # probe, E->M upgrade, LRU touch, backing-store word op, access
        # counter) runs as one C call; the instance attribute shadows
        # the method for every caller that binds self.try_hit
        impl = compiled_impl()
        if (impl is not None and type(sim) is impl.Simulator
                and type(self.tags) is impl.TagArray):
            self.try_hit = impl.L1Hit(
                self.tags, backing._words, self._c_accesses,
                MISS, M, E, WORD_BYTES).try_hit

    # ------------------------------------------------------------------ #
    # public coroutine API (driven by the core with `yield from`)
    # ------------------------------------------------------------------ #
    def load(self, addr: int):
        """Coroutine: read one word; returns its value."""
        value = yield from self._access(addr & self._line_mask, False,
                                        addr, None, None)
        return value

    def store(self, addr: int, value: int):
        """Coroutine: write one word."""
        yield from self._access(addr & self._line_mask, True,
                                addr, value, None)

    def rmw(self, addr: int, fn: Callable[[int], int]):
        """Coroutine: atomic read-modify-write; returns the *old* value.

        Implements the hardware primitives every software lock builds on:
        ``test&set`` (``fn=lambda v: 1``), ``fetch&increment``, ``swap``
        and — by comparing the returned old value — ``compare&swap``.
        """
        old = yield from self._access(addr & self._line_mask, True,
                                      addr, None, fn)
        self._c_rmw.value += 1
        return old

    def spin_until(self, addr: int, predicate: Callable[[int], bool]):
        """Coroutine: busy-wait until ``predicate(word)`` holds; returns it.

        Event-driven equivalent of a test-and-test&set spin loop (see module
        docstring).
        """
        line = addr & self._line_mask
        while True:
            value = self.try_hit(line, False, addr, None, None)
            if value is MISS:
                value = yield from self._miss(line, False, addr, None, None)
            else:
                yield self.hit_latency
            if predicate(value):
                return value
            if self.tags.lookup(line) is None:
                # invalidated between the load and now -> re-read immediately
                continue
            watch = self._watches.get(line)
            if watch is None:
                watch = self._watches[line] = self.sim.signal(f"watch{line:#x}")
            started = self.sim.now
            yield watch
            waited = self.sim.now - started
            # replay the cache hits a real spin loop would have performed
            self._c_accesses.value += waited // max(self.hit_latency, 1)
            self._c_spin_cycles.value += waited

    # ------------------------------------------------------------------ #
    # core access path
    # ------------------------------------------------------------------ #
    def try_hit(self, line: int, want_m: bool, addr: int,
                value: Optional[int], fn: Optional[Callable[[int], int]]):
        """Plain-function hit path: apply the op and return its result.

        Returns :data:`MISS` when the line lacks sufficient permission and
        a directory transaction (:meth:`_miss`) is needed.  Callers on the
        hit path still owe the L1 hit latency (``yield hit_latency``) —
        keeping this a non-coroutine saves a generator frame on the single
        hottest call of the whole simulator.

        The memory operation is encoded positionally instead of as an
        ``apply`` closure — allocating a lambda per access dominated the
        hit path: fn -> rmw, else want_m -> store, else load.
        """
        tags = self.tags
        state = tags.lookup(line)
        if state is None or (want_m and state != M and state != E):
            return MISS
        if want_m and state == E:
            tags.set_state(line, M)  # silent E->M upgrade
        tags.touch(line)
        if fn is not None:
            result = self.backing.apply(addr, fn)
        elif want_m:
            result = self.backing.write(addr, value)
        else:
            result = self.backing.read(addr)
        self._c_accesses.value += 1
        return result

    def _access(self, line: int, want_m: bool, addr: int,
                value: Optional[int], fn: Optional[Callable[[int], int]]):
        result = self.try_hit(line, want_m, addr, value, fn)
        if result is not MISS:
            yield self.hit_latency
            return result
        return (yield from self._miss(line, want_m, addr, value, fn))

    def _miss(self, line: int, want_m: bool, addr: int,
              value: Optional[int], fn: Optional[Callable[[int], int]]):
        # miss (or S->M upgrade): one transaction through the directory
        state = self.tags.lookup(line)
        self._c_misses.value += 1
        if self._pending is not None:
            raise RuntimeError(
                f"L1 {self.core_id}: second outstanding miss on "
                f"line {line:#x} (cores are in-order)"
            )
        self._pending = line
        home = (line // self._line_bytes) % self._n_tiles
        if not want_m:
            kind = P.GETS
        elif state is not None:
            kind = P.UPGRADE  # we still hold S; a dataless grant suffices
        else:
            kind = P.GETM
        self._send_proto(self._noc, self.core_id, home, kind, line)
        yield self._fill_sig  # fires once handle() has installed the line
        # the line was installed synchronously in handle() at delivery time,
        # so same-cycle recalls/invalidations observe a consistent tag state
        if fn is not None:
            result = self.backing.apply(addr, fn)
        elif want_m:
            result = self.backing.write(addr, value)
        else:
            result = self.backing.read(addr)
        self._c_accesses.value += 1
        yield self.hit_latency
        return result

    def _evict(self, line: int, state: object) -> None:
        home = home_of(line, self.config.line_bytes, self.config.n_cores)
        if state == M:
            self.counters.add("l1.writebacks")
            self._send_proto(self._noc, self.core_id, home, P.WB_DATA, line)
        elif state == E:
            self._send_proto(self._noc, self.core_id, home, P.EVICT_CLEAN, line)
        # S evictions are silent
        self._wake_watchers(line)

    # ------------------------------------------------------------------ #
    # incoming protocol messages (mesh callback)
    # ------------------------------------------------------------------ #
    def handle(self, msg: Message) -> None:
        """Process a message routed to this L1 by the tile dispatcher.

        Kept as the catch-all entry point for tests and direct callers;
        the tile route table delivers straight to the per-kind handlers
        below, so no kind chain runs on the hot delivery path.
        """
        kind = msg.kind
        if kind in (P.DATA, P.DATA_E, P.DATA_M, P.GRANT_M, P.DATA_C2C):
            self._on_fill(msg)
        elif kind == P.INV:
            self._on_inv(msg)
        elif kind in (P.FWD_GETS, P.FWD_GETM):
            self._handle_forward(msg)
        else:  # pragma: no cover - dispatcher guarantees the kind set
            raise RuntimeError(f"L1 {self.core_id}: unexpected {msg.kind}")

    def route_table(self) -> Dict[str, Callable[[Message], None]]:
        """Kind -> handler map for the tile dispatcher (one probe per msg)."""
        table = {kind: self._on_fill
                 for kind in (P.DATA, P.DATA_E, P.DATA_M, P.GRANT_M,
                              P.DATA_C2C)}
        table[P.INV] = self._on_inv
        table[P.FWD_GETS] = self._handle_forward
        table[P.FWD_GETM] = self._handle_forward
        return table

    def _on_fill(self, msg: Message) -> None:
        """Data grant / upgrade grant / cache-to-cache fill delivery.

        The line-install logic is folded in (rather than a helper call):
        this handler runs once per L1 miss.
        """
        line = msg.payload["line"]
        if self._pending != line:
            raise RuntimeError(
                f"L1 {self.core_id}: fill for {line:#x} but "
                f"pending {self._pending!r}"
            )
        self._pending = None
        kind = msg.kind
        tags = self.tags
        if kind == P.GRANT_M:
            # upgrade: the line must still be resident in S
            tags.set_state(line, M)
            tags.touch(line)
            self._fill_sig.fire(msg)
            return
        if kind == P.DATA_C2C:
            new_state = M if msg.payload["extra"]["grant"] == "M" else S
        else:
            new_state = _FILL_STATE[kind]
        if tags.lookup(line) is not None:
            # S->M where the directory chose to send full data
            tags.set_state(line, new_state)
            tags.touch(line)
        else:
            victim = tags.insert(line, new_state)
            if victim is not None:
                self._evict(*victim)
        if kind == P.DATA_C2C:
            # tell the home the transfer landed so it can unblock the line
            home = (line // self._line_bytes) % self._n_tiles
            self._send_proto(self._noc, self.core_id, home, P.UNBLOCK, line)
        self._fill_sig.fire(msg)

    def _on_inv(self, msg: Message) -> None:
        """Directory invalidation: drop the line and ack the home."""
        line = msg.payload["line"]
        self.tags.invalidate(line)
        self._wake_watchers(line)
        home = (line // self._line_bytes) % self._n_tiles
        self._send_proto(self._noc, self.core_id, home, P.INV_ACK, line)

    def _handle_forward(self, msg: Message) -> None:
        """Serve a forwarded request with a direct cache-to-cache transfer."""
        line = msg.payload["line"]
        requester = msg.payload["extra"]["requester"]
        state = self.tags.lookup(line)
        home = (line // self._line_bytes) % self._n_tiles
        noc = self._noc
        if state is None:
            # already evicted; the eviction notice is ahead of this ack and
            # the home will serve the requester from its own copy
            self._send_proto(noc, self.core_id, home, P.RECALL_ACK,
                             line, {"present": False})
            return
        dirty = state == M
        if msg.kind == P.FWD_GETS:
            self.tags.set_state(line, S)
            grant = "S"
        else:
            self.tags.invalidate(line)
            self._wake_watchers(line)
            grant = "M"
        self.counters.add("l1.c2c_transfers")
        self._send_proto(noc, self.core_id, requester, P.DATA_C2C,
                         line, {"grant": grant})
        # notify the home (with data if we were dirty, so its L2 copy is
        # marked stale/dirty for writeback accounting)
        kind = P.RECALL_DATA if dirty and grant == "S" else P.RECALL_ACK
        self._send_proto(noc, self.core_id, home, kind,
                         line, {"present": True})

    def _wake_watchers(self, line: int) -> None:
        watch = self._watches.get(line)
        if watch is not None:
            watch.fire()

    # ------------------------------------------------------------------ #
    # introspection (tests/diagnostics)
    # ------------------------------------------------------------------ #
    def state_of(self, addr: int) -> Optional[str]:
        """MESI state of the line containing ``addr`` (None if absent)."""
        state = self.tags.lookup(line_of(addr, self.config.line_bytes))
        return None if state is None else str(state)
