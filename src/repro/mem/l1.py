"""Private L1 data-cache controller (MESI).

The L1 exposes coroutine methods (``load`` / ``store`` / ``rmw`` /
``spin_until``) that the core's thread program drives with ``yield from``,
and a :meth:`handle` callback the mesh invokes for incoming protocol
messages (data grants, invalidations, recalls).

Linearization rule (see DESIGN.md): a memory operation's *value effect* is
applied to the global backing store at the instant the L1 gains sufficient
permission (hit start, or fill/grant arrival).  The residual hit latency is
pure timing.  Because the directory serializes M ownership per line and
invalidates all sharers before granting M, this makes the value history per
word identical to the directory's serialization order — no values ever need
to travel inside protocol messages.

Spin-wait modelling: ``spin_until`` reads the word, and if the predicate
fails it sleeps on a per-line *watch* signal that fires when the line is
invalidated, recalled or evicted — the exact moments a real
test-and-test&set spin loop could first observe a new value.  The elapsed
spin reads are replayed into the L1 access statistics so timing, traffic
and energy match the naive cycle-by-cycle loop (DESIGN.md substitution 3).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.mem import protocol as P
from repro.mem.address import home_of, line_of
from repro.mem.backing import BackingStore
from repro.mem.cache import TagArray
from repro.noc.messages import Message
from repro.noc.topology import Mesh
from repro.sim.config import CMPConfig
from repro.sim.kernel import Signal, Simulator
from repro.sim.stats import CounterSet

__all__ = ["L1Cache"]

# MESI states kept in the tag array
M, E, S = "M", "E", "S"


class L1Cache:
    """One core's private L1 data cache."""

    def __init__(
        self,
        sim: Simulator,
        config: CMPConfig,
        core_id: int,
        mesh: Mesh,
        backing: BackingStore,
        counters: CounterSet,
    ) -> None:
        self.sim = sim
        self.config = config
        self.core_id = core_id
        self.mesh = mesh
        self.backing = backing
        self.counters = counters
        self.tags = TagArray(config.l1)
        self.hit_latency = config.l1.latency
        # the line of the outstanding transaction, if any; its reply is
        # always delivered through the (reused) _fill_sig because in-order
        # cores have exactly one op in flight
        self._pending: Optional[int] = None
        self._fill_sig = sim.signal(f"l1-{core_id}-fill")
        # line -> watch signal for spin_until sleepers; signals persist
        # across fires so the spin-wakeup path allocates nothing
        self._watches: Dict[int, Signal] = {}
        # hot counters, resolved once (these are bumped per memory access)
        self._c_accesses = counters.bind("l1.accesses")
        self._c_misses = counters.bind("l1.misses")
        self._c_rmw = counters.bind("l1.rmw")
        self._c_spin_cycles = counters.bind("l1.spin_cycles")

    # ------------------------------------------------------------------ #
    # public coroutine API (driven by the core with `yield from`)
    # ------------------------------------------------------------------ #
    def load(self, addr: int):
        """Coroutine: read one word; returns its value."""
        line = line_of(addr, self.config.line_bytes)
        value = yield from self._access(line, want_m=False,
                                        apply=lambda: self.backing.read(addr))
        return value

    def store(self, addr: int, value: int):
        """Coroutine: write one word."""
        line = line_of(addr, self.config.line_bytes)
        yield from self._access(line, want_m=True,
                                apply=lambda: self.backing.write(addr, value))

    def rmw(self, addr: int, fn: Callable[[int], int]):
        """Coroutine: atomic read-modify-write; returns the *old* value.

        Implements the hardware primitives every software lock builds on:
        ``test&set`` (``fn=lambda v: 1``), ``fetch&increment``, ``swap``
        and — by comparing the returned old value — ``compare&swap``.
        """
        line = line_of(addr, self.config.line_bytes)
        old = yield from self._access(line, want_m=True,
                                      apply=lambda: self.backing.apply(addr, fn))
        self._c_rmw.value += 1
        return old

    def spin_until(self, addr: int, predicate: Callable[[int], bool]):
        """Coroutine: busy-wait until ``predicate(word)`` holds; returns it.

        Event-driven equivalent of a test-and-test&set spin loop (see module
        docstring).
        """
        while True:
            value = yield from self.load(addr)
            if predicate(value):
                return value
            line = line_of(addr, self.config.line_bytes)
            if self.tags.lookup(line) is None:
                # invalidated between the load and now -> re-read immediately
                continue
            watch = self._watches.get(line)
            if watch is None:
                watch = self._watches[line] = self.sim.signal(f"watch{line:#x}")
            started = self.sim.now
            yield watch
            waited = self.sim.now - started
            # replay the cache hits a real spin loop would have performed
            self._c_accesses.value += waited // max(self.hit_latency, 1)
            self._c_spin_cycles.value += waited

    # ------------------------------------------------------------------ #
    # core access path
    # ------------------------------------------------------------------ #
    def _access(self, line: int, want_m: bool, apply: Callable[[], object]):
        state = self.tags.lookup(line)
        if state is not None and (not want_m or state in (M, E)):
            if want_m and state == E:
                self.tags.set_state(line, M)  # silent E->M upgrade
            self.tags.touch(line)
            result = apply()
            self._c_accesses.value += 1
            yield self.hit_latency
            return result
        # miss (or S->M upgrade): one transaction through the directory
        self._c_misses.value += 1
        if self._pending is not None:
            raise RuntimeError(
                f"L1 {self.core_id}: second outstanding miss on "
                f"line {line:#x} (cores are in-order)"
            )
        self._pending = line
        home = home_of(line, self.config.line_bytes, self.config.n_cores)
        if not want_m:
            kind = P.GETS
        elif state is not None:
            kind = P.UPGRADE  # we still hold S; a dataless grant suffices
        else:
            kind = P.GETM
        self.mesh.send(P.make_msg(self.config.noc, self.core_id, home, kind, line))
        yield self._fill_sig  # fires once handle() has installed the line
        # the line was installed synchronously in handle() at delivery time,
        # so same-cycle recalls/invalidations observe a consistent tag state
        result = apply()
        self._c_accesses.value += 1
        yield self.hit_latency
        return result

    def _install(self, line: int, reply_kind: str,
                 msg: Optional[Message] = None) -> None:
        if reply_kind == P.GRANT_M:
            # upgrade: the line must still be resident in S
            self.tags.set_state(line, M)
            self.tags.touch(line)
            return
        if reply_kind == P.DATA_C2C:
            new_state = M if msg.payload["extra"]["grant"] == "M" else S
        else:
            new_state = {P.DATA: S, P.DATA_E: E, P.DATA_M: M}[reply_kind]
        if self.tags.lookup(line) is not None:
            # S->M where the directory chose to send full data
            self.tags.set_state(line, new_state)
            self.tags.touch(line)
            return
        victim = self.tags.insert(line, new_state)
        if victim is not None:
            self._evict(*victim)

    def _evict(self, line: int, state: object) -> None:
        home = home_of(line, self.config.line_bytes, self.config.n_cores)
        if state == M:
            self.counters.add("l1.writebacks")
            self.mesh.send(
                P.make_msg(self.config.noc, self.core_id, home, P.WB_DATA, line)
            )
        elif state == E:
            self.mesh.send(
                P.make_msg(self.config.noc, self.core_id, home, P.EVICT_CLEAN, line)
            )
        # S evictions are silent
        self._wake_watchers(line)

    # ------------------------------------------------------------------ #
    # incoming protocol messages (mesh callback)
    # ------------------------------------------------------------------ #
    def handle(self, msg: Message) -> None:
        """Process a message routed to this L1 by the tile dispatcher."""
        line = msg.payload["line"]
        if msg.kind in (P.DATA, P.DATA_E, P.DATA_M, P.GRANT_M, P.DATA_C2C):
            if self._pending != line:
                raise RuntimeError(
                    f"L1 {self.core_id}: fill for {line:#x} but "
                    f"pending {self._pending!r}"
                )
            self._pending = None
            self._install(line, msg.kind, msg)
            if msg.kind == P.DATA_C2C:
                # tell the home the transfer landed so it can unblock the line
                home = home_of(line, self.config.line_bytes, self.config.n_cores)
                self.mesh.send(
                    P.make_msg(self.config.noc, self.core_id, home,
                               P.UNBLOCK, line)
                )
            self._fill_sig.fire(msg)
        elif msg.kind == P.INV:
            self.tags.invalidate(line)
            self._wake_watchers(line)
            home = home_of(line, self.config.line_bytes, self.config.n_cores)
            self.mesh.send(
                P.make_msg(self.config.noc, self.core_id, home, P.INV_ACK, line)
            )
        elif msg.kind in (P.FWD_GETS, P.FWD_GETM):
            self._handle_forward(msg, line)
        else:  # pragma: no cover - dispatcher guarantees the kind set
            raise RuntimeError(f"L1 {self.core_id}: unexpected {msg.kind}")

    def _handle_forward(self, msg: Message, line: int) -> None:
        """Serve a forwarded request with a direct cache-to-cache transfer."""
        requester = msg.payload["extra"]["requester"]
        state = self.tags.lookup(line)
        home = home_of(line, self.config.line_bytes, self.config.n_cores)
        noc = self.config.noc
        if state is None:
            # already evicted; the eviction notice is ahead of this ack and
            # the home will serve the requester from its own copy
            self.mesh.send(P.make_msg(noc, self.core_id, home, P.RECALL_ACK,
                                      line, {"present": False}))
            return
        dirty = state == M
        if msg.kind == P.FWD_GETS:
            self.tags.set_state(line, S)
            grant = "S"
        else:
            self.tags.invalidate(line)
            self._wake_watchers(line)
            grant = "M"
        self.counters.add("l1.c2c_transfers")
        self.mesh.send(P.make_msg(noc, self.core_id, requester, P.DATA_C2C,
                                  line, {"grant": grant}))
        # notify the home (with data if we were dirty, so its L2 copy is
        # marked stale/dirty for writeback accounting)
        kind = P.RECALL_DATA if dirty and grant == "S" else P.RECALL_ACK
        self.mesh.send(P.make_msg(noc, self.core_id, home, kind,
                                  line, {"present": True}))

    def _wake_watchers(self, line: int) -> None:
        watch = self._watches.get(line)
        if watch is not None:
            watch.fire()

    # ------------------------------------------------------------------ #
    # introspection (tests/diagnostics)
    # ------------------------------------------------------------------ #
    def state_of(self, addr: int) -> Optional[str]:
        """MESI state of the line containing ``addr`` (None if absent)."""
        state = self.tags.lookup(line_of(addr, self.config.line_bytes))
        return None if state is None else str(state)
