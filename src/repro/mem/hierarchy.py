"""Wiring of the full memory system: mesh + per-tile L1 and L2/directory.

:class:`MemorySystem` is the substrate object workloads and lock algorithms
talk to.  Each tile registers a single dispatcher with the mesh that routes
home-bound protocol messages to the tile's L2/directory slice and the rest
to its L1 (see :mod:`repro.mem.protocol` for the kind sets).

The memory controller is folded into the L2 slice: an L2 miss pays the
fixed 400-cycle DRAM latency and bumps ``mem.reads``/``mem.writes`` counters
(the paper models a fixed memory access time, Table II).
"""

from __future__ import annotations

from typing import List

from repro.mem import protocol as P
from repro.mem.address import AddressSpace
from repro.mem.backing import BackingStore
from repro.mem.l1 import L1Cache
from repro.mem.l2dir import L2DirectorySlice
from repro.noc.messages import Message
from repro.noc.topology import Mesh
from repro.sim.config import CMPConfig
from repro.sim.kernel import Simulator
from repro.sim.stats import CounterSet

__all__ = ["MemorySystem"]


class MemorySystem:
    """The complete coherent memory hierarchy of the simulated CMP."""

    def __init__(self, sim: Simulator, config: CMPConfig) -> None:
        self.sim = sim
        self.config = config
        self.counters = CounterSet()
        self.backing = BackingStore()
        self.address_space = AddressSpace(line_bytes=config.line_bytes)
        self.mesh = Mesh(sim, config)
        self.l1s: List[L1Cache] = [
            L1Cache(sim, config, i, self.mesh, self.backing, self.counters)
            for i in range(config.n_cores)
        ]
        self.l2s: List[L2DirectorySlice] = [
            L2DirectorySlice(sim, config, i, self.mesh, self.counters)
            for i in range(config.n_cores)
        ]
        for tile in range(config.n_cores):
            dispatch, route = self._make_dispatcher(tile)
            self.mesh.register(tile, dispatch, route=route)

    def _make_dispatcher(self, tile: int):
        # kind -> bound per-kind handler, resolved once per tile: routing
        # a message is then a single dict probe straight into the specific
        # protocol action, with no kind-test chain.  The table is also
        # handed to the mesh so the compiled core can deliver without
        # this Python frame.
        route = dict(self.l2s[tile].route_table())
        route.update(self.l1s[tile].route_table())

        def dispatch(msg: Message) -> None:
            handler = route.get(msg.kind)
            if handler is None:
                raise RuntimeError(f"tile {tile}: unroutable message {msg!r}")
            handler(msg)

        return dispatch, route

    # ------------------------------------------------------------------ #
    # initialization helpers
    # ------------------------------------------------------------------ #
    def warm_l2(self, base: int, n_bytes: int) -> None:
        """Pre-install an address range into its home L2 slices (untimed).

        Workloads call this for data their (untimed) initialization phase
        wrote — e.g. the QSort input array — so the timed parallel phase
        starts from the post-init cache state the paper measures, instead
        of paying artificial cold-DRAM misses.
        """
        from repro.mem.address import home_of, line_of

        line_bytes = self.config.line_bytes
        first = line_of(base, line_bytes)
        last = line_of(base + max(n_bytes, 1) - 1, line_bytes)
        for line in range(first, last + line_bytes, line_bytes):
            home = home_of(line, line_bytes, self.config.n_cores)
            l2 = self.l2s[home]
            if l2.tags.lookup(line) is None:
                l2.tags.insert(
                    line, "clean",
                    may_evict=lambda cand, l2=l2: not l2._entry(cand).held_by_l1,
                )

    # ------------------------------------------------------------------ #
    # convenience accessors
    # ------------------------------------------------------------------ #
    def l1(self, core_id: int) -> L1Cache:
        """The private L1 of ``core_id``."""
        return self.l1s[core_id]

    @property
    def traffic(self):
        """The mesh's :class:`~repro.noc.traffic.TrafficMeter`."""
        return self.mesh.traffic
