"""Home L2 slice + MESI directory controller.

Each tile owns one L2 slice; lines are interleaved across slices
round-robin (:func:`repro.mem.address.home_of`).  The directory is
*blocking per line*: while a GetS/GetM transaction for a line is in flight,
later GetS/GetM for the same line queue at the home and are served strictly
in arrival order.  This is the serialization point that makes the whole
memory system linearizable and is exactly the structure highly-contended
lock lines stress.

Owner responses (``RecallData``/``RecallAck``) can cross in flight with the
owner's own eviction notices (``WBData``/``EvictClean``); the home applies a
*first-owner-message-wins* rule — whichever arrives first completes the
recall, and a subsequent stale ``RecallAck(present=False)`` is dropped
(FIFO routing guarantees the eviction notice precedes the stale ack).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Set

from repro.mem import protocol as P
from repro.mem import cache
from repro.noc.messages import Message
from repro.noc.topology import Mesh
from repro.sim.config import CMPConfig
from repro.sim.kernel import Signal, Simulator
from repro.sim.stats import CounterSet

__all__ = ["L2DirectorySlice", "DIR_LATENCY"]

#: directory-state-only operation latency (the "+4" of the paper's "12+4")
DIR_LATENCY = 4

CLEAN, DIRTY = "clean", "dirty"


@dataclass(slots=True)
class DirEntry:
    """Directory state for one line homed at this slice."""

    owner: Optional[int] = None          # core holding E or M
    sharers: Set[int] = field(default_factory=set)
    busy: bool = False
    queue: Deque[Message] = field(default_factory=deque)
    owner_wait: Optional[Signal] = None  # forward response in flight
    pending_acks: int = 0
    ack_wait: Optional[Signal] = None
    unblock_wait: Optional[Signal] = None  # requester unblock in flight
    unblock_pending: bool = False          # unblock arrived early

    @property
    def held_by_l1(self) -> bool:
        return self.owner is not None or bool(self.sharers)


class L2DirectorySlice:
    """The home node logic for one tile."""

    def __init__(
        self,
        sim: Simulator,
        config: CMPConfig,
        tile_id: int,
        mesh: Mesh,
        counters: CounterSet,
    ) -> None:
        self.sim = sim
        self.config = config
        self.tile_id = tile_id
        self.mesh = mesh
        self.counters = counters
        self.tags = cache.TagArray(config.l2)
        self._dir: Dict[int, DirEntry] = {}
        self._noc = config.noc
        # fused make_msg+send entry point, resolved once (bound C method
        # when the compiled mesh core is active)
        self._send_proto = mesh.send_proto
        # hot counters, resolved once (bumped on every home transaction)
        self._c_accesses = counters.bind("l2.accesses")
        self._c_data_accesses = counters.bind("l2.data_accesses")
        self._c_forwards = counters.bind("l2.forwards")

    def _entry(self, line: int) -> DirEntry:
        entry = self._dir.get(line)
        if entry is None:
            entry = self._dir[line] = DirEntry()
        return entry

    def _send(self, dst: int, kind: str, line: int, extra: object = None) -> None:
        self._send_proto(self._noc, self.tile_id, dst, kind, line, extra)

    # ------------------------------------------------------------------ #
    # incoming messages (tile dispatcher callback)
    # ------------------------------------------------------------------ #
    def handle(self, msg: Message) -> None:
        """Process a home-bound protocol message.

        Catch-all entry point for tests and direct callers; the tile route
        table delivers straight to the per-kind handlers below.
        """
        kind = msg.kind
        if kind in (P.GETS, P.GETM, P.UPGRADE):
            self._on_request(msg)
        elif kind == P.INV_ACK:
            self._on_inv_ack(msg)
        elif kind == P.UNBLOCK:
            self._on_unblock(msg)
        elif kind in (P.WB_DATA, P.EVICT_CLEAN):
            self._on_owner_notice(msg)
        elif kind in (P.RECALL_DATA, P.RECALL_ACK):
            self._on_recall(msg)
        else:  # pragma: no cover - dispatcher guarantees the kind set
            raise RuntimeError(f"home {self.tile_id}: unexpected {kind}")

    def route_table(self) -> Dict[str, object]:
        """Kind -> handler map for the tile dispatcher (one probe per msg)."""
        table = {kind: self._on_request
                 for kind in (P.GETS, P.GETM, P.UPGRADE)}
        table[P.INV_ACK] = self._on_inv_ack
        table[P.UNBLOCK] = self._on_unblock
        table[P.WB_DATA] = self._on_owner_notice
        table[P.EVICT_CLEAN] = self._on_owner_notice
        table[P.RECALL_DATA] = self._on_recall
        table[P.RECALL_ACK] = self._on_recall
        return table

    def _on_request(self, msg: Message) -> None:
        """GetS / GetM / Upgrade: start or queue a transaction."""
        line = msg.payload["line"]
        # the ``self._entry`` probe is inlined in every per-kind handler:
        # these run once per delivered home-bound message
        entry = self._dir.get(line)
        if entry is None:
            entry = self._dir[line] = DirEntry()
        if entry.busy:
            entry.queue.append(msg)
        else:
            self._start(line, entry, msg)

    def _on_inv_ack(self, msg: Message) -> None:
        entry = self._dir.get(msg.payload["line"])
        if entry is None:
            entry = self._dir[msg.payload["line"]] = DirEntry()
        entry.pending_acks -= 1
        if entry.pending_acks == 0 and entry.ack_wait is not None:
            sig, entry.ack_wait = entry.ack_wait, None
            sig.fire()

    def _on_unblock(self, msg: Message) -> None:
        entry = self._dir.get(msg.payload["line"])
        if entry is None:
            entry = self._dir[msg.payload["line"]] = DirEntry()
        if entry.unblock_wait is not None:
            sig, entry.unblock_wait = entry.unblock_wait, None
            sig.fire()
        else:
            entry.unblock_pending = True

    def _on_recall(self, msg: Message) -> None:
        line = msg.payload["line"]
        entry = self._dir.get(line)
        if entry is None:
            entry = self._dir[line] = DirEntry()
        if entry.owner_wait is not None:
            sig, entry.owner_wait = entry.owner_wait, None
            sig.fire(msg)
        # else: stale ack from an owner whose eviction notice already
        # completed the recall -- drop (must be an absent-ack)
        elif not (msg.kind == P.RECALL_ACK
                  and not msg.payload["extra"]["present"]):
            raise RuntimeError(
                f"home {self.tile_id}: unexpected {msg.kind} for {line:#x}"
            )

    def _on_owner_notice(self, msg: Message) -> None:
        """WBData / EvictClean from the current owner."""
        line = msg.payload["line"]
        entry = self._dir.get(line)
        if entry is None:
            entry = self._dir[line] = DirEntry()
        if msg.kind == P.WB_DATA and self.tags.lookup(line) is not None:
            self.tags.set_state(line, DIRTY)
        if entry.owner == msg.src:
            entry.owner = None
        if entry.owner_wait is not None:
            sig, entry.owner_wait = entry.owner_wait, None
            sig.fire(msg)

    # ------------------------------------------------------------------ #
    # transaction engine
    # ------------------------------------------------------------------ #
    def _start(self, line: int, entry: DirEntry, msg: Message) -> None:
        entry.busy = True
        if msg.kind == P.GETS:
            gen = self._do_gets(line, entry, msg.src)
        else:
            gen = self._do_getm(line, entry, msg.src,
                                is_upgrade=msg.kind == P.UPGRADE)
        self.sim.spawn(gen, name=f"home{self.tile_id}-{msg.kind}-{line:#x}")

    def _finish(self, line: int, entry: DirEntry) -> None:
        entry.busy = False
        if entry.queue:
            self._start(line, entry, entry.queue.popleft())

    def _do_gets(self, line: int, entry: DirEntry, requester: int):
        self._c_accesses.value += 1
        if entry.owner == requester:
            raise RuntimeError(
                f"home {self.tile_id}: GetS from current owner {requester}"
            )
        if entry.owner is not None:
            served = yield from self._forward(line, entry, requester,
                                              P.FWD_GETS)
            if served:
                # the old owner transferred the data cache-to-cache and
                # stayed a sharer; wait for the requester's unblock
                entry.sharers.add(requester)
                yield from self._await_unblock(line, entry)
                self._finish(line, entry)
                return
        yield from self._l2_data(line)
        if (entry.owner is None and not entry.sharers
                and self.config.coherence == "mesi"):
            entry.owner = requester          # grant E (exclusive clean)
            self._send(requester, P.DATA_E, line)
        else:
            entry.sharers.add(requester)
            self._send(requester, P.DATA, line)
        self._finish(line, entry)

    def _do_getm(self, line: int, entry: DirEntry, requester: int,
                 is_upgrade: bool = False):
        self._c_accesses.value += 1
        if entry.owner == requester:
            raise RuntimeError(
                f"home {self.tile_id}: GetM from current owner {requester}"
            )
        if entry.owner is not None:
            served = yield from self._forward(line, entry, requester,
                                              P.FWD_GETM)
            if served:
                entry.owner = requester
                yield from self._await_unblock(line, entry)
                self._finish(line, entry)
                return
        # a plain GetM from a listed sharer means that sharer evicted its S
        # copy silently -- the dataless GrantM is only safe for an Upgrade
        # whose copy is still valid (still listed => never invalidated since)
        sharers = entry.sharers
        was_sharer = is_upgrade and requester in sharers
        to_invalidate = (sharers - {requester}) if sharers else ()
        if to_invalidate:
            self.counters.add("l2.invalidations", len(to_invalidate))
            entry.pending_acks = len(to_invalidate)
            entry.ack_wait = self.sim.signal(f"acks-{line:#x}")
            for sharer in sorted(to_invalidate):
                self._send(sharer, P.INV, line)
            yield entry.ack_wait
        entry.sharers.clear()
        if was_sharer:
            yield DIR_LATENCY                 # dir-state-only upgrade
            self._send(requester, P.GRANT_M, line)
        else:
            yield from self._l2_data(line)
            self._send(requester, P.DATA_M, line)
        entry.owner = requester
        self._finish(line, entry)

    def _forward(self, line: int, entry: DirEntry, requester: int,
                 fwd_kind: str):
        """Forward the request to the E/M owner for a cache-to-cache serve.

        Returns True if the owner transferred the data directly to the
        requester (dir state for the old owner is updated here); False if
        the owner had already evicted, in which case the caller serves the
        requester from the home's own copy.
        """
        owner = entry.owner
        entry.owner_wait = self.sim.signal(f"fwd-{line:#x}")
        self._send(owner, fwd_kind, line, {"requester": requester})
        resp: Message = yield entry.owner_wait
        self._c_forwards.value += 1
        if resp.kind in (P.WB_DATA, P.RECALL_DATA):
            if self.tags.lookup(line) is not None:
                self.tags.set_state(line, DIRTY)
        still_present = (
            resp.kind == P.RECALL_DATA
            or (resp.kind == P.RECALL_ACK and resp.payload["extra"]["present"])
        )
        if fwd_kind == P.FWD_GETS and still_present:
            entry.sharers.add(owner)
        entry.owner = None
        return still_present

    def _await_unblock(self, line: int, entry: DirEntry):
        """Wait for the requester's UNBLOCK after a cache-to-cache serve."""
        if entry.unblock_pending:
            entry.unblock_pending = False
            return
        entry.unblock_wait = self.sim.signal(f"unblock-{line:#x}")
        yield entry.unblock_wait

    def _l2_data(self, line: int):
        """Access the L2 data array, fetching from memory on a miss."""
        if self.tags.lookup(line) is not None:
            self.tags.touch(line)
            self._c_data_accesses.value += 1
            yield self.config.l2.latency
            return
        # L2 miss -> memory
        self.counters.add("l2.misses")
        self.counters.add("mem.reads")
        yield self.config.l2.latency + self.config.memory_latency
        victim = self.tags.insert(
            line, CLEAN,
            may_evict=lambda cand: not self._entry(cand).held_by_l1,
        )
        if victim is not None:
            victim_line, victim_state = victim
            self.counters.add("l2.evictions")
            if victim_state == DIRTY:
                self.counters.add("mem.writes")
            self._dir.pop(victim_line, None)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def dir_state(self, line: int) -> DirEntry:
        """Directory entry for a line (creates an empty one if missing)."""
        return self._entry(line)
