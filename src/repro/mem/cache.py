"""Set-associative tag array with true-LRU replacement.

Used for both L1 (MESI states) and L2 (presence + dirty bit).  Pure
bookkeeping — no timing; controllers add latencies.  Lookups are O(1) via a
per-set ``dict`` keyed by line address with insertion order as LRU order
(Python dicts preserve insertion order; re-inserting moves to MRU).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.sim.config import CacheConfig

__all__ = ["TagArray"]


class TagArray:
    """Tags + per-line state for one cache."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        # geometry is immutable; resolve it once instead of re-deriving
        # n_sets (a division) on every lookup
        self._line_bytes = config.line_bytes
        self._n_sets = config.n_sets
        self._ways = config.ways
        # set index -> {line_addr: state}; dict order == LRU order (first = LRU)
        self._sets: Dict[int, Dict[int, object]] = {}

    def _set_index(self, line_addr: int) -> int:
        return (line_addr // self._line_bytes) % self._n_sets

    def lookup(self, line_addr: int) -> Optional[object]:
        """State of ``line_addr`` or None; does not touch LRU order."""
        s = self._sets.get(self._set_index(line_addr))
        return None if s is None else s.get(line_addr)

    def touch(self, line_addr: int) -> None:
        """Mark ``line_addr`` most-recently used."""
        s = self._sets[self._set_index(line_addr)]
        s[line_addr] = s.pop(line_addr)

    def set_state(self, line_addr: int, state: object) -> None:
        """Update the state of a resident line (keeps LRU position)."""
        s = self._sets[self._set_index(line_addr)]
        if line_addr not in s:
            raise KeyError(f"line {line_addr:#x} not resident")
        s[line_addr] = state

    def insert(
        self,
        line_addr: int,
        state: object,
        may_evict: Optional[Callable[[int], bool]] = None,
    ) -> Optional[Tuple[int, object]]:
        """Insert a line as MRU; returns the evicted ``(line, state)`` if any.

        ``may_evict(line)`` optionally restricts eviction candidates (the L2
        uses this to skip lines still held by L1s — "soft associativity", see
        DESIGN.md).  If no candidate is evictable the set is allowed to
        over-fill by one way.
        """
        idx = self._set_index(line_addr)
        s = self._sets.setdefault(idx, {})
        if line_addr in s:
            raise KeyError(f"line {line_addr:#x} already resident")
        victim = None
        if len(s) >= self._ways:
            for cand in s:  # iteration order = LRU first
                if may_evict is None or may_evict(cand):
                    victim = (cand, s.pop(cand))
                    break
        s[line_addr] = state
        return victim

    def invalidate(self, line_addr: int) -> Optional[object]:
        """Drop a line; returns its prior state (None if absent)."""
        s = self._sets.get(self._set_index(line_addr))
        if s is None:
            return None
        return s.pop(line_addr, None)

    def resident_lines(self) -> Iterable[int]:
        """All resident line addresses (diagnostics/tests)."""
        for s in self._sets.values():
            yield from s.keys()

    def occupancy(self) -> int:
        """Total resident lines."""
        return sum(len(s) for s in self._sets.values())


# --------------------------------------------------------------------- #
# compiled backend
# --------------------------------------------------------------------- #
_PURE_TAGARRAY = TagArray


def _bind_backend(backend: str) -> None:
    # the compiled TagArray keeps the same dict-order-is-LRU contract and
    # KeyError messages; cache controllers construct via ``cache.TagArray``
    # so this module-level rebind is all the switch needs
    global TagArray
    impl = _kernel.compiled_impl()
    TagArray = (impl.TagArray if backend == "compiled" and impl is not None
                else _PURE_TAGARRAY)


from repro.sim import kernel as _kernel  # noqa: E402

_kernel.on_backend_change(_bind_backend)
