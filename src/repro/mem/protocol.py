"""MESI directory protocol message vocabulary.

One place that defines every protocol message kind, which Figure 9 category
it accounts to, and whether it carries a cache line.  Both the L1 controller
and the home L2/directory build messages through :func:`make_msg` so sizes
and categories stay consistent.

Protocol summary (blocking directory, home-collected acks — see DESIGN.md):

=============  ======================  =========  =====
kind           direction               category   data?
=============  ======================  =========  =====
GetS           L1 -> home              Request    no
GetM           L1 -> home              Request    no
Upgrade        L1 (holds S) -> home    Request    no
Data           home -> L1 (S grant)    Reply      yes
DataE          home -> L1 (E grant)    Reply      yes
DataM          home -> L1 (M grant)    Reply      yes
GrantM         home -> L1 (upgrade)    Coherence  no
Inv            home -> sharer          Coherence  no
InvAck         sharer -> home          Coherence  no
FwdGetS        home -> owner           Coherence  no
FwdGetM        home -> owner           Coherence  no
DataC2C        owner -> requester      Coherence  yes
Unblock        requester -> home       Coherence  no
RecallData     owner -> home (dirty downgrade)  Coherence  yes
RecallAck      owner -> home (clean/absent ack) Coherence  no
WBData         L1 evict M -> home      Coherence  yes
EvictClean     L1 evict E -> home      Coherence  no
=============  ======================  =========  =====

S-state evictions are silent (stale sharers simply ack a later Inv), matching
common directory MESI implementations.
"""

from __future__ import annotations

from typing import Any

from repro.noc.messages import Message, MsgCategory
from repro.sim.config import NoCConfig

__all__ = [
    "GETS", "GETM", "UPGRADE", "DATA", "DATA_E", "DATA_M", "GRANT_M",
    "INV", "INV_ACK", "FWD_GETS", "FWD_GETM", "DATA_C2C", "UNBLOCK",
    "RECALL_DATA", "RECALL_ACK",
    "WB_DATA", "EVICT_CLEAN", "make_msg", "HOME_BOUND_KINDS", "L1_BOUND_KINDS",
]

GETS = "GetS"
GETM = "GetM"
UPGRADE = "Upgrade"
DATA = "Data"
DATA_E = "DataE"
DATA_M = "DataM"
GRANT_M = "GrantM"
INV = "Inv"
INV_ACK = "InvAck"
FWD_GETS = "FwdGetS"
FWD_GETM = "FwdGetM"
DATA_C2C = "DataC2C"
UNBLOCK = "Unblock"
RECALL_DATA = "RecallData"
RECALL_ACK = "RecallAck"
WB_DATA = "WBData"
EVICT_CLEAN = "EvictClean"

_CATEGORY = {
    GETS: MsgCategory.REQUEST,
    GETM: MsgCategory.REQUEST,
    UPGRADE: MsgCategory.REQUEST,
    DATA: MsgCategory.REPLY,
    DATA_E: MsgCategory.REPLY,
    DATA_M: MsgCategory.REPLY,
    GRANT_M: MsgCategory.COHERENCE,
    INV: MsgCategory.COHERENCE,
    INV_ACK: MsgCategory.COHERENCE,
    FWD_GETS: MsgCategory.COHERENCE,
    FWD_GETM: MsgCategory.COHERENCE,
    DATA_C2C: MsgCategory.COHERENCE,
    UNBLOCK: MsgCategory.COHERENCE,
    RECALL_DATA: MsgCategory.COHERENCE,
    RECALL_ACK: MsgCategory.COHERENCE,
    WB_DATA: MsgCategory.COHERENCE,
    EVICT_CLEAN: MsgCategory.COHERENCE,
}

_CARRIES_DATA = {DATA, DATA_E, DATA_M, DATA_C2C, RECALL_DATA, WB_DATA}

#: kinds a tile dispatcher routes to its L2/directory slice
HOME_BOUND_KINDS = frozenset(
    {GETS, GETM, UPGRADE, INV_ACK, RECALL_DATA, RECALL_ACK, WB_DATA,
     EVICT_CLEAN, UNBLOCK}
)
#: kinds a tile dispatcher routes to its L1 controller
L1_BOUND_KINDS = frozenset({DATA, DATA_E, DATA_M, GRANT_M, INV,
                            FWD_GETS, FWD_GETM, DATA_C2C})


def make_msg(noc: NoCConfig, src: int, dst: int, kind: str, line: int,
             payload: Any = None) -> Message:
    """Build a protocol message with the canonical size and category."""
    size = noc.data_msg_bytes if kind in _CARRIES_DATA else noc.control_msg_bytes
    return Message(
        src=src,
        dst=dst,
        kind=kind,
        category=_CATEGORY[kind],
        size_bytes=size,
        payload={"line": line, "extra": payload},
    )


# --------------------------------------------------------------------- #
# compiled backend
# --------------------------------------------------------------------- #
_PURE_MAKE_MSG = make_msg


def _bind_backend(backend: str) -> None:
    # hand the kind tables to the C module (it never imports this package
    # itself, to keep extension import free of cycles) and rebind the
    # module-level ``make_msg`` every L1/L2 call site goes through
    global make_msg
    impl = _kernel.compiled_impl()
    if backend == "compiled" and impl is not None:
        impl.configure_protocol(_CATEGORY, _CARRIES_DATA)
        make_msg = impl.make_msg
    else:
        make_msg = _PURE_MAKE_MSG


from repro.sim import kernel as _kernel  # noqa: E402

_kernel.on_backend_change(_bind_backend)
