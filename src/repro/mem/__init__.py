"""Memory hierarchy substrate: L1 caches, distributed shared L2 slices, a
MESI directory protocol, and the memory controller.

This is the machinery that shared-memory lock algorithms exercise and that
GLocks bypass entirely — the central comparison of the paper.
"""

from repro.mem.address import AddressSpace, WORD_BYTES
from repro.mem.backing import BackingStore
from repro.mem.hierarchy import MemorySystem

__all__ = ["AddressSpace", "BackingStore", "MemorySystem", "WORD_BYTES"]
