"""Authoritative word-value store.

The protocol model moves *permissions* (MESI states) around; actual word
values live here, in one global map.  Writes are only applied by a cache
holding the line in M state and the directory serializes M ownership per
line, so reads/writes through this store are linearizable (see DESIGN.md,
"Key design decisions").
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.mem.address import WORD_BYTES

__all__ = ["BackingStore"]


class BackingStore:
    """Flat word-addressable memory, default-zero."""

    def __init__(self) -> None:
        self._words: Dict[int, int] = {}

    @staticmethod
    def _check(addr: int) -> None:
        if addr % WORD_BYTES:
            raise ValueError(f"unaligned word address {addr:#x}")

    def read(self, addr: int) -> int:
        """Current value of the word at ``addr`` (0 if never written)."""
        self._check(addr)
        return self._words.get(addr, 0)

    def write(self, addr: int, value: int) -> None:
        """Set the word at ``addr``."""
        self._check(addr)
        self._words[addr] = value

    def apply(self, addr: int, fn: Callable[[int], int]) -> int:
        """Atomically replace ``word = fn(word)``; returns the old value."""
        self._check(addr)
        old = self._words.get(addr, 0)
        self._words[addr] = fn(old)
        return old
