"""CSV export of experiment results.

Every figure harness returns plain dicts; these helpers flatten them into
CSV files so downstream plotting (matplotlib, gnuplot, spreadsheets) can
regenerate the paper's figures without re-running simulations.
``scripts/record_experiments.py --csv-dir out/`` writes one file per
figure/table.
"""

from __future__ import annotations

import csv
import os
from typing import Dict, Iterable, List, Sequence

__all__ = ["write_csv", "export_bars", "export_series", "export_counters"]


def write_csv(path: str, headers: Sequence[str],
              rows: Iterable[Sequence[object]]) -> int:
    """Write rows to ``path``; returns the number of data rows written."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    count = 0
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)
            count += 1
    return count


def export_bars(path: str, bars: Dict[str, Dict[str, Dict[str, float]]]) -> int:
    """Flatten Figure 8/9-style nested bars: benchmark x variant x segment."""
    segments: List[str] = []
    for by_variant in bars.values():
        for seg_map in by_variant.values():
            for seg in seg_map:
                if seg not in segments:
                    segments.append(seg)
    rows = []
    for benchmark, by_variant in bars.items():
        for variant, seg_map in by_variant.items():
            rows.append([benchmark, variant]
                        + [seg_map.get(seg, 0.0) for seg in segments])
    return write_csv(path, ["benchmark", "variant"] + segments, rows)


def export_series(path: str, series: Dict[object, float],
                  key_name: str = "key", value_name: str = "value") -> int:
    """Export a flat {key: value} mapping."""
    rows = [[k, v] for k, v in series.items()]
    return write_csv(path, [key_name, value_name], rows)


def export_counters(path: str, counters: Dict[str, int],
                    prefixes: Sequence[str] = ()) -> int:
    """Export a run's counter set as sorted ``counter,value`` rows.

    ``prefixes`` filters to matching counter families (e.g.
    ``("vglock.", "faults.")`` for the virtualization and fault-injection
    statistics); empty means everything.
    """
    rows = [[k, v] for k, v in sorted(counters.items())
            if not prefixes or any(k.startswith(p) for p in prefixes)]
    return write_csv(path, ["counter", "value"], rows)
