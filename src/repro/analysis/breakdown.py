"""Execution-time breakdowns for the Figure 8 stacked bars.

The paper plots, per benchmark and lock implementation, execution time
normalized to the MCS configuration, split into Busy / Memory / Lock /
Barrier.  :func:`normalized_breakdown` converts two runs into exactly those
stacked-bar heights.
"""

from __future__ import annotations

from typing import Dict

from repro.cpu.core import CATEGORIES
from repro.machine import RunResult

__all__ = ["normalized_breakdown"]


def normalized_breakdown(run: RunResult, baseline: RunResult) -> Dict[str, float]:
    """Category heights of ``run``'s bar, normalized to ``baseline``'s total.

    The baseline's own bar (``normalized_breakdown(b, b)``) sums to 1; a
    faster run sums to its execution-time ratio.  Category shares within a
    bar follow the per-core cycle accounts (averaged across cores), scaled
    to the run's makespan.
    """
    if baseline.makespan <= 0:
        raise ValueError("baseline makespan must be positive")
    own_total = sum(run.cycles_by_category.values())
    ratio = run.makespan / baseline.makespan
    if own_total == 0:
        return {c: 0.0 for c in CATEGORIES}
    return {
        c: ratio * run.cycles_by_category[c] / own_total
        for c in CATEGORIES
    }
