"""Post-mortem analysis: lock contention rates, time breakdowns, reports.

Implements the paper's measurement methodology — the grAC/LCR contention
analysis of Section IV-B (Equations 1-3, Figure 7), the Figure 8 category
breakdown, and plain-text table/series rendering used by the experiment
harnesses.
"""

from repro.analysis.contention import LockContention, analyze_contention, benchmark_licr
from repro.analysis.breakdown import normalized_breakdown
from repro.analysis.latency import RequestSummary, percentile, summarize_requests
from repro.analysis.report import format_series, format_table

__all__ = [
    "LockContention",
    "analyze_contention",
    "benchmark_licr",
    "normalized_breakdown",
    "RequestSummary",
    "percentile",
    "summarize_requests",
    "format_series",
    "format_table",
]
