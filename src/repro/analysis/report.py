"""Plain-text rendering of experiment tables and series.

The benchmark harnesses print the same rows/series the paper reports;
these helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, values: Mapping[object, float],
                  precision: int = 3) -> str:
    """Render a named series like ``name: k1=v1 k2=v2 ...``."""
    parts = " ".join(f"{k}={v:.{precision}f}" for k, v in values.items())
    return f"{name}: {parts}"


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
