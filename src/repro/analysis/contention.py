"""Lock contention analysis — the paper's Equations 1-3 and Figure 7.

The paper registers, on a cycle-by-cycle basis, the number of concurrent
requesters (grAC, "group of acquiring cores", 1..C) of every lock, over a
run where all locks use test-and-test&set.  Two normalizations are used:

- **Equation 1** — per-lock contention rate::

      LCR_i(grAC) = Cycles(lock_i, grAC) / sum_g Cycles(lock_i, g)

- **Equation 3** — benchmark-wide, weighting each lock by the cycles it is
  contended (so rarely-used locks shrink even if their profile is spiky)::

      LiCR_i(grAC) = Cycles(lock_i, grAC) / sum_l sum_g Cycles(lock_l, g)

  which satisfies Equation 2: the LiCR values of one benchmark sum to 1.

Our :class:`~repro.cpu.core.ThreadContext` records a wait interval
``[acquire-start, acquire-grant)`` per lock acquisition; sweeping those
intervals gives exactly ``Cycles(lock, grAC = depth)``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Mapping

import numpy as np

from repro.machine import RunResult
from repro.sim.stats import Interval, sweep_concurrency

__all__ = ["LockContention", "analyze_contention", "benchmark_licr"]


@dataclass
class LockContention:
    """Contention profile of one lock (or one aggregated label)."""

    label: str
    cycles_per_grac: np.ndarray  # index g: cycles with exactly g requesters
    n_acquires: int

    @property
    def total_cycles(self) -> int:
        """Cycles during which at least one core was requesting."""
        return int(self.cycles_per_grac.sum())

    def lcr(self) -> np.ndarray:
        """Equation 1: per-lock contention rate over grAC."""
        total = self.total_cycles
        if total == 0:
            return np.zeros_like(self.cycles_per_grac, dtype=float)
        return self.cycles_per_grac / total

    def aggregate_rate(self, min_grac: int) -> float:
        """Fraction of contended cycles with grAC >= ``min_grac``.

        The paper quotes e.g. "contention rate close to 80% when considering
        grACs higher than 20 cores" — this is that number.
        """
        total = self.total_cycles
        if total == 0:
            return 0.0
        return float(self.cycles_per_grac[min_grac:].sum() / total)


def analyze_contention(result: RunResult,
                       lock_labels: Mapping[int, str]) -> Dict[str, LockContention]:
    """Per-label contention profiles from a run's lock-wait intervals.

    Locks sharing a label (e.g. Raytrace's 32 quiet locks, all "RAYTR-LR")
    are aggregated, mirroring the paper's Figure 7 presentation.
    """
    if result.lock_intervals is None:
        raise ValueError(
            "RunResult carries no lock-wait intervals "
            "(lock_intervals is None); contention analysis needs a run "
            "produced by Machine.run, which always records them"
        )
    n = result.config.n_cores
    by_label: Dict[str, List[Interval]] = defaultdict(list)
    acquires: Dict[str, int] = defaultdict(int)
    for uid, ivs in result.lock_intervals.by_key().items():
        label = lock_labels.get(uid, f"lock{uid}")
        by_label[label].extend(ivs)
        acquires[label] += len(ivs)
    profiles: Dict[str, LockContention] = {}
    for label, ivs in by_label.items():
        hist = sweep_concurrency(ivs, n)
        profiles[label] = LockContention(
            label=label,
            cycles_per_grac=hist.counts.copy(),
            n_acquires=acquires[label],
        )
    return profiles


def benchmark_licr(profiles: Mapping[str, LockContention]) -> Dict[str, np.ndarray]:
    """Equation 3: per-label rates normalized by the benchmark total.

    The returned arrays jointly sum to 1 (Equation 2) whenever any lock was
    contended at all.
    """
    grand_total = sum(p.total_cycles for p in profiles.values())
    if grand_total == 0:
        return {label: np.zeros_like(p.cycles_per_grac, dtype=float)
                for label, p in profiles.items()}
    return {label: p.cycles_per_grac / grand_total
            for label, p in profiles.items()}
