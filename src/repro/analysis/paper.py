"""The paper's published numbers, as data.

Every quantitative claim the evaluation section makes, transcribed for
programmatic comparison: `compare_to_paper` lines a measured digest up
against these references and reports per-entry deviations, which is how
EXPERIMENTS.md's tables are kept honest.

Figure-derived values (Figures 8-10 bar heights) are read off the paper's
text where quoted exactly ("reductions of 33%, 39%, 34%, 25%..."), so they
are ratios vs the MCS baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

__all__ = [
    "PAPER_FIG8_TIME_RATIO", "PAPER_FIG9_TRAFFIC_RATIO",
    "PAPER_FIG10_ED2P_RATIO", "PAPER_TABLE4_SPEEDUPS",
    "PAPER_TABLE1_LATENCIES", "PAPER_AVERAGES",
    "Deviation", "compare_to_paper",
]

#: Figure 8 — GL execution time normalized to MCS (1 - quoted reduction)
PAPER_FIG8_TIME_RATIO: Dict[str, float] = {
    "sctr": 0.67, "mctr": 0.61, "dbll": 0.66, "prco": 0.75, "actr": 0.19,
}

#: Figure 9 — GL network traffic normalized to MCS
PAPER_FIG9_TRAFFIC_RATIO: Dict[str, float] = {
    "sctr": 0.19, "mctr": 0.01, "dbll": 0.28, "prco": 0.54, "actr": 0.20,
    "raytr": 0.77, "ocean": 0.99, "qsort": 0.55,
}

#: Figure 10 — GL full-CMP ED2P normalized to MCS
PAPER_FIG10_ED2P_RATIO: Dict[str, float] = {
    "sctr": 0.28, "mctr": 0.17, "dbll": 0.25, "prco": 0.35, "actr": 0.04,
    "raytr": 0.50, "ocean": 0.90, "qsort": 0.75,
}

#: Table IV — application speedups; (app, version) -> {cores: speedup}
PAPER_TABLE4_SPEEDUPS: Dict[tuple, Dict[int, float]] = {
    ("raytr", "MCS"): {4: 3.91, 8: 7.53, 16: 13.61, 32: 20.69},
    ("raytr", "GL"): {4: 3.93, 8: 7.97, 16: 15.67, 32: 28.78},
    ("ocean", "MCS"): {4: 3.70, 8: 7.12, 16: 13.48, 32: 23.62},
    ("ocean", "GL"): {4: 3.80, 8: 7.32, 16: 13.93, 32: 25.66},
    ("qsort", "MCS"): {4: 3.67, 8: 6.49, 16: 9.68, 32: 11.38},
    ("qsort", "GL"): {4: 3.69, 8: 6.55, 16: 9.92, 32: 12.40},
}

#: Table I — protocol latencies in cycles
PAPER_TABLE1_LATENCIES: Dict[str, int] = {
    "acquire_worst": 4, "acquire_best": 2, "release": 1,
}

#: headline averages (reductions -> GL/MCS ratios)
PAPER_AVERAGES: Dict[str, float] = {
    "fig8_avgm": 0.58, "fig8_avga": 0.86,
    "fig9_avgm": 0.24, "fig9_avga": 0.77,
    "fig10_avgm": 0.22, "fig10_avga": 0.72,
}


@dataclass(frozen=True)
class Deviation:
    """One paper-vs-measured comparison row."""

    key: str
    paper: float
    measured: float

    @property
    def absolute(self) -> float:
        return self.measured - self.paper

    @property
    def relative(self) -> Optional[float]:
        return self.absolute / self.paper if self.paper else None

    @property
    def same_direction(self) -> bool:
        """True when both sides agree GLocks win (ratio < 1) or not."""
        return (self.paper < 1.0) == (self.measured < 1.0)


def compare_to_paper(measured: Mapping[str, float],
                     reference: Mapping[str, float],
                     prefix: str = "") -> List[Deviation]:
    """Pair measured values with paper references (shared keys only)."""
    rows = []
    for key, paper_value in reference.items():
        if key in measured:
            rows.append(Deviation(f"{prefix}{key}", float(paper_value),
                                  float(measured[key])))
    return rows
