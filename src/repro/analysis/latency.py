"""Per-request latency analysis for the open-loop serving workloads.

Turns the raw ``RunResult.requests`` records — ``(arrival, start, end,
core, ok, retries)`` tuples appended by :mod:`repro.workloads.serving` —
into the serving-side metrics the overload study plots: throughput,
*goodput* (completions that also met their deadline), shed rate, and
nearest-rank latency percentiles (p50/p99/p999).

Latency is measured **from arrival**, not from when the thread got
around to the request: open-loop queueing delay is precisely the signal
that distinguishes a saturated system from a healthy one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

__all__ = ["percentile", "RequestSummary", "summarize_requests"]


def percentile(sorted_values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile of an ascending-sorted, non-empty sequence.

    ``p`` is in [0, 100].  Nearest-rank (ceil(p/100 * n)) is exact on the
    integers the simulator produces — no interpolation artifacts to drag
    into golden fingerprint tests.
    """
    if not sorted_values:
        raise ValueError("percentile of an empty sequence")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile {p} outside [0, 100]")
    if p == 0:
        return sorted_values[0]
    rank = -(-p * len(sorted_values) // 100)  # ceil without float drift
    return sorted_values[int(rank) - 1]


@dataclass
class RequestSummary:
    """Serving metrics distilled from one run's request records."""

    offered: int          #: total requests that arrived
    completed: int        #: requests that finished their critical work
    shed: int             #: requests abandoned (deadline/backpressure)
    deadline_met: int     #: completions with end - arrival <= deadline
    makespan: int         #: cycles the run took (throughput denominator)
    throughput: float     #: completions per kilocycle
    goodput: float        #: deadline-met completions per kilocycle
    shed_rate: float      #: shed / offered
    mean_latency: float   #: mean completion latency (arrival -> end)
    p50: Optional[int]    #: latency percentiles; None with no completions
    p99: Optional[int]
    p999: Optional[int]
    retries: int          #: total acquire retries across all requests

    def as_dict(self) -> Dict[str, object]:
        return {
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "deadline_met": self.deadline_met,
            "makespan": self.makespan,
            "throughput": self.throughput,
            "goodput": self.goodput,
            "shed_rate": self.shed_rate,
            "mean_latency": self.mean_latency,
            "p50": self.p50,
            "p99": self.p99,
            "p999": self.p999,
            "retries": self.retries,
        }


def summarize_requests(records: Sequence[tuple], makespan: int,
                       deadline: Optional[int] = None) -> RequestSummary:
    """Distill request records into a :class:`RequestSummary`.

    Args:
        records: ``RunResult.requests`` content (may be empty).
        makespan: the run's makespan in cycles.
        deadline: the workload's per-request deadline; when None every
            completion counts toward goodput.
    """
    latencies: List[int] = []
    shed = deadline_met = retries = 0
    for arrival, _start, end, _core, ok, tries in records:
        retries += tries
        if not ok:
            shed += 1
            continue
        latency = end - arrival
        latencies.append(latency)
        if deadline is None or latency <= deadline:
            deadline_met += 1
    latencies.sort()
    completed = len(latencies)
    kilocycles = max(makespan, 1) / 1000.0
    return RequestSummary(
        offered=len(records),
        completed=completed,
        shed=shed,
        deadline_met=deadline_met,
        makespan=makespan,
        throughput=completed / kilocycles,
        goodput=deadline_met / kilocycles,
        shed_rate=shed / len(records) if records else 0.0,
        mean_latency=sum(latencies) / completed if completed else 0.0,
        p50=int(percentile(latencies, 50)) if latencies else None,
        p99=int(percentile(latencies, 99)) if latencies else None,
        p999=int(percentile(latencies, 99.9)) if latencies else None,
        retries=retries,
    )
