"""G-line wire model.

A G-line transmits one bit across one dimension of the chip in a single
clock cycle (Section II, citing capacitive feed-forward transmission-line
work).  Here a :class:`GLine` connects one transmitter to one receiver
callback; transmission costs ``latency`` cycles (1 by default — the paper's
"longer latency G-lines" scalability path is modelled by raising it) and
every signal is counted for the energy model.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.kernel import Simulator
from repro.sim.stats import CounterSet

__all__ = ["GLine"]


class GLine:
    """A dedicated 1-bit wire from one controller to another."""

    __slots__ = ("sim", "latency", "counters", "name", "signals_sent", "port",
                 "_c_signals")

    def __init__(self, sim: Simulator, counters: CounterSet,
                 latency: int = 1, name: str = "", port: Any = None) -> None:
        if latency < 1:
            raise ValueError("G-line latency is at least one cycle")
        self.sim = sim
        self.latency = latency
        self.counters = counters
        self.name = name
        self.signals_sent = 0
        #: fault-injection port (``repro.faults``); None on healthy wire
        self.port = port
        # bound counter: transmit runs once per G-line signal, the hottest
        # operation of the whole lock-network layer
        self._c_signals = counters.bind("gline.signals")

    def transmit(self, receiver: Callable[..., None], *args: Any) -> None:
        """Send a 1-bit signal: ``receiver(*args)`` runs ``latency`` cycles on."""
        self.signals_sent += 1
        self._c_signals.value += 1
        if self.sim.tracer is not None:
            self.sim.tracer.record(self.sim.now, "gline", self.name,
                                   f"signal (arrives cycle {self.sim.now + self.latency})")
        if self.port is not None:
            self.port.transmit(self, receiver, args)
            return
        self.sim.schedule(self.latency, receiver, *args)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GLine({self.name!r}, latency={self.latency})"
