"""Token-manager FSM — the lock managers of Figure 6.

One class, :class:`TokenManager`, implements both manager roles:

- a **secondary lock manager** (Sx) monitors request flags from the local
  controllers of its row and holds a parent link to the primary;
- the **primary lock manager** (R) monitors flags from the secondaries and
  has no parent — it owns the token whenever no manager does.

The per-child request flags are the paper's ``fx`` / ``fSx`` flags; the
round-robin pointer implements the ``RoundRobin()`` transition of the
automata: a token *tenure* serves flagged children in increasing index
order from the pointer, and when the scan reaches the end the token is
returned to the parent (``REL``), re-requesting immediately (``REQ``) if
new flags arrived during the tenure.  This reproduces the cycle-by-cycle
choreography of Figure 4 exactly (see ``tests/test_glocks_protocol.py``).

Children are either other managers or *leaf callbacks* (the per-core local
controllers, which simply forward a granted ``TOKEN`` to the waiting core).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Union

from repro.core.gline import GLine
from repro.sim.kernel import Simulator
from repro.sim.stats import CounterSet

__all__ = ["TokenManager", "LeafPort"]


class LeafPort:
    """A local controller endpoint: delivers TOKEN grants to its core."""

    __slots__ = ("on_token",)

    def __init__(self, on_token: Callable[[], None]) -> None:
        self.on_token = on_token

    def receive_token(self) -> None:
        self.on_token()


Child = Union["TokenManager", LeafPort]


class TokenManager:
    """Primary or secondary lock manager for one GLock."""

    #: supported arbitration policies (see :meth:`_next_child`)
    POLICIES = ("round_robin", "fifo", "static")

    def __init__(self, sim: Simulator, counters: CounterSet, name: str,
                 gline_latency: int = 1,
                 arbitration: str = "round_robin",
                 fault_port=None) -> None:
        if arbitration not in self.POLICIES:
            raise ValueError(
                f"unknown arbitration {arbitration!r}; choose from {self.POLICIES}"
            )
        self.sim = sim
        self.counters = counters
        self.name = name
        self.gline_latency = gline_latency
        self.arbitration = arbitration
        #: fault-injection port shared by this network (None when healthy)
        self.fault_port = fault_port
        #: permanently failed (controller-death fault): ignores all signals
        self.dead = False
        self.children: List[Child] = []
        self._child_lines: List[GLine] = []  # manager -> child (TOKEN)
        self._up_lines: List[GLine] = []     # child -> manager (REQ/REL)
        self.parent: Optional["TokenManager"] = None
        self._index_at_parent: Optional[int] = None
        self.flags: List[bool] = []          # fx / fSx request flags
        self._fifo_order: List[int] = []     # arrival order (fifo policy)
        self.has_token = False               # root starts with the token
        self.busy_child: Optional[int] = None
        self.rr_pos = 0
        self._requested_parent = False

    # ------------------------------------------------------------------ #
    # topology construction
    # ------------------------------------------------------------------ #
    def attach_child(self, child: Child) -> int:
        """Wire a child below this manager; returns its child index."""
        idx = len(self.children)
        self.children.append(child)
        self.flags.append(False)
        self._child_lines.append(
            GLine(self.sim, self.counters, self.gline_latency,
                  name=f"{self.name}->child{idx}", port=self.fault_port)
        )
        self._up_lines.append(
            GLine(self.sim, self.counters, self.gline_latency,
                  name=f"child{idx}->{self.name}", port=self.fault_port)
        )
        if isinstance(child, TokenManager):
            child.parent = self
            child._index_at_parent = idx
        return idx

    def make_root(self) -> None:
        """Declare this manager the primary: it initially owns the token."""
        if self.parent is not None:
            raise RuntimeError(f"{self.name}: root cannot have a parent")
        self.has_token = True

    # ------------------------------------------------------------------ #
    # signals from below (REQ / REL arrive over the child's up-line)
    # ------------------------------------------------------------------ #
    def signal_request(self, child_idx: int) -> None:
        """A child raises REQ (1 G-line cycle to reach us)."""
        self._up_lines[child_idx].transmit(self._on_request, child_idx)

    def signal_release(self, child_idx: int) -> None:
        """The token-holding child raises REL."""
        self._up_lines[child_idx].transmit(self._on_release, child_idx)

    def _on_request(self, child_idx: int) -> None:
        if self.dead:
            return
        if not self.flags[child_idx]:
            self.flags[child_idx] = True
            if self.arbitration == "fifo":
                self._fifo_order.append(child_idx)
        if self.has_token:
            self._decide()
        else:
            self._request_parent()

    def _on_release(self, child_idx: int) -> None:
        if self.dead:
            return
        if child_idx != self.busy_child:
            if self.fault_port is not None:
                # a fault-delayed REL can straddle a token regeneration and
                # arrive after this manager's state was reset: discard it
                self.counters.add("faults.stale_rel")
                return
            raise RuntimeError(
                f"{self.name}: REL from child {child_idx} but token is at "
                f"{self.busy_child}"
            )
        self.flags[child_idx] = False
        self.busy_child = None
        self._decide()

    # ------------------------------------------------------------------ #
    # signals from above
    # ------------------------------------------------------------------ #
    def _receive_token(self) -> None:
        if self.dead:
            return
        self.has_token = True
        self.busy_child = None
        self._requested_parent = False
        self._decide()

    def _request_parent(self) -> None:
        if self.parent is None or self._requested_parent:
            return
        self._requested_parent = True
        self.parent.signal_request(self._index_at_parent)

    # ------------------------------------------------------------------ #
    # arbitration (the Scheduling state of Figure 6)
    # ------------------------------------------------------------------ #
    def _decide(self) -> None:
        if self.dead or not self.has_token or self.busy_child is not None:
            return
        nxt = self._next_child()
        if nxt is not None:
            self._grant(nxt)
            return
        # tenure over: wrap the pointer
        self.rr_pos = 0
        if self.parent is None:
            # the primary keeps the token; serve a wrapped-around request now
            nxt = self._next_child()
            if nxt is not None:
                self._grant(nxt)
            return
        # secondary: return the token (REL), re-request if demand remains
        self.has_token = False
        self.parent.signal_release(self._index_at_parent)
        if any(self.flags):
            self._requested_parent = True
            self.parent.signal_request(self._index_at_parent)

    def _next_child(self) -> Optional[int]:
        """Arbitrate among flagged children.

        - ``round_robin`` (the paper's policy): increasing index from the
          tenure pointer; reaching the end closes the tenure — globally fair.
        - ``fifo``: strict request-arrival order; fair, slightly more state
          (a real implementation needs an arrival queue per manager).
        - ``static``: fixed priority (lowest index wins, tenure never
          rotates) — the ablation's strawman, which starves high indices
          under saturation (see ``experiments/ablate_arbitration.py``).
        """
        if self.arbitration == "fifo":
            while self._fifo_order:
                idx = self._fifo_order[0]
                if self.flags[idx]:
                    return idx
                self._fifo_order.pop(0)
            return None
        start = 0 if self.arbitration == "static" else self.rr_pos
        return self._next_flagged(start)

    def _next_flagged(self, start: int) -> Optional[int]:
        for i in range(start, len(self.flags)):
            if self.flags[i]:
                return i
        return None

    def _grant(self, child_idx: int) -> None:
        self.busy_child = child_idx
        self.rr_pos = child_idx + 1
        if self.arbitration == "fifo" and child_idx in self._fifo_order:
            self._fifo_order.remove(child_idx)
        child = self.children[child_idx]
        if isinstance(child, TokenManager):
            self._child_lines[child_idx].transmit(child._receive_token)
        else:
            # leaf: TOKEN consumes the request flag (lock_req is reset)
            self.flags[child_idx] = False
            self._child_lines[child_idx].transmit(child.receive_token)

    # ------------------------------------------------------------------ #
    # recovery support (token regeneration, repro.faults)
    # ------------------------------------------------------------------ #
    def reset_state(self) -> None:
        """Forget all protocol state; the recovery controller re-seeds it.

        Does not clear :attr:`dead` — a dead controller stays dead; the
        network routes around it or the device trips to software.
        """
        for i in range(len(self.flags)):
            self.flags[i] = False
        self._fifo_order.clear()
        self.has_token = False
        self.busy_child = None
        self.rr_pos = 0
        self._requested_parent = False

    # ------------------------------------------------------------------ #
    # introspection (tests)
    # ------------------------------------------------------------------ #
    @property
    def pending_requests(self) -> int:
        """Number of currently raised child flags."""
        return sum(self.flags)
