"""Analytical cost model — the paper's Table I.

For a 2D-mesh CMP with ``C`` cores (square mesh of side ``sqrt(C)``), per
supported lock:

==========================  =============
G-lines                     ``C - 1``
Primary lock managers       1
Secondary lock managers     ``sqrt(C)`` (one per row)
Local controllers           ``C - 1``
fSx flags                   ``sqrt(C)``
fx flags                    ``C``
Lock acquire (worst case)   4 cycles
Lock acquire (best case)    2 cycles
Lock release                1 cycle
==========================  =============

For non-square meshes the row structure generalizes: ``rows`` secondaries,
``rows * (cols-1) + rows - 1 = C - 1`` G-lines (every tile populated).  The
simulated network's resource counts are asserted against this model in the
test suite, and the acquire/release latencies are *measured* from the
simulated FSMs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.config import CMPConfig

__all__ = ["GLockCost", "cost_model"]


@dataclass(frozen=True)
class GLockCost:
    """Per-lock hardware/latency budget of the GLocks mechanism."""

    n_cores: int
    g_lines: int
    primary_managers: int
    secondary_managers: int
    local_controllers: int
    fsx_flags: int
    fx_flags: int
    acquire_worst_cycles: int
    acquire_best_cycles: int
    release_cycles: int

    def rows(self) -> list:
        """Table I rows as (label, value) pairs."""
        return [
            ("G-lines", self.g_lines),
            ("Primary Lock Managers", self.primary_managers),
            ("Secondary Lock Managers", self.secondary_managers),
            ("Local controllers", self.local_controllers),
            ("fSx Flags", self.fsx_flags),
            ("fx Flags", self.fx_flags),
            ("Lock Acquire (worst case)", f"{self.acquire_worst_cycles} cycles"),
            ("Lock Acquire (best case)", f"{self.acquire_best_cycles} cycles"),
            ("Lock Release", f"{self.release_cycles} cycles"),
        ]


def cost_model(config: CMPConfig, levels: int = 2) -> GLockCost:
    """Table I costs for one GLock on ``config``'s mesh.

    ``levels=3`` prices the hierarchical future-work variant: one extra
    manager layer, two extra worst-case acquire cycles.
    """
    c = config.n_cores
    rows = config.mesh_height if c > config.mesh_width else 1
    # count populated rows (the last row may be partial)
    populated_rows = -(-c // config.mesh_width)
    secondaries = populated_rows
    g_lines = c - 1
    intermediates = 0
    if levels == 3:
        intermediates = -(-populated_rows // (config.gline.max_drops - 1))
        # grouping rows adds one line per non-colocated secondary and
        # intermediate, and removes nothing: still a tree of C-1+extra edges
        g_lines = (c - populated_rows) + (populated_rows - intermediates) + (
            intermediates - 1
        )
    latency = config.gline.gline_latency
    worst = 2 * levels * latency
    best = 2 * latency
    del rows  # geometry note: only populated rows matter
    return GLockCost(
        n_cores=c,
        g_lines=g_lines,
        primary_managers=1,
        secondary_managers=secondaries + intermediates,
        local_controllers=c - 1,
        fsx_flags=secondaries + intermediates,
        fx_flags=c,
        acquire_worst_cycles=worst,
        acquire_best_cycles=best,
        release_cycles=latency,
    )
