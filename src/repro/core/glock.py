"""The GLock device: lock_req / lock_rel register interface (Figure 5).

``GL_Lock`` is two instructions: a 1-cycle store to the per-core
``lock_req`` register followed by a local busy-wait on that register (no L1
accesses, no network traffic); the local controller raises ``REQ`` on its
G-line and resets ``lock_req`` when ``TOKEN`` arrives.  ``GL_Unlock`` is a
single 1-cycle store to ``lock_rel``.

:class:`GLockPool` models the chip's fixed hardware budget (two GLocks in
the paper's evaluation) and the future-work *virtualization* mode in which
more program locks than physical networks are statically multiplexed.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.network import GLineNetwork
from repro.sim.config import CMPConfig
from repro.sim.kernel import Simulator
from repro.sim.stats import CounterSet

__all__ = ["GLockDevice", "GLockPool"]


class GLockDevice:
    """One hardware GLock (one dedicated G-line network)."""

    # class-level defaults so stripped-down test doubles that bypass
    # __init__ still present a healthy, recovery-less device
    healthy = True
    _recovery = None

    def __init__(self, sim: Simulator, config: CMPConfig, counters: CounterSet,
                 lock_id: int = 0, levels: int = 2,
                 arbitration: str = "round_robin", faults=None) -> None:
        self.sim = sim
        self.counters = counters
        self.lock_id = lock_id
        self.network = GLineNetwork(sim, config, counters, lock_id, levels,
                                    arbitration, faults=faults)
        self._holder: Optional[int] = None
        #: False once the recovery controller trips the device; unhealthy
        #: devices refuse acquires and callers use their software fallback
        self.healthy = True
        if self.network.fault_port is not None:
            from repro.faults.recovery import RecoveryController
            self._recovery = RecoveryController(
                self, self.network.fault_port, faults.plan)
        else:
            self._recovery = None

    # ------------------------------------------------------------------ #
    # the GL_Lock / GL_Unlock primitives
    # ------------------------------------------------------------------ #
    def acquire(self, core_id: int):
        """Coroutine: ``GL_Lock`` — returns True once TOKEN is granted.

        Returns False (without blocking) when the device is unhealthy or
        trips while this core is waiting; the caller must then take its
        software fallback path.  On a fault-free machine the result is
        always True and callers may ignore it.
        """
        if not self.healthy:
            return False
        token = self.sim.signal(f"glock{self.lock_id}-token-{core_id}")

        def on_grant(value=None) -> None:
            # runs synchronously inside the TOKEN delivery event, so
            # ``holder`` is never None while a grant is in flight to the
            # process — the recovery quiesce check relies on this
            if value is False:  # device tripped: abort, do not take the lock
                token.fire(False)
                return
            if self._holder is not None:
                raise RuntimeError(
                    f"GLock {self.lock_id}: token granted to {core_id} while "
                    f"held by {self._holder}"
                )
            self._holder = core_id
            token.fire(value)

        # "mov 1, lock_req": the store and the REQ signal overlap in the
        # same cycle (Figure 4 labels REQ as cycle 1 after a cycle-0 try)
        self.network.request(core_id, on_grant)
        self.counters.add("glock.acquires")
        if self._recovery is not None:
            self._recovery.arm_watchdog(core_id, token)
        granted = yield token  # the bnz spin on lock_req, locally in the core
        if granted is False:
            return False  # device tripped while we waited
        return True

    def release(self, core_id: int):
        """Coroutine: ``GL_Unlock`` — a single 1-cycle register store."""
        if self._holder != core_id:
            raise RuntimeError(
                f"GLock {self.lock_id}: core {core_id} released a lock held "
                f"by {self._holder}"
            )
        self._holder = None
        self.network.release(core_id)  # noqa: SIM001 — plain REL signal, not a coroutine
        self.counters.add("glock.releases")
        yield 1  # "mov 1, lock_rel"

    @property
    def holder(self) -> Optional[int]:
        """Core currently holding this GLock (None if free)."""
        return self._holder


class GLockPool:
    """The chip's fixed set of hardware GLocks.

    ``assign`` hands out physical devices to program-level locks.  With
    ``allow_sharing=False`` (the paper's static provisioning) exhausting the
    pool is an error; with ``allow_sharing=True`` further locks are
    multiplexed round-robin onto existing devices — the future-work mode for
    multiprogrammed workloads.  Sharing is safe (one token per network) but
    serializes the sharers' critical sections.
    """

    def __init__(self, sim: Simulator, config: CMPConfig, counters: CounterSet,
                 levels: int = 2, allow_sharing: bool = False,
                 arbitration: str = "round_robin", faults=None) -> None:
        self.counters = counters
        self.faults = faults
        self.devices = [
            GLockDevice(sim, config, counters, lock_id=i, levels=levels,
                        arbitration=arbitration, faults=faults)
            for i in range(config.gline.n_glocks)
        ]
        self.allow_sharing = allow_sharing
        self._assigned = 0
        # program-level locks multiplexed onto each device, by lock_id
        self._shared_devices: Dict[int, int] = {}

    def assign(self) -> GLockDevice:
        """Reserve a device for one program-level lock."""
        if self._assigned < len(self.devices):
            device = self.devices[self._assigned]
        elif self.allow_sharing:
            device = self.devices[self._assigned % len(self.devices)]
        else:
            raise RuntimeError(
                f"all {len(self.devices)} hardware GLocks are assigned; "
                "enable sharing or provision more in GLineConfig.n_glocks"
            )
        self._assigned += 1
        self._shared_devices[device.lock_id] = \
            self._shared_devices.get(device.lock_id, 0) + 1
        return device

    @property
    def fallback_kind(self) -> str:
        """Software lock flavour tripped devices degrade to (FaultPlan)."""
        if self.faults is not None:
            return self.faults.plan.fallback_kind
        return "tatas"

    @property
    def n_assigned(self) -> int:
        """Program-level locks assigned so far."""
        return self._assigned

    def device_sharers(self, lock_id: int) -> int:
        """Program-level locks currently multiplexed onto device ``lock_id``."""
        if not 0 <= lock_id < len(self.devices):
            raise ValueError(f"no GLock device {lock_id}")
        return self._shared_devices.get(lock_id, 0)

    @property
    def sharer_counts(self) -> Dict[int, int]:
        """Per-device sharer counts ``{lock_id: n_program_locks}``.

        Under the paper's static provisioning every count is 0 or 1; with
        ``allow_sharing`` the excess program locks round-robin onto devices
        and counts report the serialization pressure on each network.
        """
        return dict(self._shared_devices)
