"""GLocks: the paper's hardware token-lock mechanism (Section III).

A dedicated network of G-lines (single-cycle 1-bit broadcast wires) carries
``REQ`` / ``REL`` / ``TOKEN`` signals between per-core local controllers,
per-row secondary lock managers and one primary lock manager.  Round-robin
arbitration at both levels yields a completely fair lock with a 2-4 cycle
acquire and 1-cycle release, entirely decoupled from the memory hierarchy.

Modules:

- :mod:`repro.core.gline` — the 1-bit single-cycle wire model;
- :mod:`repro.core.controllers` — the token-manager FSM (one class covers
  both primary and secondary managers, per Figure 6);
- :mod:`repro.core.network` — builds the manager tree for a mesh (2-level
  for <=49 cores; deeper trees implement the paper's future-work
  hierarchical extension);
- :mod:`repro.core.glock` — the per-lock device with the ``lock_req`` /
  ``lock_rel`` register interface of Figure 5;
- :mod:`repro.core.cost` — the analytical Table I cost model;
- :mod:`repro.core.virtual` — dynamic lock-to-network virtualization (the
  conclusions' future-work item for multiprogrammed workloads).
"""

from repro.core.cost import GLockCost, cost_model
from repro.core.gline import GLine
from repro.core.glock import GLockDevice, GLockPool
from repro.core.network import GLineNetwork
from repro.core.virtual import DynamicGLockManager, VirtualGLock

__all__ = ["GLine", "GLineNetwork", "GLockDevice", "GLockPool", "GLockCost",
           "cost_model", "DynamicGLockManager", "VirtualGLock"]
