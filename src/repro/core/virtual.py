"""Dynamic GLock virtualization — the conclusions' second future-work item.

The paper provisions a small fixed number of physical GLock networks and
notes that multiprogrammed workloads would need them "statically or
dynamically shared".  :class:`DynamicGLockManager` implements the dynamic
variant: program-level :class:`VirtualGLock` handles bind to a physical
device on first use, and an unbound lock may *steal* an idle device (one
whose token is parked with no holder and no outstanding requests) from a
lock that has gone quiet.  When every device is busy, the virtual lock
falls back to its embedded TATAS lock in shared memory — the hybrid
degrades, it never blocks.

The binding table models a small hardware mapping table consulted on each
``GL_Lock``; a lookup costs :data:`BIND_LATENCY` cycles.  Stealing is only
permitted from a quiescent network (no holder and no registered waiters —
a REQ registers its waiter synchronously before any signal travels, so
"no waiters" really means no request anywhere in flight).  Each physical
network therefore serves one lock at a time and mutual exclusion is
preserved unconditionally, which the test suite asserts under adversarial
schedules.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.glock import GLockDevice, GLockPool
from repro.locks.base import Lock
from repro.locks.tatas import TatasLock
from repro.mem.hierarchy import MemorySystem

__all__ = ["DynamicGLockManager", "VirtualGLock", "BIND_LATENCY"]

#: cycles to consult/update the lock-to-network mapping table
BIND_LATENCY = 2


class DynamicGLockManager:
    """Allocates physical GLock devices to virtual locks on demand."""

    def __init__(self, pool: GLockPool, mem: MemorySystem) -> None:
        self.devices: List[GLockDevice] = list(pool.devices)
        self.mem = mem
        self.counters = pool.counters
        self._bound: Dict[int, "VirtualGLock"] = {}  # device lock_id -> lock
        self.binds = 0
        self.steals = 0
        self.fallbacks = 0

    def make_lock(self, name: str = "") -> "VirtualGLock":
        """Create a virtual lock managed by this table."""
        return VirtualGLock(self, self.mem, name)

    # ------------------------------------------------------------------ #
    # binding (called synchronously from VirtualGLock.acquire)
    # ------------------------------------------------------------------ #
    def try_bind(self, lock: "VirtualGLock") -> Optional[GLockDevice]:
        """Bind ``lock`` to a free or stealable device, or return None.

        Tripped (unhealthy) devices are never bound or stolen: a lock
        that loses its device to a trip rebinds to a surviving one, or
        degrades to its embedded software fallback.
        """
        for device in self.devices:
            if device.healthy and device.lock_id not in self._bound:
                self._bound[device.lock_id] = lock
                self.binds += 1
                self.counters.add("vglock.binds")
                return device
        for device in self.devices:
            if device.healthy and self._quiescent(device):
                old = self._bound[device.lock_id]
                old.device = None
                self._bound[device.lock_id] = lock
                self.binds += 1
                self.steals += 1
                self.counters.add("vglock.binds")
                self.counters.add("vglock.steals")
                return device
        self.fallbacks += 1
        self.counters.add("vglock.fallbacks")
        return None

    def unbind(self, lock: "VirtualGLock") -> None:
        """Drop ``lock``'s binding (its device tripped)."""
        device = lock.device
        lock.device = None
        if device is not None and self._bound.get(device.lock_id) is lock:
            del self._bound[device.lock_id]

    @staticmethod
    def _quiescent(device: GLockDevice) -> bool:
        """True when nothing holds or waits on the device's network."""
        return (device.holder is None
                and not device.network._token_callbacks)


class VirtualGLock(Lock):
    """A program lock dynamically mapped onto the physical GLock pool."""

    def __init__(self, manager: DynamicGLockManager, mem: MemorySystem,
                 name: str = "") -> None:
        super().__init__(name)
        self.manager = manager
        self.device: Optional[GLockDevice] = None
        self._fallback = TatasLock(mem, name=f"{self.name}-fallback")
        # core_id -> ("glock", device) or ("fallback", None), per holder
        self._mode: Dict[int, Tuple[str, Optional[GLockDevice]]] = {}
        # threads currently waiting on or holding the fallback lock; while
        # any exist, later acquirers MUST also take the fallback path, or a
        # fallback holder and a G-line token holder would coexist
        self._fallback_active = 0

    def acquire(self, ctx):
        yield from ctx.compute(BIND_LATENCY)  # mapping-table lookup
        # the check/bind/request sequence below runs in one synchronous step
        # of the event loop, so no other thread can interleave with it
        device = None
        if self._fallback_active == 0:
            if self.device is not None and not self.device.healthy:
                self.manager.unbind(self)  # device tripped: rebind or degrade
            device = self.device
            if device is None:
                device = self.manager.try_bind(self)
                if device is not None:
                    self.device = device
        if device is not None:
            self._mode[ctx.core_id] = ("glock", device)
            ok = yield from device.acquire(ctx.core_id)
            if ok is not False:
                return
            # the device tripped while we waited: fall through to the
            # software path (safe — a tripped device grants no tokens)
            self.manager.counters.add("faults.fallback_acquires")
        self._mode[ctx.core_id] = ("fallback", None)
        self._fallback_active += 1
        yield from self._fallback.acquire(ctx)

    def release(self, ctx):
        mode, device = self._mode.pop(ctx.core_id)
        if mode == "glock":
            yield from device.release(ctx.core_id)
        else:
            yield from self._fallback.release(ctx)
            self._fallback_active -= 1
