"""G-line network construction for one GLock.

For a 2D-mesh CMP the paper deploys, per lock:

- one local controller per core (the leaf ports),
- one secondary lock manager per mesh row (``sqrt(C)`` for square meshes),
- one primary lock manager,

connected by ``C - 1`` G-lines (each row contributes ``cols - 1`` horizontal
lines — the manager's own core uses an internal flag — plus ``rows - 1``
vertical lines to the primary).  Every G-line must respect the drop limit
(six transmitters + one receiver, Section III-F), which bounds a single
2-level network at 7x7 cores.

``levels=3`` builds the paper's *future-work* hierarchical extension: rows
are grouped under intermediate managers so arbitrarily large meshes stay
within the drop limit at the cost of two extra cycles per token round-trip.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.controllers import LeafPort, TokenManager
from repro.sim.config import CMPConfig
from repro.sim.kernel import Simulator
from repro.sim.stats import CounterSet

__all__ = ["GLineNetwork"]


class GLineNetwork:
    """The per-lock tree of token managers and leaf ports."""

    def __init__(self, sim: Simulator, config: CMPConfig, counters: CounterSet,
                 lock_id: int = 0, levels: int = 2,
                 arbitration: str = "round_robin", faults=None) -> None:
        if levels not in (2, 3):
            raise ValueError("supported tree depths: 2 (paper) or 3 (hierarchical)")
        self.sim = sim
        self.config = config
        self.counters = counters
        self.lock_id = lock_id
        self.levels = levels
        self.arbitration = arbitration
        #: per-network fault-injection port (None on a fault-free machine)
        self.fault_port = faults.port_for(self) if faults is not None else None
        latency = config.gline.gline_latency
        max_drops = config.gline.max_drops

        # group cores by mesh row
        rows: Dict[int, List[int]] = {}
        for core in range(config.n_cores):
            _, y = config.tile_coords(core)
            rows.setdefault(y, []).append(core)
        for y, cores in rows.items():
            # one core per row hosts the manager (internal flag), so a row of
            # k cores needs k-1 transmitters + 1 receiver = k drops
            if levels == 2 and len(cores) > max_drops:
                raise ValueError(
                    f"row {y} has {len(cores)} cores; a G-line supports "
                    f"{max_drops} drops — use levels=3 (hierarchical) or a "
                    "smaller mesh"
                )

        self.root = TokenManager(sim, counters, f"R{lock_id}", latency,
                                 arbitration, fault_port=self.fault_port)
        self.root.make_root()
        self.secondaries: List[TokenManager] = []
        self._token_callbacks: Dict[int, Callable[[], None]] = {}
        self._leaf_manager: Dict[int, TokenManager] = {}
        self._leaf_index: Dict[int, int] = {}

        if levels == 2:
            parents = [self.root] * len(rows)
        else:
            # group rows under intermediate managers, max_drops-1 rows each
            n_groups = -(-len(rows) // (max_drops - 1))
            intermediates = [
                TokenManager(sim, counters, f"I{lock_id}.{g}", latency,
                             arbitration, fault_port=self.fault_port)
                for g in range(n_groups)
            ]
            for mgr in intermediates:
                self.root.attach_child(mgr)
            parents = [
                intermediates[i // (max_drops - 1)] for i in range(len(rows))
            ]
            self.intermediates = intermediates

        for (y, cores), parent in zip(sorted(rows.items()), parents):
            mgr = TokenManager(sim, counters, f"S{lock_id}.{y}", latency,
                               arbitration, fault_port=self.fault_port)
            parent.attach_child(mgr)
            self.secondaries.append(mgr)
            for core in cores:
                port = LeafPort(self._make_token_cb(core))
                idx = mgr.attach_child(port)
                self._leaf_manager[core] = mgr
                self._leaf_index[core] = idx

        if self.fault_port is not None:
            for mgr in self._all_managers():
                self.fault_port.register_manager(mgr)

    def _make_token_cb(self, core: int) -> Callable[[], None]:
        def deliver() -> None:
            cb = self._token_callbacks.pop(core, None)
            if cb is None:
                if self.fault_port is not None:
                    # stale grant that survived a regeneration epoch or a
                    # duplicated REQ path: count it, never double-grant
                    self.counters.add("faults.spurious_token")
                    return
                raise RuntimeError(
                    f"GLock {self.lock_id}: TOKEN for core {core} "
                    "but it is not waiting"
                )
            cb()

        return deliver

    def _all_managers(self):
        yield self.root
        if self.levels == 3:
            yield from self.intermediates
        yield from self.secondaries

    # ------------------------------------------------------------------ #
    # local-controller interface (used by the GLock device)
    # ------------------------------------------------------------------ #
    def request(self, core: int, on_token: Callable[[], None]) -> None:
        """Core raises REQ; ``on_token`` runs when TOKEN is granted."""
        if core in self._token_callbacks:
            raise RuntimeError(
                f"GLock {self.lock_id}: core {core} requested twice"
            )
        self._token_callbacks[core] = on_token
        self._leaf_manager[core].signal_request(self._leaf_index[core])

    def release(self, core: int) -> None:
        """Core raises REL."""
        self._leaf_manager[core].signal_release(self._leaf_index[core])

    # ------------------------------------------------------------------ #
    # recovery (token regeneration, repro.faults.RecoveryController)
    # ------------------------------------------------------------------ #
    def reset_for_recovery(self) -> None:
        """Regenerate the token: reset every manager, re-seed the primary.

        Only safe while no core holds the device and the fault port's
        epoch has been bumped (voiding every in-flight pulse) — the
        recovery controller's quiesce handshake establishes both before
        calling.  Waiting cores keep their registered callbacks; their
        REQs are simply raised again.
        """
        for mgr in self._all_managers():
            mgr.reset_state()
        self.root.has_token = True
        for core in sorted(self._token_callbacks):
            self._leaf_manager[core].signal_request(self._leaf_index[core])

    # ------------------------------------------------------------------ #
    # Table I resource counts for this concrete network
    # ------------------------------------------------------------------ #
    @property
    def n_glines(self) -> int:
        """Dedicated G-lines: one per non-colocated transmitter.

        Matches the paper's ``C - 1`` for the 2-level network (each row has
        ``cols - 1`` horizontal lines plus ``rows - 1`` vertical ones).
        """
        total = 0
        for mgr in self.secondaries:
            total += len(mgr.children) - 1  # one local controller is internal
        if self.levels == 2:
            total += len(self.secondaries) - 1  # verticals to the primary
        else:
            for inter in self.intermediates:
                total += len(inter.children) - 1
            total += len(self.intermediates) - 1
        return total

    @property
    def n_managers(self) -> int:
        """Primary + intermediates + secondaries."""
        n = 1 + len(self.secondaries)
        if self.levels == 3:
            n += len(self.intermediates)
        return n
