"""Table I — hardware/software cost of GLocks.

The analytical closed forms (``C-1`` G-lines, ``sqrt(C)`` secondary
managers...) come from :func:`repro.core.cost.cost_model`; the acquire and
release latencies are additionally *measured* on the simulated FSMs with a
probe run, so the table is backed by the implementation rather than just
restated.

Run standalone: ``python -m repro.experiments.table1_cost``
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.report import format_table
from repro.core import GLockDevice, cost_model
from repro.sim.config import CMPConfig
from repro.sim.kernel import Simulator
from repro.sim.stats import CounterSet

__all__ = ["run", "render", "measure_latencies"]


def measure_latencies(n_cores: int = 49) -> Dict[str, int]:
    """Measure best/worst acquire and release latency on the live FSMs."""
    sim = Simulator()
    cfg = CMPConfig.baseline(n_cores)
    dev = GLockDevice(sim, cfg, CounterSet())
    seen: Dict[str, int] = {}

    def worst_probe():
        # token parked at the primary, requester in a far row: full 4 cycles
        t0 = sim.now
        yield from dev.acquire(n_cores - 1)
        seen["acquire_worst"] = sim.now - t0
        t0 = sim.now
        yield from dev.release(n_cores - 1)
        seen["release"] = sim.now - t0

    p = sim.spawn(worst_probe())
    sim.run_until_processes_finish([p])

    # best case: the token is at the requester's own secondary (a same-row
    # core holds the lock); the acquire completes 2 G-line cycles after the
    # holder's release -- exactly the Figure 4(c) intra-row handoff
    def holder():
        yield from dev.acquire(0)
        yield 20  # hold while core 1's request reaches the secondary
        seen["release_time"] = sim.now
        yield from dev.release(0)

    def same_row_waiter():
        yield 3  # request while core 0 holds the lock
        yield from dev.acquire(1)
        seen["acquire_best"] = sim.now - seen["release_time"]
        yield from dev.release(1)

    p1 = sim.spawn(holder())
    p2 = sim.spawn(same_row_waiter())
    sim.run_until_processes_finish([p1, p2])
    return seen


def run(n_cores: int = 49) -> Dict:
    """Analytical Table I plus measured latencies."""
    cost = cost_model(CMPConfig.baseline(n_cores))
    measured = measure_latencies(n_cores)
    return {"cost": cost, "measured": measured}


def render(results: Dict) -> str:
    """Table I with an extra 'measured' column for the latency rows."""
    cost = results["cost"]
    measured = results["measured"]
    rows = [[label, value, ""] for label, value in cost.rows()]
    extras = {
        "Lock Acquire (worst case)": measured.get("acquire_worst"),
        "Lock Acquire (best case)": measured.get("acquire_best"),
        "Lock Release": measured.get("release"),
    }
    for row in rows:
        if row[0] in extras and extras[row[0]] is not None:
            row[2] = f"{extras[row[0]]} cycles (measured)"
    return format_table(
        ["resource / latency", "model", "simulated"], rows,
        title=f"Table I: GLocks cost for a {cost.n_cores}-core 2D-mesh CMP",
    )


if __name__ == "__main__":
    print(render(run()))
