"""Overload study: throughput/goodput/latency vs offered load.

The serving workloads (:mod:`repro.workloads.serving`) are *open-loop*:
requests arrive at a configured rate whether or not the lock keeps up.
This harness sweeps that rate over a set of lock kinds and plots the two
curves the overload-robustness literature cares about:

- **throughput** keeps climbing until the lock saturates, then flattens;
- **goodput** (completions that also met their deadline) *collapses*
  past saturation for an unprotected lock — queueing delay grows without
  bound and every completion arrives too late — while the same lock
  under concurrency restriction (``cr:<kind>``) sheds excess requests
  early and holds goodput near its peak.

A per-lock **collapse detector** flags curves whose goodput at the top
swept load falls below :data:`COLLAPSE_FRACTION` of their peak, and a
**gate** (``--gate``; the CI overload-smoke job) fails the process if
any ``cr:``-wrapped lock collapses: for every swept point at >= 2x the
saturation load (the load of peak goodput), goodput must stay within
:data:`GATE_FRACTION` of the peak.

Every point runs through the experiment engine (cached by spec digest,
fanned out across ``--jobs``); the request records ride inside the
result fingerprint, so the curves are byte-identical across
inline/pool/remote backends.

Run standalone: ``python -m repro.experiments.ablate_overload``
CI smoke:       ``python -m repro.experiments.ablate_overload --smoke \\
                    --sanitize --race-detect --gate --export curves.json``
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

from repro.analysis.latency import summarize_requests
from repro.analysis.report import format_table
from repro.experiments.common import skipped_note
from repro.runner import MachineSpec, RunSpec, run_specs

__all__ = ["run", "render", "export", "gate_check",
           "LOADS", "SMOKE_LOADS", "LOCKS", "SMOKE_LOCKS"]

#: machine-wide offered load swept, in requests per kilocycle
LOADS = (1.0, 2.0, 4.0, 8.0, 16.0)
SMOKE_LOADS = (1.0, 4.0, 12.0)

#: lock kinds compared: each plain spin/queue lock next to its
#: concurrency-restricted wrapper
LOCKS = ("tatas", "cr4:tatas", "mcs", "cr4:mcs")
SMOKE_LOCKS = ("tatas", "cr2:tatas", "mcs", "cr2:mcs")

DEADLINE = 3_000          #: per-request latency budget, cycles
DURATION = 24_000         #: arrival window, cycles
SMOKE_DURATION = 8_000

#: goodput at the top swept load below this fraction of the curve's
#: peak => the lock collapsed under overload
COLLAPSE_FRACTION = 0.5
#: gate tolerance: cr-wrapped locks must hold this fraction of peak
#: goodput at every point >= 2x their saturation load
GATE_FRACTION = 0.7


def _spec(workload: str, lock: str, n_cores: int, load: float,
          duration: int, arrival: str, sanitize: bool) -> RunSpec:
    return RunSpec(
        workload=workload,
        hc_kind=lock,
        # 8x8+ meshes exceed the 7 drops a 2-level G-line row supports
        machine=MachineSpec.baseline(
            n_cores, glock_levels=3 if n_cores > 49 else 2),
        workload_params={
            "offered_load": load,
            "duration": duration,
            "deadline": DEADLINE,
            "arrival": arrival,
        },
        sanitize=sanitize,
        # liveness net: even a fully backlogged blocking lock drains the
        # finite arrival window long before this
        max_cycles=30_000_000,
    )


def run(n_cores: int = 64, smoke: bool = False,
        loads: Sequence[float] = None,
        locks: Sequence[str] = None,
        workload: str = "kvstore",
        arrival: str = "poisson",
        sanitize: bool = False) -> Dict:
    """Sweep offered load x lock kind; return per-lock goodput curves.

    Returns a dict keyed by lock kind; each value holds ``curve`` (one
    point per load with the full :class:`~repro.analysis.latency.
    RequestSummary` fields), ``peak_goodput``, ``peak_load`` (the
    saturation estimate) and the ``collapsed`` flag.  ``meta`` records
    the sweep parameters and ``skipped`` lists (lock, load) points lost
    to collect-mode failures.
    """
    if loads is None:
        loads = SMOKE_LOADS if smoke else LOADS
    if locks is None:
        locks = SMOKE_LOCKS if smoke else LOCKS
    duration = SMOKE_DURATION if smoke else DURATION
    sanitize = sanitize or smoke

    specs: List[RunSpec] = []
    for lock in locks:
        for load in loads:
            specs.append(_spec(workload, lock, n_cores, load, duration,
                               arrival, sanitize))
    runs = run_specs(specs)

    out: Dict = {"meta": {
        "workload": workload, "arrival": arrival, "n_cores": n_cores,
        "deadline": DEADLINE, "duration": duration, "loads": list(loads),
    }}
    skipped: List[str] = []
    idx = 0
    for lock in locks:
        curve: List[Dict] = []
        for load in loads:
            b = runs[idx]
            idx += 1
            if b is None:
                skipped.append(f"{lock}@{load:g}")
                continue
            records = getattr(b.result, "requests", None) or []
            summary = summarize_requests(records, b.makespan,
                                         deadline=DEADLINE)
            point = {"load": load}
            point.update(summary.as_dict())
            curve.append(point)
        if not curve:
            continue
        peak = max(curve, key=lambda p: p["goodput"])
        out[lock] = {
            "curve": curve,
            "peak_goodput": peak["goodput"],
            "peak_load": peak["load"],
            "collapsed": (curve[-1]["goodput"]
                          < COLLAPSE_FRACTION * peak["goodput"]),
        }
    out["skipped"] = skipped
    out["gate"] = gate_check(out)
    return out


def gate_check(results: Dict, fraction: float = GATE_FRACTION) -> Dict:
    """Collapse-regression gate over the ``cr:``-wrapped curves.

    Every swept point at >= 2x a cr lock's saturation load must hold at
    least ``fraction`` of that lock's peak goodput.  (Points short of 2x
    saturation are still climbing or just cresting — only the overload
    tail is gated.)  With no such point the top swept load is gated
    instead, so the gate can never pass vacuously.
    """
    failures: List[str] = []
    checked: List[str] = []
    for lock, data in results.items():
        if lock in ("meta", "skipped", "gate") or not lock.startswith("cr"):
            continue
        checked.append(lock)
        peak, sat = data["peak_goodput"], data["peak_load"]
        tail = [p for p in data["curve"] if p["load"] >= 2 * sat]
        for point in tail or data["curve"][-1:]:
            if point["goodput"] < fraction * peak:
                failures.append(
                    f"{lock}@{point['load']:g}: goodput "
                    f"{point['goodput']:.2f} < {fraction:g} x peak {peak:.2f}")
    return {"ok": not failures, "fraction": fraction,
            "checked": checked, "failures": failures}


def render(results: Dict) -> str:
    rows = []
    for lock, data in results.items():
        if lock in ("meta", "skipped", "gate"):
            continue
        for point in data["curve"]:
            rows.append([
                lock,
                f"{point['load']:g}",
                f"{point['throughput']:.2f}",
                f"{point['goodput']:.2f}",
                f"{point['shed_rate']:.2f}",
                point["p50"] if point["p50"] is not None else "n/a",
                point["p99"] if point["p99"] is not None else "n/a",
                point["p999"] if point["p999"] is not None else "n/a",
            ])
        rows.append([
            f"{lock} [peak]",
            f"{data['peak_load']:g}",
            "", f"{data['peak_goodput']:.2f}",
            "COLLAPSED" if data["collapsed"] else "holds", "", "", "",
        ])
    meta = results.get("meta", {})
    table = format_table(
        ["lock", "load/kc", "thrpt/kc", "goodput/kc", "shed",
         "p50", "p99", "p999"],
        rows,
        title=(f"Overload sweep: {meta.get('workload', '?')} x "
               f"{meta.get('n_cores', '?')} cores, "
               f"{meta.get('arrival', '?')} arrivals, "
               f"deadline {meta.get('deadline', '?')} cycles"),
    ) + skipped_note(results.get("skipped", ()))
    gate = results.get("gate", {})
    if gate.get("checked"):
        verdict = "PASS" if gate["ok"] else "FAIL"
        table += (f"\ncr gate [{verdict}]: goodput >= "
                  f"{gate['fraction']:g} x peak past 2x saturation "
                  f"for {', '.join(gate['checked'])}")
        for failure in gate.get("failures", ()):
            table += f"\n  gate violation: {failure}"
    return table


def export(results: Dict, path: str) -> int:
    """Write the full curve set as JSON (the CI artifact / plot input).

    Returns the number of curve points written.
    """
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return sum(len(data["curve"]) for lock, data in results.items()
               if lock not in ("meta", "skipped", "gate"))


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="overload sweep: goodput vs offered load per lock kind")
    parser.add_argument("--smoke", action="store_true",
                        help="small sweep for CI")
    parser.add_argument("--cores", type=int, default=64)
    parser.add_argument("--workload", default="kvstore",
                        choices=("kvstore", "msgqueue", "webserver"))
    parser.add_argument("--arrival", default="poisson",
                        choices=("poisson", "bursty"))
    parser.add_argument("--sanitize", action="store_true",
                        help="attach the invariant sanitizer to every run")
    parser.add_argument("--race-detect", action="store_true",
                        help="run under the data-race detector (in-process)")
    parser.add_argument("--export", default=None, metavar="PATH",
                        help="write curve JSON to PATH")
    parser.add_argument("--gate", action="store_true",
                        help="exit 1 if a cr: lock fails the collapse gate "
                             "(or any race is detected)")
    args = parser.parse_args(argv)

    def sweep() -> Dict:
        return run(n_cores=args.cores, smoke=args.smoke,
                   workload=args.workload, arrival=args.arrival,
                   sanitize=args.sanitize)

    if args.race_detect:
        from repro.verify.races import race_detection
        with race_detection() as races:
            results = sweep()
        print(render(results))
        print()
        print(races.format_report())
        if races.races:
            return 1
    else:
        results = sweep()
        print(render(results))

    if args.export:
        points = export(results, args.export)
        print(f"wrote {points} curve points to {args.export}")
    if args.gate and not results["gate"]["ok"]:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
