"""Ablation: fault rate vs. execution time — what recovery costs.

The paper's evaluation assumes perfect G-lines.  This harness breaks
them (``repro.faults``): it sweeps per-signal drop/delay fault rates over
the saturated synthetic workload and compares

- **GLocks with recovery** (watchdog + token regeneration + software
  fallback after ``trip_threshold`` failed recoveries), against
- **pure MCS**, the strongest software baseline — which never touches a
  G-line and is therefore immune to every fault this model injects.

The interesting output is the crossover: at low fault rates the GLock
still wins despite occasional regenerations; as the rate grows the
watchdog/regeneration overhead mounts until devices trip and the GLock
column converges to (slightly above) the software fallback's cost.

Every point runs through the experiment engine, so sweeps are cached by
spec digest and fan out across ``--jobs`` workers; each (rate, seed)
point is one deterministic :class:`~repro.faults.FaultPlan`.

Run standalone: ``python -m repro.experiments.ablate_faults``
CI smoke:       ``repro-sim experiment ablate-faults --smoke --jobs 2``
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.report import format_table
from repro.experiments.common import skipped_note
from repro.faults import FaultPlan, fault_summary
from repro.runner import MachineSpec, RunSpec, run_specs

__all__ = ["run", "render", "RATES", "SMOKE_RATES"]

#: per-signal fault probabilities swept (applied to drop AND delay)
RATES = (0.0, 2e-4, 1e-3, 5e-3)
SMOKE_RATES = (0.0, 1e-3)

SEEDS = (11, 12, 13)
SMOKE_SEEDS = (11, 12)


def _spec(n_cores: int, iterations: int, hc_kind: str,
          plan: FaultPlan, sanitize: bool) -> RunSpec:
    return RunSpec(
        workload="synth",
        hc_kind=hc_kind,
        machine=MachineSpec.baseline(
            n_cores, fault_plan=plan if plan.enabled else None),
        workload_params={"iterations_per_thread": iterations},
        sanitize=sanitize,
        # liveness net: recovery must finish the run long before this
        max_cycles=30_000_000,
    )


def run(n_cores: int = 16, smoke: bool = False,
        rates: Sequence[float] = None,
        seeds: Sequence[int] = None) -> Dict[float, Dict[str, float]]:
    """Fault rate -> mean metrics over the seeds (plus the MCS baseline).

    ``smoke`` shrinks the sweep for CI (two rates, two seeds, short
    workload) and force-enables the invariant sanitizer on every run, so
    the chaos job also proves mutual exclusion under injection.

    Collect-mode campaigns average each rate over its surviving seeds;
    a rate losing every seed is skipped, and losing the MCS baseline
    drops the "vs MCS" column (rendered as n/a).
    """
    if rates is None:
        rates = SMOKE_RATES if smoke else RATES
    if seeds is None:
        seeds = SMOKE_SEEDS if smoke else SEEDS
    iterations = 6 if smoke else 24
    n_cs = iterations * n_cores
    sanitize = True if smoke else False

    gl_specs: List[RunSpec] = []
    for rate in rates:
        for seed in seeds:
            plan = FaultPlan(seed=seed, drop_rate=rate, delay_rate=rate,
                             delay_cycles=16, watchdog_budget=1_500,
                             trip_threshold=6)
            gl_specs.append(_spec(n_cores, iterations, "glock", plan,
                                  sanitize))
    mcs_spec = _spec(n_cores, iterations, "mcs", FaultPlan.none(), sanitize)

    runs = run_specs(gl_specs + [mcs_spec])
    mcs = runs[-1]

    out: Dict = {}
    skipped: List = []
    for r_idx, rate in enumerate(rates):
        chunk = [b for b in runs[r_idx * len(seeds):(r_idx + 1) * len(seeds)]
                 if b is not None]
        if not chunk:
            skipped.append(rate)
            continue
        summaries = [fault_summary(b.result.counters) for b in chunk]
        out[rate] = {
            "cycles_per_cs": sum(b.makespan for b in chunk) / len(chunk) / n_cs,
            "traffic_per_cs": (sum(b.total_traffic for b in chunk)
                               / len(chunk) / n_cs),
            "injected": sum(s["injected_faults"] for s in summaries) / len(chunk),
            "recoveries": sum(s["recoveries"] for s in summaries) / len(chunk),
            "trips": sum(s["trips"] for s in summaries) / len(chunk),
            "fallbacks": sum(s["fallbacks"] for s in summaries) / len(chunk),
        }
    if mcs is not None:
        out["mcs"] = {  # baseline row, keyed by label
            "cycles_per_cs": mcs.makespan / n_cs,
            "traffic_per_cs": mcs.total_traffic / n_cs,
            "injected": 0.0, "recoveries": 0.0, "trips": 0.0,
            "fallbacks": 0.0,
        }
    else:
        skipped.append("mcs")
    out["skipped"] = skipped
    return out


def render(results: Dict) -> str:
    mcs_cpc = results.get("mcs", {}).get("cycles_per_cs")
    rows = []
    for key, r in results.items():
        if key == "skipped":
            continue
        label = "mcs (no faults)" if key == "mcs" else f"glock @{key:g}"
        rows.append([
            label,
            f"{r['cycles_per_cs']:.0f}",
            f"{r['cycles_per_cs'] / mcs_cpc:.2f}x" if mcs_cpc else "n/a",
            f"{r['traffic_per_cs']:.0f}",
            f"{r['injected']:.1f}",
            f"{r['recoveries']:.1f}",
            f"{r['trips']:.1f}",
            f"{r['fallbacks']:.1f}",
        ])
    return format_table(
        ["variant @fault-rate", "cycles/CS", "vs MCS", "bytes/CS",
         "injected", "recoveries", "trips", "fallbacks"],
        rows,
        title="Ablation: exec time and traffic vs G-line fault rate "
              "(mean over seeds)",
    ) + skipped_note(results.get("skipped", ()))


def export(results: Dict, path: str) -> int:
    """CSV of the sweep (one row per rate; plotting input)."""
    from repro.analysis.export import write_csv
    headers = ["rate", "cycles_per_cs", "traffic_per_cs", "injected",
               "recoveries", "trips", "fallbacks"]
    rows = [[key] + [r[h] for h in headers[1:]]
            for key, r in results.items() if key != "skipped"]
    return write_csv(path, headers, rows)


if __name__ == "__main__":
    print(render(run()))
