"""Figure 1 — potential benefits for Raytrace when using ideal locks.

Four configurations of the Raytrace proxy, all normalized to TATAS:

- **TATAS**   — every lock test-and-test&set (the paper's baseline bar);
- **TATAS-1** — the most contended lock idealized, rest TATAS;
- **TATAS-2** — both highly-contended locks idealized, rest TATAS;
- **IDEAL**   — every lock (including the 32 quiet ones) ideal.

The paper's finding: TATAS-2 recovers nearly all of IDEAL's benefit because
only 2 of Raytrace's 34 locks are highly contended.  Each bar also reports
the fraction of execution time spent on locks (the figure's grey segment).

Run standalone: ``python -m repro.experiments.fig01_ideal``
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.report import format_table
from repro.experiments.common import grouped_runs, skipped_note
from repro.runner import RunSpec

__all__ = ["run", "render", "CONFIGS"]

CONFIGS = ("TATAS", "TATAS-1", "TATAS-2", "IDEAL")


def run(scale: float = 1.0, n_cores: int = 32) -> Dict:
    """Returns per-config normalized time and lock fraction.

    Everything is normalized to the TATAS bar, so under a collect-mode
    campaign a failed TATAS run voids the whole figure — every config is
    reported under ``"skipped"``.
    """
    settings = {
        "TATAS": dict(hc_kinds=("tatas", "tatas"), other_kind="tatas"),
        "TATAS-1": dict(hc_kinds=("ideal", "tatas"), other_kind="tatas"),
        "TATAS-2": dict(hc_kinds=("ideal", "ideal"), other_kind="tatas"),
        "IDEAL": dict(hc_kinds=("ideal", "ideal"), other_kind="ideal"),
    }
    specs = [RunSpec.benchmark("raytr", scale=scale, n_cores=n_cores, **kw)
             for kw in settings.values()]
    groups, skipped = grouped_runs(list(settings), specs, 1)
    if "TATAS" not in groups:
        groups, skipped = {}, list(CONFIGS)
    out: Dict = {}
    for cfg, (r,) in groups.items():
        base = groups["TATAS"][0].makespan
        fractions = r.result.category_fractions()
        out[cfg] = {
            "normalized_time": r.makespan / base,
            "lock_fraction": fractions["lock"],
            "makespan": float(r.makespan),
        }
    out["skipped"] = skipped
    return out


def render(results: Dict) -> str:
    """Figure 1 as a table."""
    rows: List[list] = [
        [cfg, results[cfg]["normalized_time"], results[cfg]["lock_fraction"]]
        for cfg in CONFIGS if cfg in results
    ]
    return format_table(
        ["config", "normalized time", "lock fraction"], rows,
        title="Figure 1: Raytrace with ideal locks (normalized to TATAS)",
    ) + skipped_note(results.get("skipped", ()))


if __name__ == "__main__":
    print(render(run()))
