"""Ablation: arbitration policy — why the paper insists on round-robin.

Section III-B: "this is a key design point to ensure the fairness expected
from a lock implementation".  This ablation runs the saturated synthetic
workload under three arbiter policies and reports per-thread
critical-section counts:

- ``round_robin`` (the paper's): strict rotation with *bounded tenures* at
  both manager levels — the only globally fair policy of the three;
- ``fifo``: request-arrival order per manager.  Locally fair, but in a
  hierarchical token network a row whose cores keep re-requesting never
  drains its arrival queue, so its tenure never ends and other rows starve
  — a non-obvious argument for the paper's bounded-tenure rotation;
- ``static``: fixed priority — the strawman; starves high indices outright.

Fairness is summarized by the max/min ratio of per-thread
critical-section entries over a fixed simulated window (1.0 = perfectly
fair; ``inf`` = at least one core starved).  The unfair policies buy
throughput via locality (fewer token round-trips to the primary) — the
classic fairness/throughput trade the paper resolves in favour of fairness.

Run standalone: ``python -m repro.experiments.ablate_arbitration``
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.report import format_table
from repro.machine import Machine
from repro.runner import MachineSpec
from repro.workloads.synth import SyntheticLockWorkload

__all__ = ["run", "render", "POLICIES"]

POLICIES = ("round_robin", "fifo", "static")


def run(n_cores: int = 16, window: int = 20_000,
        policies: Sequence[str] = POLICIES) -> Dict[str, Dict[str, float]]:
    """Policy -> fairness metrics over a fixed simulated window.

    Runs a *fixed-window* probe (``sim.run(until=window)``) rather than a
    whole parallel phase, so it drives the machine directly from a
    :class:`~repro.runner.MachineSpec` instead of going through the
    engine (whose unit of work — and of caching — is a completed
    ``Machine.run``).
    """
    out: Dict[str, Dict[str, float]] = {}
    for policy in policies:
        machine = Machine.from_spec(
            MachineSpec.baseline(n_cores, glock_arbitration=policy))
        # enough demand to stay saturated for the whole window
        wl = SyntheticLockWorkload(iterations_per_thread=10_000)
        inst = wl.instantiate(machine, hc_kind="glock")
        procs = [machine.sim.spawn(p(machine.context(i)), name=f"c{i}")
                 for i, p in enumerate(inst.programs)]
        machine.sim.run(until=window)
        entries = dict(inst.entries)
        lo, hi = min(entries.values()), max(entries.values())
        out[policy] = {
            "min_entries": lo,
            "max_entries": hi,
            "unfairness": hi / lo if lo else float("inf"),
            "total": sum(entries.values()),
        }
    return out


def render(results: Dict[str, Dict[str, float]]) -> str:
    rows = [
        [policy, int(r["min_entries"]), int(r["max_entries"]),
         ("inf" if r["unfairness"] == float("inf")
          else f"{r['unfairness']:.2f}"),
         int(r["total"])]
        for policy, r in results.items()
    ]
    return format_table(
        ["arbitration", "min entries", "max entries", "max/min", "throughput"],
        rows,
        title="Ablation: arbiter fairness under saturation (fixed window)",
    )


if __name__ == "__main__":
    print(render(run()))
