"""Figure 9 — normalized network traffic, GLocks vs MCS.

Bytes transmitted through all switches of the main data network, broken
into Coherence / Request / Reply and normalized to the MCS configuration.
GLocks generate *zero* main-network traffic for lock synchronization (the
G-line fabric is separate), so the paper reports −76% for the
microbenchmarks and −23% for the applications on average, with Ocean the
smallest (−1%) since it spends <5% of its time on locks.

Run standalone: ``python -m repro.experiments.fig09_traffic``
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.report import format_table
from repro.experiments.common import (
    APPLICATIONS, MICROBENCHMARKS, grouped_runs, paper_averages,
    skipped_note,
)
from repro.noc.messages import MsgCategory
from repro.runner import RunSpec

__all__ = ["run", "render"]

BENCHES = MICROBENCHMARKS + APPLICATIONS
CATS = [c.value for c in MsgCategory]


def run(scale: float = 1.0, n_cores: int = 32, benchmarks=BENCHES) -> Dict:
    """Per-benchmark normalized traffic bars for MCS and GL, plus averages."""
    specs = [RunSpec.benchmark(name, kind, scale=scale, n_cores=n_cores)
             for name in benchmarks for kind in ("mcs", "glock")]
    groups, skipped = grouped_runs(benchmarks, specs, 2)
    bars: Dict[str, Dict[str, Dict[str, float]]] = {}
    ratios: Dict[str, float] = {}
    for name, (mcs, gl) in groups.items():
        base = max(mcs.total_traffic, 1)
        bars[name] = {
            "MCS": {c: mcs.result.traffic[c] / base for c in CATS},
            "GL": {c: gl.result.traffic[c] / base for c in CATS},
        }
        ratios[name] = gl.total_traffic / base
    return {"bars": bars, "ratios": ratios,
            "averages": paper_averages(ratios), "skipped": skipped}


def render(results: Dict) -> str:
    """Figure 9 as a table of stacked-bar heights."""
    rows = []
    for name, by_kind in results["bars"].items():
        for kind in ("MCS", "GL"):
            b = by_kind[kind]
            rows.append([name, kind, sum(b.values())] + [b[c] for c in CATS])
    for label, value in results["averages"].items():
        rows.append([label, "GL/MCS", value] + [""] * len(CATS))
    return format_table(
        ["benchmark", "locks", "total"] + CATS, rows,
        title="Figure 9: normalized network traffic (MCS = 1.0)",
    ) + skipped_note(results.get("skipped", ()))


if __name__ == "__main__":
    print(render(run()))
