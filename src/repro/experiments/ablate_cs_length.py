"""Ablation: critical-section length — where the GLocks advantage fades.

GLocks accelerate the *handoff*; they cannot shorten the critical section
itself.  Sweeping the CS length therefore locates the crossover where lock
choice stops mattering: with empty critical sections GL wins by the full
MCS-handoff factor, while for CSs much longer than a handoff the two
converge (the reason the paper's application gains are smaller than its
microbenchmark gains).

Run standalone: ``python -m repro.experiments.ablate_cs_length``
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.report import format_table
from repro.experiments.common import grouped_runs, skipped_note
from repro.runner import MachineSpec, RunSpec

__all__ = ["run", "render", "CS_LENGTHS"]

CS_LENGTHS = (0, 50, 200, 800, 3200)


def run(n_cores: int = 16, iterations: int = 20,
        cs_lengths: Sequence[int] = CS_LENGTHS) -> Dict:
    """CS length -> {lock kind: makespan} for MCS and GLocks.

    Sweep points dropped by a collect-mode campaign go to ``"skipped"``.
    """
    specs = [
        RunSpec(workload="synth", hc_kind=kind,
                machine=MachineSpec.baseline(n_cores),
                workload_params={"iterations_per_thread": iterations,
                                 "cs_compute": cs})
        for cs in cs_lengths for kind in ("mcs", "glock")
    ]
    groups, skipped = grouped_runs(cs_lengths, specs, 2)
    out: Dict = {}
    for cs, (mcs, gl) in groups.items():
        row: Dict[str, float] = {"mcs": float(mcs.makespan),
                                 "glock": float(gl.makespan)}
        row["gl_over_mcs"] = row["glock"] / row["mcs"]
        out[cs] = row
    out["skipped"] = skipped
    return out


def render(results: Dict) -> str:
    rows = [
        [cs, int(r["mcs"]), int(r["glock"]), r["gl_over_mcs"]]
        for cs, r in results.items() if cs != "skipped"
    ]
    return format_table(
        ["CS compute (cycles)", "MCS makespan", "GL makespan", "GL/MCS"],
        rows,
        title="Ablation: GLocks advantage vs critical-section length",
    ) + skipped_note(results.get("skipped", ()))


if __name__ == "__main__":
    print(render(run()))
