"""Ablation: MESI vs MSI — what the E state is worth under lock workloads.

The paper's CMP runs a MESI directory protocol.  The E (exclusive-clean)
state lets a core that read a line privately upgrade to M silently; without
it (MSI) every private read-then-write pays an Upgrade transaction at the
directory.  This ablation quantifies that on two extremes:

- **ocean** — stencil phases full of private read-modify-write on grid
  lines: MSI pays an extra Upgrade per grid line per phase;
- **sctr** — a shared counter that is never privately reusable: the E state
  is nearly worthless, so MESI ≈ MSI.

The GLocks comparison itself is protocol-agnostic (GLocks bypass both), so
the GL/MCS ratio should survive the protocol swap — also checked here.

Run standalone: ``python -m repro.experiments.ablate_coherence``
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from repro.analysis.report import format_table
from repro.experiments.common import grouped_runs, skipped_note
from repro.runner import MachineSpec, RunSpec
from repro.sim.config import CMPConfig

__all__ = ["run", "render"]


def _spec(name: str, protocol: str, hc_kind: str, n_cores: int,
          scale: float) -> RunSpec:
    cfg = replace(CMPConfig.baseline(n_cores), coherence=protocol)
    return RunSpec(workload=name, scale=scale, hc_kind=hc_kind,
                   machine=MachineSpec(config=cfg))


def run(n_cores: int = 16, scale: float = 0.25) -> Dict:
    """Benchmark -> metrics under both protocols.

    All four cells of a benchmark's protocol x lock matrix feed its
    ratios, so a collect-mode failure in any cell skips the benchmark.
    """
    names = ("ocean", "sctr")
    matrix = [(protocol, kind)
              for protocol in ("mesi", "msi") for kind in ("mcs", "glock")]
    specs = [_spec(name, protocol, kind, n_cores, scale)
             for name in names for protocol, kind in matrix]
    groups, skipped = grouped_runs(names, specs, len(matrix))
    out: Dict = {}
    for name, chunk in groups.items():
        by = {pk: bench.result for pk, bench in zip(matrix, chunk)}
        mesi, msi = by[("mesi", "mcs")], by[("msi", "mcs")]
        out[name] = {
            "msi_time_overhead": msi.makespan / mesi.makespan,
            "msi_traffic_overhead": msi.total_traffic / max(mesi.total_traffic, 1),
            "gl_ratio_mesi": by[("mesi", "glock")].makespan / mesi.makespan,
            "gl_ratio_msi": by[("msi", "glock")].makespan / msi.makespan,
        }
    out["skipped"] = skipped
    return out


def render(results: Dict) -> str:
    rows = [
        [name, r["msi_time_overhead"], r["msi_traffic_overhead"],
         r["gl_ratio_mesi"], r["gl_ratio_msi"]]
        for name, r in results.items() if name != "skipped"
    ]
    return format_table(
        ["benchmark", "MSI/MESI time", "MSI/MESI traffic",
         "GL/MCS (MESI)", "GL/MCS (MSI)"],
        rows,
        title="Ablation: value of the E state (MESI vs MSI)",
    ) + skipped_note(results.get("skipped", ()))


if __name__ == "__main__":
    print(render(run()))
