"""Ablation: MESI vs MSI — what the E state is worth under lock workloads.

The paper's CMP runs a MESI directory protocol.  The E (exclusive-clean)
state lets a core that read a line privately upgrade to M silently; without
it (MSI) every private read-then-write pays an Upgrade transaction at the
directory.  This ablation quantifies that on two extremes:

- **ocean** — stencil phases full of private read-modify-write on grid
  lines: MSI pays an extra Upgrade per grid line per phase;
- **sctr** — a shared counter that is never privately reusable: the E state
  is nearly worthless, so MESI ≈ MSI.

The GLocks comparison itself is protocol-agnostic (GLocks bypass both), so
the GL/MCS ratio should survive the protocol swap — also checked here.

Run standalone: ``python -m repro.experiments.ablate_coherence``
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from repro.analysis.report import format_table
from repro.machine import Machine
from repro.sim.config import CMPConfig
from repro.workloads import make_workload

__all__ = ["run", "render"]


def _run_one(name: str, protocol: str, hc_kind: str, n_cores: int,
             scale: float):
    cfg = replace(CMPConfig.baseline(n_cores), coherence=protocol)
    machine = Machine(cfg)
    inst = make_workload(name, scale=scale).instantiate(machine,
                                                        hc_kind=hc_kind)
    result = machine.run(inst.programs)
    inst.validate(machine)
    return result


def run(n_cores: int = 16, scale: float = 0.25) -> Dict[str, Dict[str, float]]:
    """Benchmark -> metrics under both protocols."""
    out: Dict[str, Dict[str, float]] = {}
    for name in ("ocean", "sctr"):
        mesi = _run_one(name, "mesi", "mcs", n_cores, scale)
        msi = _run_one(name, "msi", "mcs", n_cores, scale)
        gl_mesi = _run_one(name, "mesi", "glock", n_cores, scale)
        gl_msi = _run_one(name, "msi", "glock", n_cores, scale)
        out[name] = {
            "msi_time_overhead": msi.makespan / mesi.makespan,
            "msi_traffic_overhead": msi.total_traffic / max(mesi.total_traffic, 1),
            "gl_ratio_mesi": gl_mesi.makespan / mesi.makespan,
            "gl_ratio_msi": gl_msi.makespan / msi.makespan,
        }
    return out


def render(results: Dict[str, Dict[str, float]]) -> str:
    rows = [
        [name, r["msi_time_overhead"], r["msi_traffic_overhead"],
         r["gl_ratio_mesi"], r["gl_ratio_msi"]]
        for name, r in results.items()
    ]
    return format_table(
        ["benchmark", "MSI/MESI time", "MSI/MESI traffic",
         "GL/MCS (MESI)", "GL/MCS (MSI)"],
        rows,
        title="Ablation: value of the E state (MESI vs MSI)",
    )


if __name__ == "__main__":
    print(render(run()))
