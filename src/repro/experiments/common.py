"""Shared experiment plumbing.

The heavy lifting now lives in :mod:`repro.runner`: harnesses describe
runs as :class:`~repro.runner.RunSpec` batches and submit them to the
active engine, which parallelizes across a process pool and caches
results in-process and (optionally) on disk.

:func:`run_benchmark` survives as a thin compatibility shim with the
classic signature — it builds the equivalent spec and submits it, so old
call sites transparently share the engine's caches.
"""

from __future__ import annotations

import math
import warnings
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.runner import BenchmarkRun, RunSpec, active_engine, run_specs
from repro.workloads.registry import APPLICATIONS, MICROBENCHMARKS

__all__ = [
    "BenchmarkRun", "run_benchmark", "clear_cache",
    "group_means", "geometric_means", "paper_averages",
    "grouped_runs", "skipped_note",
    "MICROBENCHMARKS", "APPLICATIONS",
]


def run_benchmark(name: str, hc_kind: str = "mcs", *, n_cores: int = 32,
                  scale: float = 1.0, other_kind: str = "tatas",
                  hc_kinds: Optional[Sequence[str]] = None) -> BenchmarkRun:
    """Run one benchmark once (engine-cached) and return its metrics.

    Compatibility shim over ``active_engine().run_spec(...)``.  New code
    should build :class:`~repro.runner.RunSpec` batches and submit them
    with :func:`repro.runner.run_specs`, which lets the engine run them
    in parallel.

    Args:
        name: a workload name (``sctr`` .. ``qsort``).
        hc_kind: lock kind for every highly-contended lock.
        n_cores: CMP size (Table II baseline otherwise).
        scale: input-size scale factor (1.0 = the paper's Table III inputs).
        other_kind: lock kind for non-contended locks (paper: TATAS).
        hc_kinds: per-HC-lock kinds, overriding ``hc_kind`` (Figure 1).
    """
    spec = RunSpec.benchmark(name, hc_kind, n_cores=n_cores, scale=scale,
                             other_kind=other_kind, hc_kinds=hc_kinds)
    return active_engine().run_spec(spec)


def clear_cache() -> None:
    """Drop the active engine's in-process memo (tests use this for
    isolation; any persistent disk cache is untouched)."""
    active_engine().clear_memory_cache()


def grouped_runs(keys: Sequence, specs: Sequence[RunSpec], per_key: int
                 ) -> Tuple[Dict, List]:
    """Submit one flat batch and regroup it ``per_key`` runs per key.

    The collect-mode backbone of the harnesses: under a campaign
    supervisor with ``fail_policy="collect"`` (``repro-sim experiment
    --fail-policy collect``), :func:`repro.runner.run_specs` yields
    ``None`` for failed or quarantined specs.  Keys missing any of their
    runs are dropped from ``groups`` and reported in ``skipped``, so a
    partial sweep still renders.  Under the default abort policy
    ``run_specs`` raises instead and ``skipped`` is always empty.

    Args:
        keys: one label per group, in submission order.
        specs: the flat batch — ``len(specs) == len(keys) * per_key``,
            grouped as ``specs[i*per_key:(i+1)*per_key]`` for ``keys[i]``.
        per_key: runs per key.

    Returns:
        ``(groups, skipped)`` where ``groups[key]`` is the tuple of
        ``per_key`` :class:`BenchmarkRun` and ``skipped`` lists the keys
        with at least one missing run.
    """
    if len(specs) != len(keys) * per_key:
        raise ValueError(f"expected {len(keys)}x{per_key} specs, "
                         f"got {len(specs)}")
    runs = run_specs(specs)
    groups: Dict = {}
    skipped: List = []
    for i, key in enumerate(keys):
        chunk = tuple(runs[i * per_key:(i + 1) * per_key])
        if all(r is not None for r in chunk):
            groups[key] = chunk
        else:
            skipped.append(key)
    return groups, skipped


def skipped_note(skipped: Sequence) -> str:
    """Footer line for renders of partial (collect-mode) sweeps."""
    if not skipped:
        return ""
    labels = ", ".join(str(k) for k in skipped)
    return (f"\n(skipped {len(skipped)} of the sweep — failed or "
            f"quarantined specs: {labels})")


def group_means(ratios: Mapping[str, float],
                groups: Mapping[str, Sequence[str]]) -> Dict[str, float]:
    """Arithmetic-mean group summaries (the paper reports plain averages).

    Benchmarks missing from ``ratios`` are skipped; a group with no
    member present maps to ``nan``.
    """
    out = {}
    for label, names in groups.items():
        vals = [ratios[n] for n in names if n in ratios]
        out[label] = sum(vals) / len(vals) if vals else float("nan")
    return out


def geometric_means(ratios: Mapping[str, float],
                    groups: Mapping[str, Sequence[str]]) -> Dict[str, float]:
    """Deprecated alias of :func:`group_means`.

    Historically misnamed: it always computed *arithmetic* means.
    """
    warnings.warn("geometric_means computes arithmetic means and was "
                  "renamed to group_means", DeprecationWarning, stacklevel=2)
    return group_means(ratios, groups)


def paper_averages(ratios: Mapping[str, float]) -> Dict[str, float]:
    """The paper's AvgM / AvgA summary rows over per-benchmark ratios.

    Groups with no benchmark present are omitted (partial sweeps).
    """
    means = group_means(ratios, {"AvgM": MICROBENCHMARKS,
                                 "AvgA": APPLICATIONS})
    return {label: m for label, m in means.items() if not math.isnan(m)}
