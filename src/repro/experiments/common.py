"""Shared experiment plumbing.

:func:`run_benchmark` builds a fresh machine, instantiates a workload with
the requested lock kinds, runs the parallel phase, validates the result and
returns everything the figures need.  Results are memoized per process so
Figures 8, 9 and 10 (which share the same 16 runs) pay for each run once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.energy import EnergyAccount, account_run, ed2p
from repro.machine import Machine, RunResult
from repro.sim.config import CMPConfig
from repro.workloads import make_workload
from repro.workloads.registry import APPLICATIONS, MICROBENCHMARKS

__all__ = [
    "BenchmarkRun", "run_benchmark", "clear_cache",
    "MICROBENCHMARKS", "APPLICATIONS",
]


@dataclass
class BenchmarkRun:
    """One benchmark execution and its derived metrics."""

    name: str
    hc_kinds: Tuple[str, ...]
    n_cores: int
    result: RunResult
    energy: EnergyAccount
    lock_labels: Dict[int, str]

    @property
    def makespan(self) -> int:
        return self.result.makespan

    @property
    def total_traffic(self) -> int:
        return self.result.total_traffic

    @property
    def ed2p(self) -> float:
        return ed2p(self.energy, self.result.makespan)


_cache: Dict[Tuple, BenchmarkRun] = {}


def clear_cache() -> None:
    """Drop memoized runs (tests use this for isolation)."""
    _cache.clear()


def run_benchmark(name: str, hc_kind: str = "mcs", *, n_cores: int = 32,
                  scale: float = 1.0, other_kind: str = "tatas",
                  hc_kinds: Optional[Sequence[str]] = None) -> BenchmarkRun:
    """Run one benchmark once (memoized) and return its metrics.

    Args:
        name: a workload name (``sctr`` .. ``qsort``).
        hc_kind: lock kind for every highly-contended lock.
        n_cores: CMP size (Table II baseline otherwise).
        scale: input-size scale factor (1.0 = the paper's Table III inputs).
        other_kind: lock kind for non-contended locks (paper: TATAS).
        hc_kinds: per-HC-lock kinds, overriding ``hc_kind`` (Figure 1).
    """
    kinds = tuple(hc_kinds) if hc_kinds is not None else None
    key = (name, hc_kind, kinds, n_cores, scale, other_kind)
    if key in _cache:
        return _cache[key]
    machine = Machine(CMPConfig.baseline(n_cores))
    workload = make_workload(name, scale=scale)
    instance = workload.instantiate(machine, hc_kind=hc_kind,
                                    other_kind=other_kind, hc_kinds=kinds)
    result = machine.run(instance.programs)
    instance.validate(machine)
    run = BenchmarkRun(
        name=name,
        hc_kinds=kinds or (hc_kind,) * workload.n_hc,
        n_cores=n_cores,
        result=result,
        energy=account_run(result),
        lock_labels=dict(instance.lock_labels),
    )
    _cache[key] = run
    return run


def geometric_means(ratios: Mapping[str, float],
                    groups: Mapping[str, Sequence[str]]) -> Dict[str, float]:
    """Arithmetic-mean group summaries (the paper reports plain averages)."""
    out = {}
    for label, names in groups.items():
        vals = [ratios[n] for n in names if n in ratios]
        out[label] = sum(vals) / len(vals) if vals else float("nan")
    return out
