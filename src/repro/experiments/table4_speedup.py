"""Table IV — speedups for the real applications.

Raytrace, Ocean and QSort at 4, 8, 16 and 32 cores, with the
highly-contended locks implemented as MCS and as GLocks; speedup is
against the same application on one core.  The paper's two observations
to reproduce: every application keeps scaling with core count, and GLocks
speedups dominate MCS everywhere with the gap widening at 32 cores
(Raytrace near-ideal under GL; QSort saturating under both).

Run standalone: ``python -m repro.experiments.table4_speedup``
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.analysis.report import format_table
from repro.experiments.common import APPLICATIONS, skipped_note
from repro.runner import RunSpec, run_specs

__all__ = ["run", "render", "CORE_COUNTS"]

CORE_COUNTS = (4, 8, 16, 32)

KINDS = (("mcs", "MCS"), ("glock", "GL"))


def run(scale: float = 1.0, core_counts: Sequence[int] = CORE_COUNTS,
        benchmarks=APPLICATIONS) -> Dict:
    """(app, lock-version) -> {cores: speedup}.

    Speedups are against the app's own 1-core baseline, so a collect-mode
    failure anywhere in an app's chunk (baseline or any matrix cell)
    drops the whole app into ``"skipped"``.
    """
    # one batch: per-app 1-core baselines plus the full (kind, cores) matrix
    specs = {}
    for name in benchmarks:
        specs[(name, "base")] = RunSpec.benchmark(name, "mcs", n_cores=1,
                                                  scale=scale)
        for kind, _ in KINDS:
            for n in core_counts:
                specs[(name, kind, n)] = RunSpec.benchmark(
                    name, kind, n_cores=n, scale=scale)
    runs = dict(zip(specs, run_specs(list(specs.values()))))
    out: Dict = {}
    skipped = []
    for name in benchmarks:
        chunk = [runs[k] for k in specs if k[0] == name]
        if any(r is None for r in chunk):
            skipped.append(name)
            continue
        base = runs[(name, "base")].makespan
        for kind, label in KINDS:
            out[(name, label)] = {
                n: base / runs[(name, kind, n)].makespan for n in core_counts
            }
    out["skipped"] = skipped
    return out


def render(results: Dict) -> str:
    """Table IV layout: one row per (application, lock version)."""
    table = {k: v for k, v in results.items() if k != "skipped"}
    core_counts = (sorted(next(iter(table.values())).keys()) if table else [])
    rows = []
    for (name, label), speedups in table.items():
        rows.append([name.upper(), label] + [speedups[n] for n in core_counts])
    return format_table(
        ["Benchmark", "Lock Version"] + [str(n) for n in core_counts], rows,
        title="Table IV: speedups for the real applications",
    ) + skipped_note(results.get("skipped", ()))


if __name__ == "__main__":
    print(render(run()))
