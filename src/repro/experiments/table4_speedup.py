"""Table IV — speedups for the real applications.

Raytrace, Ocean and QSort at 4, 8, 16 and 32 cores, with the
highly-contended locks implemented as MCS and as GLocks; speedup is
against the same application on one core.  The paper's two observations
to reproduce: every application keeps scaling with core count, and GLocks
speedups dominate MCS everywhere with the gap widening at 32 cores
(Raytrace near-ideal under GL; QSort saturating under both).

Run standalone: ``python -m repro.experiments.table4_speedup``
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.analysis.report import format_table
from repro.experiments.common import APPLICATIONS
from repro.runner import RunSpec, run_specs

__all__ = ["run", "render", "CORE_COUNTS"]

CORE_COUNTS = (4, 8, 16, 32)

KINDS = (("mcs", "MCS"), ("glock", "GL"))


def run(scale: float = 1.0, core_counts: Sequence[int] = CORE_COUNTS,
        benchmarks=APPLICATIONS) -> Dict[Tuple[str, str], Dict[int, float]]:
    """(app, lock-version) -> {cores: speedup}."""
    # one batch: per-app 1-core baselines plus the full (kind, cores) matrix
    specs = {}
    for name in benchmarks:
        specs[(name, "base")] = RunSpec.benchmark(name, "mcs", n_cores=1,
                                                  scale=scale)
        for kind, _ in KINDS:
            for n in core_counts:
                specs[(name, kind, n)] = RunSpec.benchmark(
                    name, kind, n_cores=n, scale=scale)
    runs = dict(zip(specs, run_specs(specs.values())))
    out: Dict[Tuple[str, str], Dict[int, float]] = {}
    for name in benchmarks:
        base = runs[(name, "base")].makespan
        for kind, label in KINDS:
            out[(name, label)] = {
                n: base / runs[(name, kind, n)].makespan for n in core_counts
            }
    return out


def render(results: Dict[Tuple[str, str], Dict[int, float]]) -> str:
    """Table IV layout: one row per (application, lock version)."""
    core_counts = sorted(next(iter(results.values())).keys())
    rows = []
    for (name, label), speedups in results.items():
        rows.append([name.upper(), label] + [speedups[n] for n in core_counts])
    return format_table(
        ["Benchmark", "Lock Version"] + [str(n) for n in core_counts], rows,
        title="Table IV: speedups for the real applications",
    )


if __name__ == "__main__":
    print(render(run()))
