"""Figure 10 — normalized full-CMP energy-delay² product, GLocks vs MCS.

ED²P = total chip energy x makespan², normalized to the MCS configuration.
Fewer instructions per acquire/release, shorter busy-waits (fewer L1
accesses) and no lock-related coherence activity compound with the squared
delay term: the paper reports −78% (microbenchmarks) / −28% (applications)
on average, ACTR the extreme (−96%) and Ocean the smallest (−10%).

Run standalone: ``python -m repro.experiments.fig10_ed2p``
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import (
    APPLICATIONS, MICROBENCHMARKS, grouped_runs, paper_averages,
    skipped_note,
)
from repro.analysis.report import format_table
from repro.runner import RunSpec

__all__ = ["run", "render"]

BENCHES = MICROBENCHMARKS + APPLICATIONS


def run(scale: float = 1.0, n_cores: int = 32, benchmarks=BENCHES) -> Dict:
    """Per-benchmark normalized ED²P plus component energies."""
    specs = [RunSpec.benchmark(name, kind, scale=scale, n_cores=n_cores)
             for name in benchmarks for kind in ("mcs", "glock")]
    groups, skipped = grouped_runs(benchmarks, specs, 2)
    bars: Dict[str, Dict[str, float]] = {}
    components: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name, (mcs, gl) in groups.items():
        bars[name] = {"MCS": 1.0, "GL": gl.ed2p / mcs.ed2p}
        components[name] = {
            "MCS": mcs.energy.breakdown(),
            "GL": gl.energy.breakdown(),
        }
    ratios = {name: kinds["GL"] for name, kinds in bars.items()}
    return {"bars": bars, "components": components,
            "averages": paper_averages(ratios), "skipped": skipped}


def render(results: Dict) -> str:
    """Figure 10 as a table."""
    rows = [[name, kinds["GL"]] for name, kinds in results["bars"].items()]
    rows += [[label, value] for label, value in results["averages"].items()]
    return format_table(
        ["benchmark", "GL ED2P (MCS = 1.0)"], rows,
        title="Figure 10: normalized full-CMP energy-delay^2 product",
    ) + skipped_note(results.get("skipped", ()))


if __name__ == "__main__":
    print(render(run()))
