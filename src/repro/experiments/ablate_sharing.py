"""Ablation: how many hardware GLocks does a chip need?

The paper provisions exactly two (its workloads never have more than two
highly-contended locks) and sketches static/dynamic *sharing* for
multiprogrammed futures.  This ablation runs a workload with four
independent hot locks on chips provisioned with 1, 2 and 4 physical GLocks
(sharing enabled), against an MCS baseline: sharing is always correct, but
multiplexing independent locks onto one token network serializes their
critical sections, so under-provisioning eats the GLocks advantage.

Run standalone: ``python -m repro.experiments.ablate_sharing``
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from repro.analysis.report import format_table
from repro.machine import Machine
from repro.sim.config import CMPConfig

__all__ = ["run", "render", "N_LOCKS", "PROVISIONS"]

N_LOCKS = 4
PROVISIONS = (1, 2, 4)


def _build_and_run(machine: Machine, kind: str, n_cores: int,
                   iterations: int) -> int:
    locks = [machine.make_lock(kind, name=f"hot{i}") for i in range(N_LOCKS)]
    counters = machine.mem.address_space.alloc_words_padded(N_LOCKS)

    def make_program(core_id):
        # each core works on one of the four independent locks
        lock = locks[core_id % N_LOCKS]
        counter = counters[core_id % N_LOCKS]

        def program(ctx):
            for _ in range(iterations):
                yield from ctx.acquire(lock)
                yield from ctx.rmw(counter, lambda v: v + 1)
                yield from ctx.release(lock)
                yield from ctx.compute(30)

        return program

    result = machine.run([make_program(c) for c in range(n_cores)])
    expected = sum(iterations for c in range(n_cores))
    got = sum(machine.mem.backing.read(a) for a in counters)
    assert got == expected, f"lost updates: {got} != {expected}"
    return result.makespan


def run(n_cores: int = 16, iterations: int = 25) -> Dict[str, float]:
    """Configuration label -> makespan."""
    out: Dict[str, float] = {}
    base_cfg = CMPConfig.baseline(n_cores)
    machine = Machine(base_cfg)
    out["mcs"] = _build_and_run(machine, "mcs", n_cores, iterations)
    for provision in PROVISIONS:
        cfg = replace(base_cfg, gline=replace(base_cfg.gline,
                                              n_glocks=provision))
        machine = Machine(cfg, allow_glock_sharing=True)
        label = f"glock_x{provision}"
        out[label] = _build_and_run(machine, "glock", n_cores, iterations)
    return out


def render(results: Dict[str, float]) -> str:
    base = results["mcs"]
    rows = [[label, int(makespan), makespan / base]
            for label, makespan in results.items()]
    return format_table(
        ["configuration", "makespan", "vs MCS"],
        rows,
        title=f"Ablation: {N_LOCKS} hot locks on 1/2/4 shared GLock networks",
    )


if __name__ == "__main__":
    print(render(run()))
