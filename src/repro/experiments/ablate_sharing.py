"""Ablation: how many hardware GLocks does a chip need?

The paper provisions exactly two (its workloads never have more than two
highly-contended locks) and sketches static/dynamic *sharing* for
multiprogrammed futures.  This ablation runs a workload with four
independent hot locks on chips provisioned with 1, 2 and 4 physical GLocks
(sharing enabled), against an MCS baseline: sharing is always correct, but
multiplexing independent locks onto one token network serializes their
critical sections, so under-provisioning eats the GLocks advantage.

Run standalone: ``python -m repro.experiments.ablate_sharing``
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from repro.analysis.report import format_table
from repro.experiments.common import skipped_note
from repro.runner import MachineSpec, RunSpec, run_specs
from repro.sim.config import CMPConfig

__all__ = ["run", "render", "N_LOCKS", "PROVISIONS"]

N_LOCKS = 4
PROVISIONS = (1, 2, 4)


def run(n_cores: int = 16, iterations: int = 25) -> Dict[str, float]:
    """Configuration label -> makespan.

    The ``hotlocks`` workload (``repro.workloads.synth``) carries the
    four independent hot locks and validates its counters; under-
    provisioned chips get ``allow_glock_sharing`` so the GLock pool
    multiplexes them onto the available token networks.
    """
    base_cfg = CMPConfig.baseline(n_cores)
    params = {"n_locks": N_LOCKS, "iterations_per_thread": iterations,
              "think_cycles": 30}
    specs = {"mcs": RunSpec(workload="hotlocks", hc_kind="mcs",
                            machine=MachineSpec(config=base_cfg),
                            workload_params=params)}
    for provision in PROVISIONS:
        cfg = replace(base_cfg, gline=replace(base_cfg.gline,
                                              n_glocks=provision))
        specs[f"glock_x{provision}"] = RunSpec(
            workload="hotlocks", hc_kind="glock",
            machine=MachineSpec(config=cfg, allow_glock_sharing=True),
            workload_params=params)
    runs = dict(zip(specs, run_specs(list(specs.values()))))
    out: Dict = {label: float(bench.makespan)
                 for label, bench in runs.items() if bench is not None}
    out["skipped"] = [label for label, bench in runs.items() if bench is None]
    return out


def render(results: Dict) -> str:
    makespans = {k: v for k, v in results.items() if k != "skipped"}
    # without the MCS baseline (collect-mode failure) print raw makespans
    base = makespans.get("mcs")
    rows = [[label, int(makespan),
             makespan / base if base else float("nan")]
            for label, makespan in makespans.items()]
    return format_table(
        ["configuration", "makespan", "vs MCS"],
        rows,
        title=f"Ablation: {N_LOCKS} hot locks on 1/2/4 shared GLock networks",
    ) + skipped_note(results.get("skipped", ()))


if __name__ == "__main__":
    print(render(run()))
