"""Ablation: G-line latency and network depth — the paper's scaling paths.

Section III-F proposes two ways to take GLocks past the 7x7-core drop
limit: *longer-latency G-lines* and *hierarchical G-line networks*.  This
ablation prices both:

- sweeping ``gline_latency`` in {1, 2, 4} scales every protocol step
  proportionally (Table I becomes 4L/2L/L cycles);
- a 3-level tree adds one manager layer: +2 worst-case acquire cycles, but
  supports arbitrarily wide meshes.

Throughput under saturation degrades gracefully in both cases — the point
of the paper's scalability argument.

Run standalone: ``python -m repro.experiments.ablate_gline``
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Sequence, Tuple

from repro.analysis.report import format_table
from repro.experiments.common import grouped_runs, skipped_note
from repro.runner import MachineSpec, RunSpec
from repro.sim.config import CMPConfig

__all__ = ["run", "render", "LATENCIES"]

LATENCIES = (1, 2, 4)

ITERATIONS = 12


def _spec(n_cores: int, latency: int, levels: int) -> RunSpec:
    """Saturated synthetic run on a chip with the given G-line geometry."""
    cfg = CMPConfig.baseline(n_cores)
    cfg = replace(cfg, gline=replace(cfg.gline, gline_latency=latency))
    return RunSpec(workload="synth", hc_kind="glock",
                   machine=MachineSpec(config=cfg, glock_levels=levels),
                   workload_params={"iterations_per_thread": ITERATIONS})


def run(n_cores: int = 16,
        latencies: Sequence[int] = LATENCIES) -> Dict:
    """(gline latency, tree levels) -> cycles per saturated critical section.

    Points dropped by a collect-mode campaign land in ``"skipped"``.
    """
    points = [(latency, 2) for latency in latencies] + [(1, 3)]
    specs = [_spec(n_cores, latency, levels) for latency, levels in points]
    groups, skipped = grouped_runs(points, specs, 1)
    out: Dict = {
        point: bench.makespan / (n_cores * ITERATIONS)
        for point, (bench,) in groups.items()
    }
    out["skipped"] = skipped
    return out


def render(results: Dict) -> str:
    rows = [
        [lat, lvl, per_handoff]
        for (lat, lvl), per_handoff in sorted(
            (k, v) for k, v in results.items() if k != "skipped")
    ]
    return format_table(
        ["G-line latency", "tree levels", "cycles per saturated CS"],
        rows,
        title="Ablation: GLocks scaling paths (longer G-lines, deeper trees)",
    ) + skipped_note(results.get("skipped", ()))


if __name__ == "__main__":
    print(render(run()))
