"""Ablation: G-line latency and network depth — the paper's scaling paths.

Section III-F proposes two ways to take GLocks past the 7x7-core drop
limit: *longer-latency G-lines* and *hierarchical G-line networks*.  This
ablation prices both:

- sweeping ``gline_latency`` in {1, 2, 4} scales every protocol step
  proportionally (Table I becomes 4L/2L/L cycles);
- a 3-level tree adds one manager layer: +2 worst-case acquire cycles, but
  supports arbitrarily wide meshes.

Throughput under saturation degrades gracefully in both cases — the point
of the paper's scalability argument.

Run standalone: ``python -m repro.experiments.ablate_gline``
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Sequence, Tuple

from repro.analysis.report import format_table
from repro.machine import Machine
from repro.sim.config import CMPConfig
from repro.workloads.synth import SyntheticLockWorkload

__all__ = ["run", "render", "LATENCIES"]

LATENCIES = (1, 2, 4)


def _saturated_handoff(n_cores: int, latency: int, levels: int,
                       iterations: int = 12) -> float:
    """Cycles per critical section (handoff + CS) under saturation."""
    cfg = CMPConfig.baseline(n_cores)
    cfg = replace(cfg, gline=replace(cfg.gline, gline_latency=latency))
    machine = Machine(cfg, glock_levels=levels)
    wl = SyntheticLockWorkload(iterations_per_thread=iterations)
    inst = wl.instantiate(machine, hc_kind="glock")
    result = machine.run(inst.programs)
    inst.validate(machine)
    return result.makespan / (n_cores * iterations)


def run(n_cores: int = 16,
        latencies: Sequence[int] = LATENCIES) -> Dict[Tuple[int, int], float]:
    """(gline latency, tree levels) -> cycles per saturated critical section."""
    out: Dict[Tuple[int, int], float] = {}
    for latency in latencies:
        out[(latency, 2)] = _saturated_handoff(n_cores, latency, levels=2)
    out[(1, 3)] = _saturated_handoff(n_cores, 1, levels=3)
    return out


def render(results: Dict[Tuple[int, int], float]) -> str:
    rows = [
        [lat, lvl, per_handoff]
        for (lat, lvl), per_handoff in sorted(results.items())
    ]
    return format_table(
        ["G-line latency", "tree levels", "cycles per saturated CS"],
        rows,
        title="Ablation: GLocks scaling paths (longer G-lines, deeper trees)",
    )


if __name__ == "__main__":
    print(render(run()))
