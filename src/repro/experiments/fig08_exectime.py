"""Figure 8 — normalized execution time, GLocks vs MCS.

For every benchmark the highly-contended locks are implemented with MCS
(the baseline bar, height 1.0) and with GLocks; every other lock uses
TATAS, the paper's hybrid methodology.  Bars are split into the
Busy / Memory / Lock / Barrier categories and averaged separately over the
microbenchmarks (AvgM — paper: −42%) and the applications (AvgA — paper:
−14%).

Run standalone: ``python -m repro.experiments.fig08_exectime``
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.breakdown import normalized_breakdown
from repro.analysis.report import format_table
from repro.cpu.core import CATEGORIES
from repro.experiments.common import (
    APPLICATIONS, MICROBENCHMARKS, grouped_runs, paper_averages,
    skipped_note,
)
from repro.runner import RunSpec

__all__ = ["run", "render"]

BENCHES = MICROBENCHMARKS + APPLICATIONS


def run(scale: float = 1.0, n_cores: int = 32, benchmarks=BENCHES) -> Dict:
    """Per-benchmark normalized bars for MCS and GL, plus averages.

    Collect-mode campaigns drop benchmarks whose MCS or GL run failed;
    they are reported under ``"skipped"`` and the averages cover the
    survivors (``paper_averages`` already handles partial sweeps).
    """
    specs = [RunSpec.benchmark(name, kind, scale=scale, n_cores=n_cores)
             for name in benchmarks for kind in ("mcs", "glock")]
    groups, skipped = grouped_runs(benchmarks, specs, 2)
    bars: Dict[str, Dict[str, Dict[str, float]]] = {}
    ratios: Dict[str, float] = {}
    for name, (mcs, gl) in groups.items():
        bars[name] = {
            "MCS": normalized_breakdown(mcs.result, mcs.result),
            "GL": normalized_breakdown(gl.result, mcs.result),
        }
        ratios[name] = gl.makespan / mcs.makespan
    return {"bars": bars, "ratios": ratios,
            "averages": paper_averages(ratios), "skipped": skipped}


def render(results: Dict) -> str:
    """Figure 8 as a table of stacked-bar heights."""
    rows = []
    for name, by_kind in results["bars"].items():
        for kind in ("MCS", "GL"):
            b = by_kind[kind]
            rows.append([name, kind, sum(b.values())] + [b[c] for c in CATEGORIES])
    for label, value in results["averages"].items():
        rows.append([label, "GL/MCS", value] + [""] * len(CATEGORIES))
    return format_table(
        ["benchmark", "locks", "total"] + list(CATEGORIES), rows,
        title="Figure 8: normalized execution time (MCS = 1.0)",
    ) + skipped_note(results.get("skipped", ()))


if __name__ == "__main__":
    print(render(run()))
