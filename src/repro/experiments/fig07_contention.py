"""Figure 7 — locks' contention rate (and the measured side of Table III).

The paper's post-mortem methodology: run every benchmark with
test-and-test&set on *all* locks, record the number of concurrent
requesters (grAC) cycle by cycle, and report the per-lock contention rate
(Equations 1-3).  Raytrace's 32 quiet locks are aggregated as RAYTR-LR,
exactly as the paper plots them.

Run standalone: ``python -m repro.experiments.fig07_contention``
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.analysis.contention import LockContention, analyze_contention
from repro.analysis.report import format_table
from repro.experiments.common import grouped_runs, skipped_note
from repro.runner import RunSpec
from repro.workloads.registry import WORKLOADS

__all__ = ["run", "render"]


def run(scale: float = 1.0, n_cores: int = 32,
        benchmarks=WORKLOADS) -> Dict:
    """Per-benchmark, per-lock-label contention profiles.

    Benchmarks dropped by a collect-mode campaign land in ``"skipped"``.
    """
    specs = [RunSpec.benchmark(name, "tatas", other_kind="tatas",
                               scale=scale, n_cores=n_cores)
             for name in benchmarks]
    groups, skipped = grouped_runs(benchmarks, specs, 1)
    out: Dict = {
        name: analyze_contention(bench.result, bench.lock_labels)
        for name, (bench,) in groups.items()
    }
    out["skipped"] = skipped
    return out


def render(results: Dict[str, Dict[str, LockContention]],
           high_grac: int = 21) -> str:
    """Figure 7 summarized: aggregate contention at high grAC per lock.

    ``high_grac`` mirrors the paper's "grACs higher than 20 cores" quotes.
    """
    rows = []
    for name, profiles in results.items():
        if name == "skipped":
            continue
        for label in sorted(profiles):
            p = profiles[label]
            lcr = p.lcr()
            peak = int(np.argmax(lcr)) if p.total_cycles else 0
            rows.append([
                name, label, p.n_acquires,
                p.aggregate_rate(high_grac),
                peak,
            ])
    return format_table(
        ["benchmark", "lock", "acquires", f"LCR[grAC>={high_grac}]", "peak grAC"],
        rows,
        title="Figure 7: locks' contention rate (TATAS post-mortem)",
    ) + skipped_note(results.get("skipped", ()))


if __name__ == "__main__":
    print(render(run()))
