"""Experiment harnesses — one module per table/figure of the paper.

Each module exposes ``run(scale=..., n_cores=...)`` returning structured
results plus a ``render`` helper that prints the same rows/series the paper
reports.  The benchmark suite under ``benchmarks/`` drives these with
pytest-benchmark; ``python -m repro.experiments.<module>`` runs one
standalone.

=====================  ==============================================
``fig01_ideal``        Figure 1 — potential benefit of ideal locks
``fig07_contention``   Figure 7 — locks' contention rate (grAC/LCR)
``fig08_exectime``     Figure 8 — normalized execution time, GL vs MCS
``fig09_traffic``      Figure 9 — normalized network traffic
``fig10_ed2p``         Figure 10 — normalized full-CMP ED²P
``table1_cost``        Table I — GLocks hardware/latency cost
``table4_speedup``     Table IV — application speedups, 4..32 cores
=====================  ==============================================
"""

from repro.experiments import common

__all__ = ["common"]
