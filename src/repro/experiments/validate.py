"""Paper-vs-measured validation report.

Consumes a digest in the shape ``scripts/record_experiments.py`` produces
(or generates a fresh one) and lines every measured ratio/speedup up
against the paper's published numbers (:mod:`repro.analysis.paper`),
flagging any entry where the two disagree about *who wins* — the
reproduction's hard acceptance criterion.

Run standalone: ``python -m repro.experiments.validate`` (full scale; use
the recorded ``results_full.json`` when present to avoid re-simulation).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from repro.analysis.paper import (
    PAPER_FIG8_TIME_RATIO,
    PAPER_FIG9_TRAFFIC_RATIO,
    PAPER_FIG10_ED2P_RATIO,
    PAPER_TABLE4_SPEEDUPS,
    Deviation,
    compare_to_paper,
)
from repro.analysis.report import format_table

__all__ = ["run", "render", "validate_digest"]


def validate_digest(digest: Dict) -> List[Deviation]:
    """All paper-vs-measured pairs found in a results digest."""
    rows: List[Deviation] = []
    if "fig8" in digest:
        rows += compare_to_paper(digest["fig8"]["ratios"],
                                 PAPER_FIG8_TIME_RATIO, prefix="fig8/")
    if "fig9" in digest:
        rows += compare_to_paper(digest["fig9"]["ratios"],
                                 PAPER_FIG9_TRAFFIC_RATIO, prefix="fig9/")
    if "fig10" in digest:
        rows += compare_to_paper(digest["fig10"]["ratios"],
                                 PAPER_FIG10_ED2P_RATIO, prefix="fig10/")
    if "table4" in digest:
        for (app, version), paper_speedups in PAPER_TABLE4_SPEEDUPS.items():
            key = f"{app}/{version}"
            measured = digest["table4"].get(key)
            if measured:
                for cores, paper_value in paper_speedups.items():
                    got = measured.get(str(cores), measured.get(cores))
                    if got is not None:
                        rows.append(Deviation(f"table4/{key}@{cores}",
                                              paper_value, got))
    return rows


def run(digest_path: str = "results_full.json") -> Dict:
    """Validate a recorded digest (must exist; record_experiments creates it)."""
    if not os.path.exists(digest_path):
        raise FileNotFoundError(
            f"{digest_path} not found — run scripts/record_experiments.py "
            "--json results_full.json first"
        )
    with open(digest_path) as fh:
        digest = json.load(fh)
    deviations = validate_digest(digest)
    disagreements = [d for d in deviations
                     if d.key.startswith("fig") and not d.same_direction]
    return {"deviations": deviations, "disagreements": disagreements}


def render(results: Dict) -> str:
    rows = []
    for d in results["deviations"]:
        flag = "" if (not d.key.startswith("fig") or d.same_direction) else "  <-- DIRECTION MISMATCH"
        rows.append([d.key, d.paper, d.measured,
                     f"{d.absolute:+.3f}{flag}"])
    table = format_table(
        ["metric", "paper", "measured", "deviation"], rows,
        title="Validation: paper vs measured",
    )
    n_bad = len(results["disagreements"])
    verdict = ("all normalized ratios agree with the paper on who wins"
               if n_bad == 0 else f"{n_bad} DIRECTION MISMATCHES")
    return f"{table}\n\n=> {verdict}"


if __name__ == "__main__":
    print(render(run()))
