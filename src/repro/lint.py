"""``python -m repro.lint`` — entry point for the simulator-aware lint.

The implementation lives in :mod:`repro.verify.lint`; this module keeps the
documented invocation short.
"""

from __future__ import annotations

import sys

from repro.verify.lint import main

if __name__ == "__main__":
    sys.exit(main())
