"""Core model and thread-program context.

A :class:`Core` is one in-order processor: it owns a private L1, an
instruction counter (input to the energy model) and a per-category cycle
account.  A :class:`ThreadContext` is the API a workload's thread program
sees; it wraps every operation with time-category attribution:

- ``compute(n)``        -> Busy
- ``load/store/rmw``    -> Memory (or the enclosing sync category)
- ``acquire/release``   -> Lock (including all memory traffic they cause)
- ``barrier_wait``      -> Barrier

matching the paper's Figure 8 breakdown, where lock time covers the whole
acquire/release operations and critical-section bodies remain Busy/Memory.

Lock-acquire wait intervals are recorded into the machine-wide
:class:`~repro.sim.stats.IntervalRecorder` — the raw material of the
grAC/LCR contention analysis (Figure 7).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.mem.l1 import MISS, L1Cache
from repro.sim.kernel import SimulationError, Simulator
from repro.sim.stats import CounterSet, IntervalRecorder

__all__ = ["Core", "ThreadContext", "CATEGORIES", "BUSY", "MEMORY", "LOCK", "BARRIER"]

BUSY = "busy"
MEMORY = "memory"
LOCK = "lock"
BARRIER = "barrier"
CATEGORIES = (BUSY, MEMORY, LOCK, BARRIER)


class Core:
    """One in-order processor core."""

    def __init__(self, sim: Simulator, core_id: int, l1: L1Cache,
                 counters: CounterSet) -> None:
        self.sim = sim
        self.core_id = core_id
        self.l1 = l1
        self.counters = counters  # machine-global counter set
        self.instructions = 0
        self.cycles: Dict[str, int] = {c: 0 for c in CATEGORIES}
        self.finish_time: Optional[int] = None

    def category_fractions(self) -> Dict[str, float]:
        """Per-category share of this core's accounted cycles."""
        total = sum(self.cycles.values())
        if total == 0:
            return {c: 0.0 for c in CATEGORIES}
        return {c: v / total for c, v in self.cycles.items()}


class ThreadContext:
    """Execution context handed to a thread program generator."""

    def __init__(self, core: Core,
                 lock_intervals: Optional[IntervalRecorder] = None,
                 races=None) -> None:
        self.core = core
        self.sim = core.sim
        self.lock_intervals = lock_intervals
        #: optional repro.verify.races.RaceDetector observing this thread's
        #: accesses and synchronization; passed in by Machine.context()
        self.races = races
        self._cat_stack: List[str] = []
        # hot-path shortcuts into the L1: load/store/rmw run the plain
        # try_hit fast path and yield the hit latency themselves, so a
        # cache hit costs no extra generator frame at all; only misses
        # enter the L1's transaction coroutine
        l1 = core.l1
        self._l1_try_hit = l1.try_hit
        self._l1_miss = l1._miss
        self._l1_hit_latency = l1.hit_latency
        self._l1_mask = l1._line_mask
        self._l1_c_rmw = l1._c_rmw

    @property
    def core_id(self) -> int:
        """The id of the core this thread runs on."""
        return self.core.core_id

    # ------------------------------------------------------------------ #
    # attribution helpers
    # ------------------------------------------------------------------ #
    def _attribute(self, category: str, cycles: int) -> None:
        # inside a sync wrapper (Lock/Barrier) the wrapper accounts the whole
        # elapsed span once -- inner ops must not double-count
        if self._cat_stack:
            return
        self.core.cycles[category] += cycles

    # ------------------------------------------------------------------ #
    # computation and memory
    # ------------------------------------------------------------------ #
    def compute(self, cycles: int):
        """Coroutine: execute ``cycles`` of local computation."""
        if cycles < 0:
            raise ValueError("negative compute time")
        self.core.instructions += cycles
        self._attribute(BUSY, cycles)
        yield cycles

    def idle(self, cycles: int):
        """Coroutine: wait ``cycles`` without issuing instructions.

        Models pause-loop back-off: the core stays powered (leakage accrues)
        but executes no energy-charged instructions.  Attributed to Busy.
        """
        if cycles < 0:
            raise ValueError("negative idle time")
        self._attribute(BUSY, cycles)
        yield cycles

    def load(self, addr: int):
        """Coroutine: read a word through the L1; returns its value."""
        t0 = self.sim.now
        line = addr & self._l1_mask
        value = self._l1_try_hit(line, False, addr, None, None)
        if value is MISS:
            value = yield from self._l1_miss(line, False, addr, None, None)
        else:
            yield self._l1_hit_latency
        self.core.instructions += 1
        self._attribute(MEMORY, self.sim.now - t0)
        # workload-level accesses only: loads issued inside a lock/barrier
        # implementation spin on intentionally-contended sync words
        if self.races is not None and not self._cat_stack:
            self.races.on_access(self, addr, False)
        return value

    def store(self, addr: int, value: int):
        """Coroutine: write a word through the L1."""
        t0 = self.sim.now
        line = addr & self._l1_mask
        if self._l1_try_hit(line, True, addr, value, None) is MISS:
            yield from self._l1_miss(line, True, addr, value, None)
        else:
            yield self._l1_hit_latency
        self.core.instructions += 1
        self._attribute(MEMORY, self.sim.now - t0)
        if self.races is not None and not self._cat_stack:
            self.races.on_access(self, addr, True)

    def rmw(self, addr: int, fn):
        """Coroutine: atomic read-modify-write; returns the old value."""
        t0 = self.sim.now
        line = addr & self._l1_mask
        old = self._l1_try_hit(line, True, addr, None, fn)
        if old is MISS:
            old = yield from self._l1_miss(line, True, addr, None, fn)
        else:
            yield self._l1_hit_latency
        self._l1_c_rmw.value += 1
        self.core.instructions += 1
        self._attribute(MEMORY, self.sim.now - t0)
        if self.races is not None and not self._cat_stack:
            self.races.on_access(self, addr, True, atomic=True)
        return old

    def spin_until(self, addr: int, predicate):
        """Coroutine: test-and-test&set style spin on a word."""
        t0 = self.sim.now
        value = yield from self.core.l1.spin_until(addr, predicate)
        self.core.instructions += 1
        self._attribute(MEMORY, self.sim.now - t0)
        if self.races is not None and not self._cat_stack:
            self.races.on_access(self, addr, False)
        return value

    # ------------------------------------------------------------------ #
    # synchronization
    # ------------------------------------------------------------------ #
    def acquire(self, lock, timeout=None):
        """Coroutine: acquire ``lock``; elapsed time -> Lock category.

        With ``timeout=None`` (the default) this blocks until the lock is
        owned and returns True.  With a non-negative ``timeout`` in cycles
        it gives up once the deadline passes and returns False instead —
        the load-shedding path of the serving workloads.  Timed acquires
        require a lock whose class sets ``supports_timed_acquire`` (the
        spin family and every ``cr:`` wrapper); queue locks like MCS,
        whose abandoned queue nodes would corrupt the chain, refuse.
        """
        t0 = self.sim.now
        if timeout is not None:
            if timeout < 0:
                raise ValueError("negative acquire timeout")
            if not lock.supports_timed_acquire:
                raise SimulationError(
                    f"lock {lock.name!r} ({type(lock).__name__}) does not "
                    f"support timed acquire")
        if self.sim.tracer is not None:
            self.sim.tracer.record(t0, "lock", f"core{self.core_id}",
                                   f"acquire {lock.name} (start)")
        if self.lock_intervals is not None:
            self.lock_intervals.open(lock.uid, self.core_id, t0)
        self._cat_stack.append(LOCK)
        granted = True
        try:
            if timeout is None:
                yield from lock.acquire(self)
            else:
                granted = bool((yield from lock.acquire_timed(self,
                                                              t0 + timeout)))
        finally:
            self._cat_stack.pop()
        # failed waits still close their interval: the time was spent
        # waiting on this lock and belongs in the contention analysis
        if self.lock_intervals is not None:
            self.lock_intervals.close(lock.uid, self.core_id, self.sim.now)
        if self.sim.tracer is not None:
            outcome = "granted" if granted else "timeout"
            self.sim.tracer.record(self.sim.now, "lock",
                                   f"core{self.core_id}",
                                   f"acquire {lock.name} ({outcome}, "
                                   f"{self.sim.now - t0} cycles)")
        self.core.cycles[LOCK] += self.sim.now - t0
        if self.races is not None:
            if granted:
                self.races.on_acquire(self.core_id, lock)
            else:
                self.races.on_acquire_timeout(self.core_id, lock)
        return granted

    def release(self, lock):
        """Coroutine: release ``lock``; elapsed time -> Lock category."""
        t0 = self.sim.now
        if self.sim.tracer is not None:
            self.sim.tracer.record(t0, "lock", f"core{self.core_id}",
                                   f"release {lock.name}")
        # snapshot the happens-before edge at release *entry*: everything
        # this thread did up to here is visible to the next acquirer
        if self.races is not None:
            self.races.on_release(self.core_id, lock)
        self._cat_stack.append(LOCK)
        try:
            yield from lock.release(self)
        finally:
            self._cat_stack.pop()
        self.core.cycles[LOCK] += self.sim.now - t0

    def critical(self, lock, body):
        """Coroutine: acquire, run ``body`` (a generator), release."""
        yield from self.acquire(lock)
        try:
            yield from body
        finally:
            yield from self.release(lock)

    def barrier_wait(self, barrier):
        """Coroutine: wait at ``barrier``; elapsed time -> Barrier category."""
        t0 = self.sim.now
        if self.sim.tracer is not None:
            self.sim.tracer.record(t0, "sync", f"core{self.core_id}",
                                   f"barrier {barrier.name} (arrive)")
        if self.races is not None:
            self.races.on_barrier_arrive(self.core_id, barrier)
        self._cat_stack.append(BARRIER)
        try:
            yield from barrier.wait(self)
        finally:
            self._cat_stack.pop()
        if self.races is not None:
            self.races.on_barrier_depart(self.core_id, barrier)
        if self.sim.tracer is not None:
            self.sim.tracer.record(self.sim.now, "sync",
                                   f"core{self.core_id}",
                                   f"barrier {barrier.name} (depart, "
                                   f"{self.sim.now - t0} cycles)")
        self.core.cycles[BARRIER] += self.sim.now - t0
