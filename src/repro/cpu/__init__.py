"""In-order core model and the thread-program execution context.

Thread programs are Python generators that drive a :class:`ThreadContext`
with ``yield from`` — computing, touching memory through the core's L1, and
synchronizing through lock/barrier objects.  The context attributes every
elapsed cycle to one of the paper's four execution-time categories
(Busy / Memory / Lock / Barrier, Figure 8).
"""

from repro.cpu.core import Core, ThreadContext, CATEGORIES, BUSY, MEMORY, LOCK, BARRIER

__all__ = ["Core", "ThreadContext", "CATEGORIES", "BUSY", "MEMORY", "LOCK", "BARRIER"]
