"""repro — reproduction of *GLocks: Efficient Support for Highly-Contended
Locks in Many-Core CMPs* (Abellán, Fernández, Acacio; IPDPS 2011).

A cycle-level many-core CMP simulator in pure Python: MESI directory
coherence over a 2D-mesh NoC, in-order cores driving generator-based thread
programs, a complete software lock library (test&set, TATAS, back-off,
ticket, Anderson, MCS, ideal) — and the paper's contribution, GLocks: a
dedicated G-line token network providing 2-4-cycle, traffic-free,
round-robin-fair locks.

Quick start::

    from repro import Machine, CMPConfig

    m = Machine(CMPConfig.baseline(32))
    lock = m.make_lock("glock")
    counter = m.mem.address_space.alloc_line()

    def program(ctx):
        for _ in range(100):
            yield from ctx.acquire(lock)
            yield from ctx.rmw(counter, lambda v: v + 1)
            yield from ctx.release(lock)

    result = m.run([program] * 32)

See ``examples/`` for full scenarios and ``benchmarks/`` for the harnesses
that regenerate every table and figure of the paper.
"""

from repro.machine import Machine, RunResult
from repro.sim.config import CacheConfig, CMPConfig, GLineConfig, NoCConfig

__version__ = "0.1.0"

__all__ = [
    "Machine",
    "RunResult",
    "CMPConfig",
    "CacheConfig",
    "GLineConfig",
    "NoCConfig",
    "__version__",
]
