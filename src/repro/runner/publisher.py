"""Streaming sample publisher: results -> append-only JSONL/CSV files.

Subscribes to an :class:`~repro.runner.engine.Engine`'s observer hook
and appends one record per spec **in campaign submission order** as
results land.  Parallel and remote backends finish specs out of order;
the publisher buffers early arrivals and flushes the contiguous prefix,
so the published file is byte-identical whichever backend executed the
campaign — and identical again when a later submission is served
entirely from the warm cache (cache hits notify observers too).  That
byte-identity is what the service smoke test in CI pins.

Records carry only deterministic content (spec fields, metrics and the
result fingerprint — no timestamps, hostnames or backend identity)::

    {"digest": "31a4ba4a...", "workload": "sctr", "locks": "mcs", ...}

Usage::

    publisher = SamplePublisher(path, fmt="jsonl")
    publisher.expect(campaign.digests())
    engine.observers.append(publisher)
    ... run the campaign ...
    publisher.close()     # flushes; .missing lists unpublished digests
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, IO, List, Optional, Sequence

from repro.runner.fingerprint import result_fingerprint

__all__ = ["PUBLISH_FORMATS", "SamplePublisher", "record_for"]

PUBLISH_FORMATS = ("jsonl", "csv")

#: CSV column order (JSONL keys are sorted by json.dumps)
_FIELDS = ("digest", "workload", "locks", "other_lock", "cores", "scale",
           "seed", "makespan", "traffic", "ed2p", "fingerprint")


def record_for(digest: str, run) -> Dict[str, object]:
    """The deterministic published record for one landed run."""
    spec = getattr(run, "spec", None)
    return {
        "digest": digest,
        "workload": run.name,
        "locks": "/".join(run.hc_kinds),
        "other_lock": spec.other_kind if spec is not None else None,
        "cores": run.n_cores,
        "scale": spec.scale if spec is not None else None,
        "seed": spec.seed if spec is not None else None,
        "makespan": run.result.makespan,
        "traffic": run.result.total_traffic,
        "ed2p": run.ed2p,
        "fingerprint": result_fingerprint(run.result),
    }


class SamplePublisher:
    """Append campaign results to a JSONL or CSV file in a stable order.

    Args:
        path: output file (created/truncated on the first record).
        fmt: ``"jsonl"`` (one JSON object per line, sorted keys) or
            ``"csv"`` (header + one row per record).

    The publisher is an engine observer: call instances with
    ``(digest, run)``.  Digests outside :meth:`expect`'s list and
    repeat notifications of an already-published digest are ignored, so
    memo hits of duplicate specs cannot double-publish.
    """

    def __init__(self, path, fmt: str = "jsonl", sync: bool = False) -> None:
        if fmt not in PUBLISH_FORMATS:
            raise ValueError(f"unknown publisher format {fmt!r}; choose "
                             f"from {', '.join(PUBLISH_FORMATS)}")
        self.path = Path(path)
        self.fmt = fmt
        #: fsync after every record — the campaign service publishes with
        #: sync=True so a SIGKILLed daemon keeps its published prefix
        self.sync = sync
        self._order: List[str] = []
        self._expected = set()
        self._ready: Dict[str, Dict[str, object]] = {}
        self._next = 0          # index into _order awaiting publication
        self._done = set()      # digests already written
        self.published = 0
        self._fh: Optional[IO[str]] = None

    # ------------------------------------------------------------------ #
    def expect(self, digests: Sequence[str]) -> None:
        """Declare the publication order (campaign expansion order)."""
        for digest in digests:
            if digest not in self._expected:
                self._expected.add(digest)
                self._order.append(digest)

    def __call__(self, digest: str, run) -> None:
        """Engine observer hook: a result landed (fresh or cached)."""
        if (digest not in self._expected or digest in self._ready
                or digest in self._done):
            return
        self._ready[digest] = record_for(digest, run)
        self._flush_ready()

    def flush(self) -> None:
        """Push written records to the OS (and disk when ``sync``)."""
        if self._fh is not None:
            self._fh.flush()
            if self.sync:
                os.fsync(self._fh.fileno())

    @property
    def missing(self) -> List[str]:
        """Expected digests that have not been published (yet)."""
        return [d for d in self._order
                if d not in self._done and d not in self._ready]

    def close(self) -> None:
        """Flush buffered records and close the file.

        Failed specs never land, so out-of-order successes *after* a
        failure would otherwise stay buffered forever: close writes any
        still-buffered records (in expected order, gaps skipped) before
        closing, keeping the output deterministic for a given set of
        landed results.
        """
        self._flush_ready()
        for digest in self._order[self._next:]:
            record = self._ready.pop(digest, None)
            if record is not None:
                self._write(record)
                self._done.add(digest)
        self._next = len(self._order)
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # ------------------------------------------------------------------ #
    def _flush_ready(self) -> None:
        while self._next < len(self._order):
            digest = self._order[self._next]
            record = self._ready.pop(digest, None)
            if record is None:
                return
            self._write(record)
            self._done.add(digest)
            self._next += 1

    def _write(self, record: Dict[str, object]) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "w", encoding="utf-8", newline="")
            if self.fmt == "csv":
                self._fh.write(",".join(_FIELDS) + "\n")
        if self.fmt == "jsonl":
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        else:
            self._fh.write(",".join("" if record[f] is None else str(record[f])
                                    for f in _FIELDS) + "\n")
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())
        self.published += 1
