"""Pluggable execution backends for the experiment engine.

The :class:`~repro.runner.engine.Engine` owns *what* to run (memo and
disk-cache misses) and the bookkeeping of results; a backend owns *how*
the remaining specs execute:

- :class:`InlineBackend` — in this process, one spec at a time (the
  classic ``jobs=1`` path);
- :class:`ProcessPoolBackend` — fanned over a
  :class:`~concurrent.futures.ProcessPoolExecutor` with per-run
  deadlines, retry resubmission and broken-pool recovery (the classic
  ``jobs>1`` path, moved here verbatim from ``Engine._execute_parallel``);
- :class:`~repro.runner.remote.RemoteBackend` — socket-protocol workers
  started with ``repro-sim worker``, sharing the digest-keyed result
  cache (lives in :mod:`repro.runner.remote`).

Every backend lands results through the same hooks, so caching, the
campaign supervisor's outcome taxonomy, retries and manifests behave
identically whichever backend executes:

``execute(todo, engine, *, land=None, fail=None, tick=None)``

- ``land(digest, run)`` — a result arrived; the default commits it to
  the engine's memo/disk cache.  Backends call it the moment a result
  lands (never batched at the end), so an abort later in the batch can
  never discard finished, cacheable work.
- ``fail(digest, exc)`` — a spec exhausted its retry budget; the
  default raises :class:`~repro.runner.engine.RunFailure` (the engine's
  classic fail-fast contract).  A collect-mode caller records an
  outcome instead and the batch keeps going.
- ``tick()`` — polled between scheduling steps so a supervising caller
  can checkpoint and raise on SIGINT/SIGTERM.

This module also hosts the process-pool plumbing (:func:`new_pool`,
:func:`kill_workers`, :func:`drain_finished`) shared by the pool backend
and the campaign supervisor's herd/suspect phases.
"""

from __future__ import annotations

import logging
import signal as _signal
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional

log = logging.getLogger("repro.runner")

__all__ = [
    "BACKEND_NAMES", "ExecutionBackend", "InlineBackend",
    "ProcessPoolBackend", "make_backend", "new_pool", "kill_workers",
    "drain_finished", "pool_worker_init",
]

#: the names ``make_backend`` (and the CLI ``--backend`` flag) accept
BACKEND_NAMES = ("auto", "inline", "process-pool", "remote")

LandFn = Callable[[str, object], None]
FailFn = Callable[[str, BaseException], None]
TickFn = Callable[[], None]


# ---------------------------------------------------------------------- #
# shared process-pool plumbing (also used by the campaign supervisor)
# ---------------------------------------------------------------------- #
def pool_worker_init() -> None:
    """Restore default SIGINT/SIGTERM dispositions in pool workers.

    Workers fork from a process that may have the campaign supervisor's
    checkpoint handlers installed; inheriting those would make a worker
    swallow ``terminate()`` and survive :func:`kill_workers`.
    """
    for signum in (_signal.SIGINT, _signal.SIGTERM):
        try:
            _signal.signal(signum, _signal.SIG_DFL)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass


def new_pool(max_workers: int) -> ProcessPoolExecutor:
    """A pool whose workers restore default signal dispositions.

    Workers are forked from the campaign process, so they inherit any
    SIGINT/SIGTERM checkpoint handlers the supervisor installed — which
    would shield a hung worker from ``terminate()``.  The initializer
    puts the defaults back.
    """
    return ProcessPoolExecutor(max_workers=max_workers,
                               initializer=pool_worker_init)


def kill_workers(pool: ProcessPoolExecutor) -> None:
    """Kill stuck workers so shutdown() cannot hang on a timeout.

    SIGKILL, not SIGTERM: a worker that inherited (or installed) a
    termination handler must still die.  Workers are killed *before*
    ``shutdown()``: the kill trips the executor's broken-pool detection
    (worker sentinels), whose cleanup path reaps everything.  Shutting
    down first parks the manager thread on a result that will never
    arrive, deadlocking interpreter exit.
    """
    for proc in list((getattr(pool, "_processes", None) or {}).values()):
        try:
            proc.kill()
        except Exception:
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def drain_finished(inflight: Dict[object, str],
                   deadlines: Dict[object, Optional[float]],
                   land: Callable[[str, object], None]) -> List[str]:
    """Split in-flight futures after a pool death: finished work lands.

    A ``BrokenProcessPool`` poisons every *pending* future, but futures
    that already completed successfully still hold their results —
    discarding them would charge (and possibly fail) a spec that
    actually succeeded.  ``land`` receives each finished
    ``(digest, result)``; the digests genuinely lost with the pool are
    returned.  Clears ``inflight``/``deadlines``.
    """
    victims: List[str] = []
    for future, digest in list(inflight.items()):
        if future.done() and future.exception() is None:
            land(digest, future.result())
        else:
            victims.append(digest)
    inflight.clear()
    deadlines.clear()
    return victims


# ---------------------------------------------------------------------- #
# the backend interface
# ---------------------------------------------------------------------- #
class ExecutionBackend:
    """Executes a batch of cache-miss specs on behalf of an engine.

    Subclasses implement :meth:`execute`; the engine (and the campaign
    supervisor, in collect mode) parameterize result landing and
    failure handling through the ``land``/``fail``/``tick`` hooks
    documented in the module docstring.
    """

    #: stable identity, reported in ``Engine.summary()`` and manifests
    name = "abstract"

    def execute(self, todo: Dict[str, object], engine, *,
                land: Optional[LandFn] = None,
                fail: Optional[FailFn] = None,
                tick: Optional[TickFn] = None) -> Dict[str, object]:
        """Run every spec in ``todo`` (digest -> spec); return landed runs.

        The returned dict maps digest -> result for the specs that
        landed; with the default ``fail`` the first exhausted spec
        raises :class:`~repro.runner.engine.RunFailure` instead.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (connections, pools).  Idempotent."""

    def describe(self) -> str:
        """Human-readable identity for logs and summaries."""
        return self.name


def _default_fail(todo: Dict[str, object]):
    from repro.runner.engine import RunFailure

    def fail(digest: str, exc: BaseException) -> None:
        raise RunFailure(todo[digest], exc) from exc
    return fail


class InlineBackend(ExecutionBackend):
    """Execute specs serially in the calling process.

    The per-run ``timeout`` cannot be enforced here (there is no worker
    to kill); the engine emits its one-time ``RuntimeWarning`` when a
    timeout is configured but a batch executes inline.
    """

    name = "inline"

    def execute(self, todo, engine, *, land=None, fail=None, tick=None):
        from repro.runner.engine import RunFailure
        out: Dict[str, object] = {}
        commit = land if land is not None else engine._commit
        settle_fail = fail if fail is not None else _default_fail(todo)
        for digest, spec in todo.items():
            if tick is not None:
                tick()
            try:
                run = engine._execute_with_retry(spec)
            except RunFailure as failure:
                cause = failure.cause if failure.cause is not None else failure
                settle_fail(digest, cause)
            else:
                # commit as results land, so an abort later in the
                # batch never discards finished (cacheable) work
                commit(digest, run)
                out[digest] = run
        return out


class ProcessPoolBackend(ExecutionBackend):
    """Fan specs over a process pool; results commit as they land.

    Collection is ``wait()``-driven, so finished futures are drained
    the moment they complete — one slow or hung spec can no longer
    head-of-line-block the other N-1 results.  Each (re)submission gets
    its own wall-clock deadline measured from submission; a
    resubmission therefore starts a *fresh* budget, which is logged as
    a ``[retries]`` warning rather than happening silently.  A worker
    death (``BrokenProcessPool``) costs every in-flight spec one
    attempt (the killer cannot be attributed) and the pool is rebuilt;
    the campaign supervisor layers smarter blame, backoff and
    quarantine on top of this.

    Args:
        jobs: worker processes; ``None`` uses the engine's ``jobs``.
    """

    name = "process-pool"

    def __init__(self, jobs: Optional[int] = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs

    def execute(self, todo, engine, *, land=None, fail=None, tick=None):
        out: Dict[str, object] = {}
        commit = land if land is not None else engine._commit
        on_exhausted = fail if fail is not None else _default_fail(todo)
        jobs = self.jobs if self.jobs is not None else engine.jobs
        max_workers = min(max(1, jobs), len(todo))
        timeout = engine.timeout
        pool = new_pool(max_workers)
        queue = deque(todo)                       # digests awaiting submission
        inflight: Dict[object, str] = {}          # future -> digest
        deadlines: Dict[object, Optional[float]] = {}
        attempts: Dict[str, int] = {digest: 0 for digest in todo}

        def submit(digest: str) -> None:
            future = pool.submit(engine._execute_fn, todo[digest])
            inflight[future] = digest
            deadlines[future] = (time.monotonic() + timeout
                                 if timeout is not None else None)

        def settle(digest: str, run) -> None:
            commit(digest, run)
            out[digest] = run

        def retry_or_fail(digest: str, exc: BaseException) -> None:
            attempts[digest] += 1
            if attempts[digest] <= engine.retries:
                engine.stats.retries += 1
                log.warning(
                    "[retries] resubmitting %s (%s) attempt %d/%d with a "
                    "fresh %ss budget after %r", digest[:12],
                    todo[digest].describe(), attempts[digest] + 1,
                    engine.retries + 1, timeout, exc)
                queue.append(digest)
            else:
                engine.stats.failures += 1
                on_exhausted(digest, exc)

        try:
            while queue or inflight:
                if tick is not None:
                    tick()
                while queue and len(inflight) < max_workers:
                    digest = queue.popleft()
                    try:
                        submit(digest)
                    except BrokenProcessPool as exc:
                        # a worker died between waits; siblings that had
                        # already finished keep their results, the rest
                        # are charged and the pool is rebuilt
                        victims = [digest] + drain_finished(
                            inflight, deadlines, settle)
                        kill_workers(pool)
                        for victim in victims:
                            retry_or_fail(victim, exc)
                        pool = new_pool(max_workers)
                if not inflight:
                    continue
                wait_for = None
                if timeout is not None:
                    now = time.monotonic()
                    wait_for = max(0.0, min(deadlines[f] for f in inflight)
                                   - now)
                done, _ = wait(set(inflight), timeout=wait_for,
                               return_when=FIRST_COMPLETED)
                # successes first: a concurrent crash must not discard
                # finished work
                broken: Optional[BaseException] = None
                for future in sorted(done,
                                     key=lambda f: f.exception() is not None):
                    digest = inflight.pop(future)
                    deadlines.pop(future, None)
                    exc = future.exception()
                    if exc is None:
                        settle(digest, future.result())
                    elif isinstance(exc, BrokenProcessPool):
                        broken = exc
                        retry_or_fail(digest, exc)
                    else:
                        retry_or_fail(digest, exc)
                if broken is not None:
                    # the pool is dead: in-flight specs that had not yet
                    # finished are lost with it; charge each an attempt
                    # and rebuild (finished ones keep their results)
                    victims = drain_finished(inflight, deadlines, settle)
                    kill_workers(pool)
                    for digest in victims:
                        retry_or_fail(digest, broken)
                    pool = new_pool(max_workers)
                    continue
                if timeout is not None and inflight:
                    now = time.monotonic()
                    expired = [f for f in list(inflight)
                               if deadlines[f] is not None
                               and now >= deadlines[f]]
                    stuck: List[str] = []
                    for future in expired:
                        if future.done():
                            continue  # finished in the race; next wait()
                        cause = FuturesTimeout(
                            f"exceeded {timeout}s budget")
                        if future.cancel():
                            # never started: the worker is unharmed
                            digest = inflight.pop(future)
                            deadlines.pop(future, None)
                            retry_or_fail(digest, cause)
                        elif future.done():
                            # completed between the done() check and
                            # cancel(); leave it for the next wait()
                            continue
                        else:
                            digest = inflight.pop(future)
                            deadlines.pop(future, None)
                            stuck.append(digest)
                            retry_or_fail(digest, cause)
                    if stuck:
                        # stuck workers hold the pool hostage: kill it and
                        # resubmit the innocent in-flight specs (a rebuild
                        # casualty, not a retry — fresh deadline, no charge)
                        innocents = list(inflight.values())
                        inflight.clear()
                        deadlines.clear()
                        kill_workers(pool)
                        if innocents:
                            log.info(
                                "[engine] resubmitting %d in-flight specs "
                                "after killing workers stuck on %s",
                                len(innocents),
                                ",".join(d[:12] for d in stuck))
                        queue.extendleft(innocents)
                        pool = new_pool(max_workers)
        finally:
            # terminate rather than join: a stuck or half-dead worker must
            # never be able to hang shutdown
            kill_workers(pool)
        return out


def make_backend(name: str, *, jobs: Optional[int] = None,
                 workers=None,
                 lease_timeout: Optional[float] = None
                 ) -> Optional[ExecutionBackend]:
    """Build a backend from its CLI name.

    ``"auto"`` returns ``None`` — the engine then picks inline or
    process-pool per batch from its ``jobs`` (the classic behaviour).
    ``"remote"`` requires ``workers``, a list of ``host:port`` worker
    addresses started with ``repro-sim worker``; ``lease_timeout``
    tunes its heartbeat lease window (``None`` keeps the default).
    """
    if name == "auto":
        return None
    if name == "inline":
        return InlineBackend()
    if name == "process-pool":
        return ProcessPoolBackend(jobs=jobs)
    if name == "remote":
        if not workers:
            raise ValueError(
                "remote backend needs worker addresses (host:port); start "
                "them with 'repro-sim worker' and pass --workers")
        from repro.runner.remote import RemoteBackend
        if lease_timeout is not None:
            return RemoteBackend(workers, lease_timeout=lease_timeout)
        return RemoteBackend(workers)
    raise ValueError(f"unknown backend {name!r}; choose from "
                     f"{', '.join(BACKEND_NAMES)}")
