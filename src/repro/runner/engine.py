"""The experiment engine: executes batches of :class:`RunSpec`.

Replaces the old per-process memo dict in ``repro.experiments.common``
with a three-tier story:

1. an in-process **memo** (digest -> :class:`BenchmarkRun`), preserving
   the classic ``run_benchmark`` is-identical semantics within a process;
2. a persistent, content-addressed **disk cache**
   (:class:`~repro.runner.cache.ResultCache`) keyed by the spec digest,
   so a full figure suite is resumable across interpreter restarts;
3. actual **execution**, inline or fanned out over a
   :class:`~concurrent.futures.ProcessPoolExecutor` (``jobs > 1``) with
   per-run timeout and retry.

Simulations are deterministic pure functions of their spec (workloads
draw only from RNGs seeded by the spec), so serial and parallel execution
produce identical results and cached entries are safe to reuse.
"""

from __future__ import annotations

import logging
import signal as _signal
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

log = logging.getLogger("repro.runner")

from repro.energy import EnergyAccount, account_run, ed2p
from repro.machine import Machine, RunResult
from repro.runner.cache import CacheCorruption, ResultCache
from repro.runner.spec import RunSpec
from repro.workloads import make_workload
from repro.workloads.registry import PARAMETRIC_WORKLOADS

__all__ = ["BenchmarkRun", "Engine", "EngineStats", "RunFailure",
           "execute_spec"]


@dataclass
class BenchmarkRun:
    """One benchmark execution and its derived metrics."""

    name: str
    hc_kinds: Tuple[str, ...]
    n_cores: int
    result: RunResult
    energy: EnergyAccount
    lock_labels: Dict[int, str]
    #: the spec that produced this run (None for hand-built instances)
    spec: Optional[RunSpec] = None

    @property
    def makespan(self) -> int:
        return self.result.makespan

    @property
    def total_traffic(self) -> int:
        return self.result.total_traffic

    @property
    def ed2p(self) -> float:
        return ed2p(self.energy, self.result.makespan)


class RunFailure(RuntimeError):
    """A spec failed (or timed out) after exhausting its retry budget."""

    def __init__(self, spec: RunSpec, cause: BaseException) -> None:
        super().__init__(f"run failed for {spec.describe()}: {cause!r}")
        self.spec = spec
        self.cause = cause


def _pool_worker_init() -> None:
    """Restore default SIGINT/SIGTERM dispositions in pool workers.

    Workers fork from a process that may have the campaign supervisor's
    checkpoint handlers installed; inheriting those would make a worker
    swallow ``terminate()`` and survive :meth:`Engine._kill_workers`.
    """
    for signum in (_signal.SIGINT, _signal.SIGTERM):
        try:
            _signal.signal(signum, _signal.SIG_DFL)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass


def _build_workload(spec: RunSpec):
    if spec.workload in PARAMETRIC_WORKLOADS:
        workload = PARAMETRIC_WORKLOADS[spec.workload](
            **dict(spec.workload_params))
    else:
        if spec.workload_params:
            raise ValueError(
                f"workload {spec.workload!r} is scale-driven and takes no "
                f"workload_params (got {spec.workload_params})")
        workload = make_workload(spec.workload, scale=spec.scale)
    if spec.seed and hasattr(workload, "seed"):
        workload.seed = spec.seed  # deterministic function of the spec
    return workload


def execute_spec(spec: RunSpec) -> BenchmarkRun:
    """Run one spec on a fresh machine (the pool-worker entry point)."""
    machine = Machine.from_spec(spec.machine)
    if spec.sanitize:
        from repro.verify.invariants import attach_sanitizer
        attach_sanitizer(machine)
    workload = _build_workload(spec)
    instance = workload.instantiate(machine, hc_kind=spec.hc_kind,
                                    other_kind=spec.other_kind,
                                    hc_kinds=spec.hc_kinds)
    result = machine.run(instance.programs, max_events=spec.max_events,
                         max_cycles=spec.max_cycles)
    instance.validate(machine)
    return BenchmarkRun(
        name=spec.workload,
        hc_kinds=spec.hc_kinds or (spec.hc_kind,) * workload.n_hc,
        n_cores=machine.config.n_cores,
        result=result,
        energy=account_run(result),
        lock_labels=dict(instance.lock_labels),
        spec=spec,
    )


@dataclass
class EngineStats:
    """Counters for one engine's lifetime (reported in ``summary()``)."""

    scheduled: int = 0      # specs submitted
    executed: int = 0       # actual simulator runs performed
    memo_hits: int = 0      # served from the in-process memo
    disk_hits: int = 0      # served from the persistent cache
    corrupt_dropped: int = 0  # unreadable cache entries deleted
    retries: int = 0        # re-submissions after a failure/timeout
    failures: int = 0       # specs that exhausted their retry budget


class Engine:
    """Executes RunSpecs with memoization, disk caching and parallelism.

    Args:
        jobs: worker processes; 1 runs inline in this process.
        cache_dir: root of the persistent result cache; ``None`` disables
            disk caching (the in-process memo always applies).
        timeout: per-run wall-clock seconds (enforced in pool mode; a run
            exceeding it counts as a failed attempt).
        retries: extra attempts per spec after a failure or timeout.
        execute_fn: run callable, overridable for tests; must be a
            module-level (picklable) function in pool mode.
    """

    def __init__(self, jobs: int = 1, cache_dir: Optional[str] = None,
                 timeout: Optional[float] = None, retries: int = 0,
                 execute_fn: Callable[[RunSpec], BenchmarkRun] = execute_spec,
                 ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.jobs = jobs
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.timeout = timeout
        self.retries = retries
        self.stats = EngineStats()
        self._execute_fn = execute_fn
        self._memo: Dict[str, BenchmarkRun] = {}
        self._warned_inline_timeout = False

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run_spec(self, spec: RunSpec) -> BenchmarkRun:
        """Run (or recall) a single spec."""
        return self.run_specs([spec])[0]

    def run_specs(self, specs: Iterable[RunSpec]) -> List[BenchmarkRun]:
        """Run a batch, preserving order; duplicates execute once.

        Cache lookups happen up front; the remaining misses run inline
        (``jobs == 1``) or across the process pool, and every fresh
        result is committed to the memo and the disk cache.
        """
        specs = list(specs)
        out: List[Optional[BenchmarkRun]] = [None] * len(specs)
        todo_specs: Dict[str, RunSpec] = {}
        todo_slots: Dict[str, List[int]] = {}
        for i, spec in enumerate(specs):
            digest = spec.digest()
            self.stats.scheduled += 1
            cached = self._lookup(digest)
            if cached is not None:
                out[i] = cached
            else:
                todo_specs.setdefault(digest, spec)
                todo_slots.setdefault(digest, []).append(i)
        if todo_specs:
            if self.jobs > 1 and len(todo_specs) > 1:
                fresh = self._execute_parallel(todo_specs)
            else:
                if self.timeout is not None and not self._warned_inline_timeout:
                    self._warned_inline_timeout = True
                    warnings.warn(
                        "Engine timeout= is only enforced in pool mode "
                        "(jobs > 1 with more than one spec to run); this "
                        "batch executes inline and cannot be interrupted — "
                        "see docs/running-experiments.md",
                        RuntimeWarning, stacklevel=3,
                    )
                fresh = {}
                for digest, spec in todo_specs.items():
                    run = self._execute_with_retry(spec)
                    # commit as results land, so an abort later in the
                    # batch never discards finished (cacheable) work
                    self._commit(digest, run)
                    fresh[digest] = run
            for digest, run in fresh.items():
                for i in todo_slots[digest]:
                    out[i] = run
        return out  # type: ignore[return-value]

    def clear_memory_cache(self) -> None:
        """Drop the in-process memo (the disk cache is untouched)."""
        self._memo.clear()

    def reset_stats(self) -> None:
        """Zero all counters."""
        self.stats = EngineStats()

    def summary(self) -> str:
        """One grep-friendly line: what ran, what came from which cache."""
        s = self.stats
        cache = str(self.cache.root) if self.cache else "off"
        return (f"[engine] specs={s.scheduled} executed={s.executed} "
                f"memo_hits={s.memo_hits} disk_hits={s.disk_hits} "
                f"corrupt={s.corrupt_dropped} retries={s.retries} "
                f"jobs={self.jobs} cache={cache}")

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _lookup(self, digest: str) -> Optional[BenchmarkRun]:
        if digest in self._memo:
            self.stats.memo_hits += 1
            return self._memo[digest]
        if self.cache is not None:
            try:
                run = self.cache.load(digest)
            except CacheCorruption:
                self.stats.corrupt_dropped += 1
                return None
            if run is not None:
                self.stats.disk_hits += 1
                self._memo[digest] = run
                return run
        return None

    def _commit(self, digest: str, run: BenchmarkRun) -> None:
        self.stats.executed += 1
        self._memo[digest] = run
        if self.cache is not None:
            spec = getattr(run, "spec", None)  # test stubs may lack it
            self.cache.store(digest, run,
                             spec.to_dict() if spec is not None else None)

    def _execute_with_retry(self, spec: RunSpec) -> BenchmarkRun:
        last: BaseException
        for attempt in range(self.retries + 1):
            try:
                return self._execute_fn(spec)
            except Exception as exc:
                last = exc
                if attempt < self.retries:
                    self.stats.retries += 1
        self.stats.failures += 1
        raise RunFailure(spec, last) from last

    def _execute_parallel(
            self, todo: Dict[str, RunSpec]) -> Dict[str, BenchmarkRun]:
        """Fan ``todo`` over a process pool; results commit as they land.

        Collection is ``wait()``-driven, so finished futures are drained
        the moment they complete — one slow or hung spec can no longer
        head-of-line-block the other N-1 results.  Each (re)submission
        gets its own wall-clock deadline measured from submission; a
        resubmission therefore starts a *fresh* budget, which is logged
        as a ``[retries]`` warning rather than happening silently.  A
        worker death (``BrokenProcessPool``) costs every in-flight spec
        one attempt (the killer cannot be attributed) and the pool is
        rebuilt; the campaign supervisor layers smarter blame, backoff
        and quarantine on top of this.
        """
        out: Dict[str, BenchmarkRun] = {}
        max_workers = min(self.jobs, len(todo))
        pool = Engine._new_pool(max_workers)
        queue = deque(todo)                       # digests awaiting submission
        inflight: Dict[object, str] = {}          # future -> digest
        deadlines: Dict[object, Optional[float]] = {}
        attempts: Dict[str, int] = {digest: 0 for digest in todo}

        def submit(digest: str) -> None:
            future = pool.submit(self._execute_fn, todo[digest])
            inflight[future] = digest
            deadlines[future] = (time.monotonic() + self.timeout
                                 if self.timeout is not None else None)

        def land(digest: str, run: BenchmarkRun) -> None:
            self._commit(digest, run)
            out[digest] = run

        def retry_or_fail(digest: str, exc: BaseException) -> None:
            attempts[digest] += 1
            if attempts[digest] <= self.retries:
                self.stats.retries += 1
                log.warning(
                    "[retries] resubmitting %s (%s) attempt %d/%d with a "
                    "fresh %ss budget after %r", digest[:12],
                    todo[digest].describe(), attempts[digest] + 1,
                    self.retries + 1, self.timeout, exc)
                queue.append(digest)
            else:
                self.stats.failures += 1
                raise RunFailure(todo[digest], exc) from exc

        try:
            while queue or inflight:
                while queue and len(inflight) < max_workers:
                    digest = queue.popleft()
                    try:
                        submit(digest)
                    except BrokenProcessPool as exc:
                        # a worker died between waits; siblings that had
                        # already finished keep their results, the rest
                        # are charged and the pool is rebuilt
                        victims = [digest] + Engine._drain_finished(
                            inflight, deadlines, land)
                        self._kill_workers(pool)
                        for victim in victims:
                            retry_or_fail(victim, exc)
                        pool = Engine._new_pool(max_workers)
                if not inflight:
                    continue
                wait_for = None
                if self.timeout is not None:
                    now = time.monotonic()
                    wait_for = max(0.0, min(deadlines[f] for f in inflight)
                                   - now)
                done, _ = wait(set(inflight), timeout=wait_for,
                               return_when=FIRST_COMPLETED)
                # successes first: a concurrent crash must not discard
                # finished work
                broken: Optional[BaseException] = None
                for future in sorted(done,
                                     key=lambda f: f.exception() is not None):
                    digest = inflight.pop(future)
                    deadlines.pop(future, None)
                    exc = future.exception()
                    if exc is None:
                        land(digest, future.result())
                    elif isinstance(exc, BrokenProcessPool):
                        broken = exc
                        retry_or_fail(digest, exc)
                    else:
                        retry_or_fail(digest, exc)
                if broken is not None:
                    # the pool is dead: in-flight specs that had not yet
                    # finished are lost with it; charge each an attempt
                    # and rebuild (finished ones keep their results)
                    victims = Engine._drain_finished(inflight, deadlines,
                                                     land)
                    self._kill_workers(pool)
                    for digest in victims:
                        retry_or_fail(digest, broken)
                    pool = Engine._new_pool(max_workers)
                    continue
                if self.timeout is not None and inflight:
                    now = time.monotonic()
                    expired = [f for f in list(inflight)
                               if deadlines[f] is not None
                               and now >= deadlines[f]]
                    stuck: List[str] = []
                    for future in expired:
                        if future.done():
                            continue  # finished in the race; next wait()
                        cause = FuturesTimeout(
                            f"exceeded {self.timeout}s budget")
                        if future.cancel():
                            # never started: the worker is unharmed
                            digest = inflight.pop(future)
                            deadlines.pop(future, None)
                            retry_or_fail(digest, cause)
                        elif future.done():
                            # completed between the done() check and
                            # cancel(); leave it for the next wait()
                            continue
                        else:
                            digest = inflight.pop(future)
                            deadlines.pop(future, None)
                            stuck.append(digest)
                            retry_or_fail(digest, cause)
                    if stuck:
                        # stuck workers hold the pool hostage: kill it and
                        # resubmit the innocent in-flight specs (a rebuild
                        # casualty, not a retry — fresh deadline, no charge)
                        innocents = list(inflight.values())
                        inflight.clear()
                        deadlines.clear()
                        self._kill_workers(pool)
                        if innocents:
                            log.info(
                                "[engine] resubmitting %d in-flight specs "
                                "after killing workers stuck on %s",
                                len(innocents),
                                ",".join(d[:12] for d in stuck))
                        queue.extendleft(innocents)
                        pool = Engine._new_pool(max_workers)
        finally:
            # terminate rather than join: a stuck or half-dead worker must
            # never be able to hang shutdown
            self._kill_workers(pool)
        return out

    @staticmethod
    def _drain_finished(inflight: Dict[object, str],
                        deadlines: Dict[object, Optional[float]],
                        land: Callable[[str, object], None]) -> List[str]:
        """Split in-flight futures after a pool death: finished work lands.

        A ``BrokenProcessPool`` poisons every *pending* future, but
        futures that already completed successfully still hold their
        results — discarding them would charge (and possibly fail) a
        spec that actually succeeded.  ``land`` receives each finished
        ``(digest, result)``; the digests genuinely lost with the pool
        are returned.  Clears ``inflight``/``deadlines``.
        """
        victims: List[str] = []
        for future, digest in list(inflight.items()):
            if future.done() and future.exception() is None:
                land(digest, future.result())
            else:
                victims.append(digest)
        inflight.clear()
        deadlines.clear()
        return victims

    @staticmethod
    def _new_pool(max_workers: int) -> ProcessPoolExecutor:
        """A pool whose workers restore default signal dispositions.

        Workers are forked from the campaign process, so they inherit any
        SIGINT/SIGTERM checkpoint handlers the supervisor installed —
        which would shield a hung worker from ``terminate()``.  The
        initializer puts the defaults back.
        """
        return ProcessPoolExecutor(max_workers=max_workers,
                                   initializer=_pool_worker_init)

    @staticmethod
    def _kill_workers(pool: ProcessPoolExecutor) -> None:
        """Kill stuck workers so shutdown() cannot hang on a timeout.

        SIGKILL, not SIGTERM: a worker that inherited (or installed) a
        termination handler must still die.  Workers are killed *before*
        ``shutdown()``: the kill trips the executor's broken-pool
        detection (worker sentinels), whose cleanup path reaps
        everything.  Shutting down first parks the manager thread on a
        result that will never arrive, deadlocking interpreter exit.
        """
        for proc in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                proc.kill()
            except Exception:
                pass
        pool.shutdown(wait=False, cancel_futures=True)
