"""The experiment engine: executes batches of :class:`RunSpec`.

Replaces the old per-process memo dict in ``repro.experiments.common``
with a three-tier story:

1. an in-process **memo** (digest -> :class:`BenchmarkRun`), preserving
   the classic ``run_benchmark`` is-identical semantics within a process;
2. a persistent, content-addressed **disk cache**
   (:class:`~repro.runner.cache.ResultCache`) keyed by the spec digest,
   so a full figure suite is resumable across interpreter restarts;
3. actual **execution**, delegated to a pluggable
   :class:`~repro.runner.backends.ExecutionBackend`: inline in this
   process, fanned over a process pool, or shipped to socket-protocol
   remote workers (``repro-sim worker``) that share the same
   digest-keyed cache.

Simulations are deterministic pure functions of their spec (workloads
draw only from RNGs seeded by the spec), so every backend produces
identical results and cached entries are safe to reuse anywhere.
"""

from __future__ import annotations

import logging
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

log = logging.getLogger("repro.runner")

from repro.energy import EnergyAccount, account_run, ed2p
from repro.machine import Machine, RunResult
from repro.runner.backends import (ExecutionBackend, InlineBackend,
                                   ProcessPoolBackend, drain_finished,
                                   kill_workers, make_backend, new_pool,
                                   pool_worker_init)
from repro.runner.cache import CacheCorruption, ResultCache
from repro.runner.spec import RunSpec
from repro.workloads import make_workload
from repro.workloads.registry import PARAMETRIC_WORKLOADS

__all__ = ["BenchmarkRun", "Engine", "EngineStats", "RunFailure",
           "execute_spec"]

#: backwards-compatible alias — the initializer moved to repro.runner.backends
_pool_worker_init = pool_worker_init


@dataclass
class BenchmarkRun:
    """One benchmark execution and its derived metrics."""

    name: str
    hc_kinds: Tuple[str, ...]
    n_cores: int
    result: RunResult
    energy: EnergyAccount
    lock_labels: Dict[int, str]
    #: the spec that produced this run (None for hand-built instances)
    spec: Optional[RunSpec] = None

    @property
    def makespan(self) -> int:
        return self.result.makespan

    @property
    def total_traffic(self) -> int:
        return self.result.total_traffic

    @property
    def ed2p(self) -> float:
        return ed2p(self.energy, self.result.makespan)


class RunFailure(RuntimeError):
    """A spec failed (or timed out) after exhausting its retry budget."""

    def __init__(self, spec: RunSpec, cause: BaseException) -> None:
        super().__init__(f"run failed for {spec.describe()}: {cause!r}")
        self.spec = spec
        self.cause = cause


def _build_workload(spec: RunSpec):
    if spec.workload in PARAMETRIC_WORKLOADS:
        workload = PARAMETRIC_WORKLOADS[spec.workload](
            **dict(spec.workload_params))
    else:
        if spec.workload_params:
            raise ValueError(
                f"workload {spec.workload!r} is scale-driven and takes no "
                f"workload_params (got {spec.workload_params})")
        workload = make_workload(spec.workload, scale=spec.scale)
    if spec.seed and hasattr(workload, "seed"):
        workload.seed = spec.seed  # deterministic function of the spec
    return workload


def execute_spec(spec: RunSpec) -> BenchmarkRun:
    """Run one spec on a fresh machine (the pool/remote-worker entry point)."""
    machine = Machine.from_spec(spec.machine)
    if spec.sanitize and machine.sanitizer is None:
        # an ambient sanitizer (e.g. pytest --sanitize) already covers the run
        from repro.verify.invariants import attach_sanitizer
        attach_sanitizer(machine)
    workload = _build_workload(spec)
    instance = workload.instantiate(machine, hc_kind=spec.hc_kind,
                                    other_kind=spec.other_kind,
                                    hc_kinds=spec.hc_kinds)
    result = machine.run(instance.programs, max_events=spec.max_events,
                         max_cycles=spec.max_cycles)
    instance.validate(machine)
    return BenchmarkRun(
        name=spec.workload,
        hc_kinds=spec.hc_kinds or (spec.hc_kind,) * workload.n_hc,
        n_cores=machine.config.n_cores,
        result=result,
        energy=account_run(result),
        lock_labels=dict(instance.lock_labels),
        spec=spec,
    )


@dataclass
class EngineStats:
    """Counters for one engine's lifetime (reported in ``summary()``)."""

    scheduled: int = 0      # specs submitted
    executed: int = 0       # actual simulator runs performed
    memo_hits: int = 0      # served from the in-process memo
    disk_hits: int = 0      # served from the persistent cache
    corrupt_dropped: int = 0  # unreadable cache entries deleted
    retries: int = 0        # re-submissions after a failure/timeout
    failures: int = 0       # specs that exhausted their retry budget


class Engine:
    """Executes RunSpecs with memoization, disk caching and parallelism.

    Args:
        jobs: worker processes; 1 runs inline in this process (under the
            default ``backend="auto"`` selection).
        cache_dir: root of the persistent result cache; ``None`` disables
            disk caching (the in-process memo always applies).
        timeout: per-run wall-clock seconds (enforced by the pool and
            remote backends; a run exceeding it counts as a failed
            attempt).
        retries: extra attempts per spec after a failure or timeout.
        execute_fn: run callable, overridable for tests; must be a
            module-level (picklable) function in pool mode.  The remote
            backend always runs the *worker's* ``execute_spec``.
        backend: ``"auto"`` (default) picks inline or process-pool per
            batch from ``jobs``; or an explicit name (``"inline"``,
            ``"process-pool"``) or :class:`ExecutionBackend` instance
            (e.g. a configured
            :class:`~repro.runner.remote.RemoteBackend`).
    """

    # shared pool plumbing, re-exported for the supervisor and tests
    # (the implementations moved to repro.runner.backends)
    _new_pool = staticmethod(new_pool)
    _kill_workers = staticmethod(kill_workers)
    _drain_finished = staticmethod(drain_finished)

    def __init__(self, jobs: int = 1, cache_dir: Optional[str] = None,
                 timeout: Optional[float] = None, retries: int = 0,
                 execute_fn: Callable[[RunSpec], BenchmarkRun] = execute_spec,
                 backend: Union[None, str, ExecutionBackend] = None,
                 ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.jobs = jobs
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.timeout = timeout
        self.retries = retries
        self.stats = EngineStats()
        self._execute_fn = execute_fn
        self._memo: Dict[str, BenchmarkRun] = {}
        self._warned_inline_timeout = False
        if isinstance(backend, str):
            backend = make_backend(backend, jobs=jobs)
        self.backend: Optional[ExecutionBackend] = backend
        self._auto_inline = InlineBackend()
        self._auto_pool = ProcessPoolBackend()
        #: callables invoked with ``(digest, run)`` every time a result
        #: becomes available — freshly executed *or* served from a cache
        #: tier.  The streaming sample publisher subscribes here.
        self.observers: List[Callable[[str, BenchmarkRun], None]] = []

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    @property
    def backend_name(self) -> str:
        """The configured execution identity (summaries, manifests)."""
        if self.backend is not None:
            return self.backend.name
        return "inline" if self.jobs == 1 else "process-pool"

    def run_spec(self, spec: RunSpec) -> BenchmarkRun:
        """Run (or recall) a single spec."""
        return self.run_specs([spec])[0]

    def run_specs(self, specs: Iterable[RunSpec]) -> List[BenchmarkRun]:
        """Run a batch, preserving order; duplicates execute once.

        Cache lookups happen up front; the remaining misses go to the
        execution backend, and every fresh result is committed to the
        memo and the disk cache the moment it lands.
        """
        specs = list(specs)
        out: List[Optional[BenchmarkRun]] = [None] * len(specs)
        todo_specs: Dict[str, RunSpec] = {}
        todo_slots: Dict[str, List[int]] = {}
        for i, spec in enumerate(specs):
            digest = spec.digest()
            self.stats.scheduled += 1
            cached = self._lookup(digest)
            if cached is not None:
                out[i] = cached
            else:
                todo_specs.setdefault(digest, spec)
                todo_slots.setdefault(digest, []).append(i)
        if todo_specs:
            backend = self._select_backend(todo_specs)
            if (backend.name == "inline" and self.timeout is not None
                    and not self._warned_inline_timeout):
                self._warned_inline_timeout = True
                warnings.warn(
                    "Engine timeout= is only enforced in pool mode "
                    "(jobs > 1 with more than one spec to run); this "
                    "batch executes inline and cannot be interrupted — "
                    "see docs/running-experiments.md",
                    RuntimeWarning, stacklevel=3,
                )
            fresh = backend.execute(todo_specs, self)
            for digest, run in fresh.items():
                for i in todo_slots[digest]:
                    out[i] = run
        return out  # type: ignore[return-value]

    def clear_memory_cache(self) -> None:
        """Drop the in-process memo (the disk cache is untouched)."""
        self._memo.clear()

    def reset_stats(self) -> None:
        """Zero all counters."""
        self.stats = EngineStats()

    def close(self) -> None:
        """Release the backend's resources (remote connections, pools)."""
        if self.backend is not None:
            self.backend.close()

    def summary(self) -> str:
        """One grep-friendly line: what ran, what came from which cache."""
        s = self.stats
        cache = str(self.cache.root) if self.cache else "off"
        return (f"[engine] specs={s.scheduled} executed={s.executed} "
                f"memo_hits={s.memo_hits} disk_hits={s.disk_hits} "
                f"corrupt={s.corrupt_dropped} retries={s.retries} "
                f"backend={self.backend_name} jobs={self.jobs} "
                f"cache={cache}")

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _select_backend(self, todo: Dict[str, RunSpec]) -> ExecutionBackend:
        """The backend for this batch (explicit, or the classic auto pick)."""
        if self.backend is not None:
            return self.backend
        if self.jobs > 1 and len(todo) > 1:
            return self._auto_pool
        return self._auto_inline

    def _lookup(self, digest: str) -> Optional[BenchmarkRun]:
        if digest in self._memo:
            self.stats.memo_hits += 1
            run = self._memo[digest]
            self._notify(digest, run)
            return run
        if self.cache is not None:
            try:
                run = self.cache.load(digest)
            except CacheCorruption:
                self.stats.corrupt_dropped += 1
                return None
            if run is not None:
                self.stats.disk_hits += 1
                self._memo[digest] = run
                self._notify(digest, run)
                return run
        return None

    def _commit(self, digest: str, run: BenchmarkRun) -> None:
        self.stats.executed += 1
        self._memo[digest] = run
        if self.cache is not None:
            spec = getattr(run, "spec", None)  # test stubs may lack it
            self.cache.store(digest, run,
                             spec.to_dict() if spec is not None else None)
        self._notify(digest, run)

    def _notify(self, digest: str, run: BenchmarkRun) -> None:
        for observer in self.observers:
            observer(digest, run)

    def _execute_with_retry(self, spec: RunSpec) -> BenchmarkRun:
        last: BaseException
        for attempt in range(self.retries + 1):
            try:
                return self._execute_fn(spec)
            except Exception as exc:
                last = exc
                if attempt < self.retries:
                    self.stats.retries += 1
        self.stats.failures += 1
        raise RunFailure(spec, last) from last
