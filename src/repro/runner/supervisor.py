"""Campaign supervisor: failure isolation, crash recovery, resume.

The :class:`~repro.runner.engine.Engine` is deliberately fail-fast: a
spec that exhausts its retry budget raises
:class:`~repro.runner.engine.RunFailure` and the batch dies.  That is
the right default for unit tests, but a figure-suite campaign of
hundreds of simulator runs must survive a single bad spec, a worker
killed by the OS, or a Ctrl-C half-way through.  The
:class:`Supervisor` wraps an engine with exactly that survivability:

- **failure isolation** — ``fail_policy="collect"`` resolves *every*
  spec to a :class:`~repro.runner.outcome.RunOutcome` (ok / timeout /
  crash / deadlock / sanitizer / error / quarantined) instead of
  aborting on the first failure; ``"abort"`` reproduces the engine's
  classic die-on-first-failure contract.
- **crash recovery** — a dead process pool (``BrokenProcessPool``) is
  rebuilt and its in-flight specs are resubmitted, after an exponential
  backoff with seeded jitter.  Repeated consecutive pool deaths shed
  concurrency (the admission *window* halves, never below 1) in the
  spirit of Dice & Kogan's *Avoiding Scalability Collapse by Restricting
  Concurrency*; a sustained healthy streak restores it.
- **poison quarantine** — specs that were in flight when a pool died are
  re-run one at a time in an isolation pool, where blame is unambiguous.
  A spec that kills its (solo) worker ``quarantine_threshold`` times is
  parked: its outcome becomes ``quarantined``, it is recorded in the
  manifest and the quarantine file with its digest and last failure, and
  it is never resubmitted for the rest of the campaign (including
  resumed passes).
- **checkpoint / resume** — when given a ``manifest_path`` the
  supervisor writes an atomically-replaced JSON manifest (pending /
  done / failed / quarantined digests + engine stats) every time a
  result lands.  Results themselves land in the engine's disk cache the
  moment they complete, so ``--resume <manifest>`` re-executes only the
  specs that were not yet done.  SIGINT/SIGTERM flush the manifest and
  raise :class:`CampaignInterrupted` instead of tearing the process
  down mid-write.

The supervisor reaches into the engine's internal ``_lookup`` /
``_commit`` / ``_execute_fn`` on purpose: they are the engine's caching
contract, and the two classes live in the same package and release
train.
"""

from __future__ import annotations

import json
import logging
import os
import random
import signal
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional

from repro.runner.backends import drain_finished, kill_workers, new_pool
from repro.runner.engine import BenchmarkRun, Engine, RunFailure
from repro.runner.outcome import (OK, QUARANTINED, RunOutcome,
                                  classify_failure, summarize_outcomes)
from repro.runner.spec import RunSpec

__all__ = ["CampaignInterrupted", "CampaignManifest", "CampaignResult",
           "Supervisor", "MANIFEST_VERSION"]

log = logging.getLogger("repro.runner")

#: bump when the manifest JSON layout changes
MANIFEST_VERSION = 1

#: how often the execution loops poll for signals/deadlines (seconds)
_POLL_INTERVAL = 0.1


class CampaignInterrupted(RuntimeError):
    """A signal stopped the campaign after a clean checkpoint flush."""

    def __init__(self, signum: int, manifest_path: Optional[str]) -> None:
        try:
            name = signal.Signals(signum).name
        except ValueError:  # pragma: no cover - exotic signal numbers
            name = str(signum)
        where = manifest_path or "no manifest configured"
        super().__init__(f"campaign interrupted by {name} "
                         f"(checkpoint: {where})")
        self.signum = signum
        self.manifest_path = manifest_path


class CampaignManifest:
    """Atomic JSON checkpoint of a campaign's progress.

    Layout (``version`` = :data:`MANIFEST_VERSION`)::

        {"version": 1,
         "campaign":    {...engine/supervisor configuration...},
         "specs":       {digest: human-readable label},
         "pending":     [digest, ...],
         "done":        [digest, ...],
         "failed":      {digest: {status, error, attempts, spec}},
         "quarantined": {digest: {kills, error, spec}},
         "stats":       {...engine + supervisor counters...}}

    Every :meth:`flush` writes a temp file and ``os.replace``\\ s it, so
    a campaign killed mid-checkpoint never leaves a torn manifest.
    """

    def __init__(self, path: os.PathLike,
                 data: Optional[Dict] = None) -> None:
        self.path = Path(path)
        self.data: Dict = data if data is not None else {
            "version": MANIFEST_VERSION,
            "campaign": {},
            "specs": {},
            "pending": [],
            "done": [],
            "failed": {},
            "quarantined": {},
            "stats": {},
        }

    @classmethod
    def load(cls, path: os.PathLike) -> "CampaignManifest":
        with open(path) as fh:
            data = json.load(fh)
        if data.get("version") != MANIFEST_VERSION:
            raise ValueError(f"unsupported campaign manifest version "
                             f"{data.get('version')!r} in {path}")
        return cls(path, data)

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    def note_spec(self, digest: str, label: str) -> None:
        self.data["specs"][digest] = label

    def mark_pending(self, digest: str) -> None:
        if (digest not in self.data["pending"]
                and digest not in self.data["done"]):
            self.data["pending"].append(digest)

    def _unpend(self, digest: str) -> None:
        if digest in self.data["pending"]:
            self.data["pending"].remove(digest)

    def mark_done(self, digest: str) -> None:
        self._unpend(digest)
        self.data["failed"].pop(digest, None)
        if digest not in self.data["done"]:
            self.data["done"].append(digest)

    def mark_failed(self, digest: str, status: str, error: str,
                    attempts: int, spec_dict: Optional[Dict]) -> None:
        self._unpend(digest)
        self.data["failed"][digest] = {"status": status, "error": error,
                                       "attempts": attempts,
                                       "spec": spec_dict}

    def mark_quarantined(self, digest: str, kills: int, error: str,
                         spec_dict: Optional[Dict]) -> None:
        self._unpend(digest)
        self.data["quarantined"][digest] = {"kills": kills, "error": error,
                                            "spec": spec_dict}

    @property
    def done(self) -> List[str]:
        return list(self.data["done"])

    @property
    def quarantined(self) -> Dict[str, Dict]:
        return dict(self.data["quarantined"])

    def flush(self) -> None:
        """Atomically persist the manifest (temp file + ``os.replace``)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(self.path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(self.data, fh, indent=1, sort_keys=True)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


@dataclass
class CampaignResult:
    """Per-spec outcomes of one :meth:`Supervisor.run_campaign` call."""

    outcomes: List[RunOutcome]

    @property
    def ok(self) -> List[RunOutcome]:
        return [o for o in self.outcomes if o.ok]

    @property
    def failed(self) -> List[RunOutcome]:
        return [o for o in self.outcomes
                if not o.ok and o.status != QUARANTINED]

    @property
    def quarantined(self) -> List[RunOutcome]:
        return [o for o in self.outcomes if o.status == QUARANTINED]

    def runs(self) -> List[Optional[BenchmarkRun]]:
        """Results aligned to the submitted specs (None where not ok)."""
        return [o.run if o.ok else None for o in self.outcomes]


@dataclass
class _SpecState:
    """Mutable per-digest campaign bookkeeping."""

    spec: RunSpec
    attempts: int = 0      # failed execution attempts (retry budget)
    kills: int = 0         # unambiguous worker kills
    last_error: Optional[BaseException] = None


class Supervisor:
    """Failure-isolating, crash-recovering campaign executor.

    Args:
        engine: the configured :class:`Engine` whose caches, timeout,
            retry budget and ``jobs`` the campaign uses.  Unlike the
            bare engine, the supervisor *always* executes on a process
            pool (``jobs=1`` becomes a one-worker pool) so crashes and
            hangs stay isolated from the campaign process.
        fail_policy: ``"collect"`` (default) records failures as
            outcomes and keeps going; ``"abort"`` raises
            :class:`RunFailure` on the first exhausted spec.
        quarantine_threshold: unambiguous worker kills after which a
            spec is quarantined (>= 1).
        backoff_base / backoff_cap / backoff_jitter / seed: the pool
            rebuild delay is ``min(cap, base * 2**(deaths-1))`` scaled
            by ``1 + jitter * U(0, 1)`` from a :class:`random.Random`
            seeded with ``seed`` — deterministic for tests.
        halve_after: consecutive pool deaths before the admission
            window halves (concurrency shedding).
        heal_after: consecutive clean landings before the window doubles
            back toward ``engine.jobs``.
        manifest_path: where to checkpoint campaign progress (JSON);
            ``None`` disables checkpointing.
        resume_from: path of a previous campaign's manifest; its
            quarantined specs are skipped and its results are served
            from the engine's disk cache.  Defaults ``manifest_path`` to
            the same file so the resumed pass keeps checkpointing.
        quarantine_path: where quarantined specs are parked (defaults to
            ``<manifest_path>.quarantine.json`` when a manifest is set).
        sleep_fn: injected for tests (receives the backoff seconds).
        on_checkpoint: optional callable invoked with the supervisor
            after every landed result (progress hooks, tests).
        install_signal_handlers: install SIGINT/SIGTERM checkpoint
            handlers for the duration of each campaign (main thread
            only; no-op elsewhere).
    """

    def __init__(self, engine: Engine, *, fail_policy: str = "collect",
                 quarantine_threshold: int = 2,
                 backoff_base: float = 0.25, backoff_cap: float = 8.0,
                 backoff_jitter: float = 0.5, seed: int = 0,
                 halve_after: int = 2, heal_after: int = 8,
                 manifest_path: Optional[os.PathLike] = None,
                 resume_from: Optional[os.PathLike] = None,
                 quarantine_path: Optional[os.PathLike] = None,
                 sleep_fn: Callable[[float], None] = time.sleep,
                 on_checkpoint: Optional[Callable[["Supervisor"], None]] = None,
                 install_signal_handlers: bool = True) -> None:
        if fail_policy not in ("abort", "collect"):
            raise ValueError(f"unknown fail_policy {fail_policy!r}")
        if quarantine_threshold < 1:
            raise ValueError("quarantine_threshold must be >= 1")
        self.engine = engine
        self.fail_policy = fail_policy
        self.quarantine_threshold = quarantine_threshold
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.backoff_jitter = backoff_jitter
        self.halve_after = max(1, halve_after)
        self.heal_after = max(1, heal_after)
        self.sleep_fn = sleep_fn
        self.on_checkpoint = on_checkpoint
        self.install_signal_handlers = install_signal_handlers
        self._rng = random.Random(seed)

        # resume state --------------------------------------------------
        self._resume_quarantined: Dict[str, Dict] = {}
        if resume_from is not None:
            loaded = CampaignManifest.load(resume_from)
            self._resume_quarantined = loaded.quarantined
            if manifest_path is None or Path(manifest_path) == loaded.path:
                manifest_path, self.manifest = loaded.path, loaded
            else:
                self.manifest = CampaignManifest(manifest_path)
        else:
            self.manifest = (CampaignManifest(manifest_path)
                             if manifest_path is not None else None)
        if quarantine_path is None and manifest_path is not None:
            quarantine_path = str(manifest_path) + ".quarantine.json"
        self.quarantine_path = quarantine_path

        # adaptive admission + health telemetry -------------------------
        self.window = max(1, engine.jobs)       # current admission window
        self.min_window = self.window           # lowest the campaign sank
        self.pool_deaths = 0                    # workers lost to crashes
        self.timeout_kills = 0                  # pools killed for hangs
        self.rebuilds = 0
        self.backoff_log: List[float] = []      # slept delays, in order
        self._consecutive_deaths = 0
        self._clean_streak = 0

        #: every outcome across this supervisor's campaigns, in order
        self.outcomes: List[RunOutcome] = []
        self._interrupt: Optional[int] = None
        self._old_handlers: Dict[int, object] = {}

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run_specs(self, specs: Iterable[RunSpec]
                  ) -> List[Optional[BenchmarkRun]]:
        """Engine-compatible batch API: results aligned to ``specs``.

        Under ``fail_policy="collect"`` failed/quarantined specs yield
        ``None`` (harnesses skip them); under ``"abort"`` the first
        exhausted spec raises :class:`RunFailure`, like the engine.
        """
        return self.run_campaign(specs).runs()

    def run_campaign(self, specs: Iterable[RunSpec]) -> CampaignResult:
        """Run a batch to completion, whatever happens to the workers."""
        specs = list(specs)
        self._install_handlers()
        try:
            by_digest: Dict[str, RunOutcome] = {}
            order: List[str] = []
            todo: Dict[str, RunSpec] = {}
            for spec in specs:
                digest = spec.digest()
                order.append(digest)
                self.engine.stats.scheduled += 1
                if digest in by_digest or digest in todo:
                    continue
                if digest in self._resume_quarantined:
                    info = self._resume_quarantined[digest]
                    by_digest[digest] = RunOutcome(
                        spec, digest, QUARANTINED,
                        error=info.get("error"), kills=info.get("kills", 0))
                    continue
                run = self.engine._lookup(digest)
                if run is not None:
                    by_digest[digest] = RunOutcome(spec, digest, OK, run=run)
                    if self.manifest is not None:
                        self.manifest.note_spec(digest, spec.describe())
                        self.manifest.mark_done(digest)
                    continue
                todo[digest] = spec
            if self.manifest is not None:
                for digest, spec in todo.items():
                    self.manifest.note_spec(digest, spec.describe())
                    self.manifest.mark_pending(digest)
                self._flush_manifest()
            if todo:
                state = {digest: _SpecState(spec)
                         for digest, spec in todo.items()}
                backend = self._delegated_backend()
                if backend is not None:
                    self._delegated_phase(todo, state, by_digest, backend)
                else:
                    suspects = self._herd_phase(todo, state, by_digest)
                    self._suspect_phase(todo, state, suspects, by_digest)
            self._flush_manifest()
            outcomes = [by_digest[digest] for digest in order]
            self.outcomes.extend(outcomes)
            return CampaignResult(outcomes=outcomes)
        finally:
            self._restore_handlers()

    def summary(self) -> str:
        """One grep-friendly line mirroring ``Engine.summary()``."""
        counts = summarize_outcomes(self.outcomes)
        failed = sum(n for status, n in counts.items()
                     if status not in (OK, QUARANTINED))
        return (f"[campaign] ok={counts.get(OK, 0)} failed={failed} "
                f"quarantined={counts.get(QUARANTINED, 0)} "
                f"pool_deaths={self.pool_deaths} "
                f"timeout_kills={self.timeout_kills} "
                f"rebuilds={self.rebuilds} "
                f"window={self.window}/{max(1, self.engine.jobs)} "
                f"backoffs={len(self.backoff_log)} "
                f"policy={self.fail_policy}")

    # ------------------------------------------------------------------ #
    # delegated phase: an explicit non-pool backend executes the batch
    # ------------------------------------------------------------------ #
    def _delegated_backend(self):
        """The engine's explicit backend, when the supervisor should
        delegate to it instead of herding its own process pools.

        Pool-based execution (the default, and explicit
        ``process-pool``) keeps the supervisor's own herd/suspect
        machinery — that is where broken-pool blame, admission-window
        shedding and quarantine are meaningful.  An explicit ``inline``
        or ``remote`` backend executes the batch itself; the supervisor
        still provides the outcome taxonomy, fail-policy, manifests and
        checkpointing on top (worker-kill quarantine does not apply:
        there is no local pool to die).
        """
        backend = self.engine.backend
        if backend is not None and backend.name != "process-pool":
            return backend
        return None

    def _delegated_phase(self, todo: Dict[str, RunSpec],
                         state: Dict[str, _SpecState],
                         by_digest: Dict[str, RunOutcome], backend) -> None:
        """Run ``todo`` through ``backend`` with per-spec outcomes.

        The backend handles its own retry budget (charging
        ``engine.stats``); an exhausted spec reaches ``fail`` exactly
        once, where the fail-policy decides between aborting and
        recording a classified outcome.
        """
        def land(digest: str, run: BenchmarkRun) -> None:
            self.engine._commit(digest, run)
            self._land_bookkeeping(digest, run, state, by_digest)

        def fail(digest: str, exc: BaseException) -> None:
            st = state[digest]
            st.attempts += 1
            st.last_error = exc
            if self.fail_policy == "abort":
                self._flush_manifest()
                raise RunFailure(st.spec, exc) from exc
            status = classify_failure(exc)
            by_digest[digest] = RunOutcome(st.spec, digest, status,
                                           error=repr(exc),
                                           attempts=st.attempts,
                                           kills=st.kills)
            log.warning("[campaign] %s", by_digest[digest].describe())
            if self.manifest is not None:
                self.manifest.mark_failed(digest, status, repr(exc),
                                          st.attempts, st.spec.to_dict())
                self._flush_manifest()

        def tick() -> None:
            self._check_interrupt(None)

        backend.execute(todo, self.engine, land=land, fail=fail, tick=tick)

    # ------------------------------------------------------------------ #
    # herd phase: everything rides the shared pool
    # ------------------------------------------------------------------ #
    def _herd_phase(self, todo: Dict[str, RunSpec],
                    state: Dict[str, _SpecState],
                    by_digest: Dict[str, RunOutcome]) -> List[str]:
        """Run ``todo`` over the shared pool; returns pool-death suspects.

        Suspects — the specs that were in flight whenever the pool died
        — are *not* retried here, because blame is ambiguous in a shared
        pool; they graduate to :meth:`_suspect_phase` isolation instead.
        """
        max_workers = min(max(1, self.engine.jobs), len(todo))
        timeout = self.engine.timeout
        pool = new_pool(max_workers)
        queue = deque(todo)
        inflight: Dict[object, str] = {}
        deadlines: Dict[object, Optional[float]] = {}
        suspects: List[str] = []

        def to_suspects(victims: List[str],
                        cause: BaseException) -> None:
            for digest in victims:
                st = state[digest]
                st.last_error = cause
                if len(victims) == 1:
                    st.kills += 1  # sole occupant: blame is unambiguous
                if digest not in suspects:
                    suspects.append(digest)

        def drain_survivors() -> List[str]:
            """Land in-flight futures that finished before the pool died;
            only the genuinely lost digests become suspects."""
            return drain_finished(
                inflight, deadlines,
                lambda digest, run: self._land(digest, run, state,
                                               by_digest))

        try:
            while queue or inflight:
                self._check_interrupt(pool)
                window = min(self.window, max_workers)
                try:
                    while queue and len(inflight) < window:
                        digest = queue.popleft()
                        future = pool.submit(self.engine._execute_fn,
                                             todo[digest])
                        inflight[future] = digest
                        deadlines[future] = (
                            time.monotonic() + timeout
                            if timeout is not None else None)
                except BrokenProcessPool as exc:
                    to_suspects([digest] + drain_survivors(), exc)
                    pool = self._rebuild_pool(pool, max_workers)
                    continue
                if not inflight:
                    continue
                wait_for = _POLL_INTERVAL
                if timeout is not None:
                    now = time.monotonic()
                    wait_for = min(wait_for,
                                   max(0.0, min(deadlines[f]
                                                for f in inflight) - now))
                done, _ = wait(set(inflight), timeout=wait_for,
                               return_when=FIRST_COMPLETED)
                broken: Optional[BaseException] = None
                for future in sorted(done,
                                     key=lambda f: f.exception() is not None):
                    digest = inflight.pop(future)
                    deadlines.pop(future, None)
                    exc = future.exception()
                    if exc is None:
                        self._land(digest, future.result(), state, by_digest)
                    elif isinstance(exc, BrokenProcessPool):
                        broken = exc
                        to_suspects([digest] + drain_survivors(), exc)
                        break
                    else:
                        self._ordinary_failure(digest, exc, state, by_digest,
                                               requeue=queue)
                if broken is not None:
                    pool = self._rebuild_pool(pool, max_workers)
                    continue
                if timeout is not None and inflight:
                    pool = self._enforce_deadlines(
                        pool, max_workers, queue, inflight, deadlines,
                        state, by_digest)
        finally:
            kill_workers(pool)
        return suspects

    def _enforce_deadlines(self, pool, max_workers, queue, inflight,
                           deadlines, state, by_digest):
        """Expire over-deadline futures; kill the pool if one is stuck."""
        now = time.monotonic()
        expired = [f for f in list(inflight)
                   if deadlines[f] is not None and now >= deadlines[f]]
        stuck = False
        for future in expired:
            if future.done():
                continue  # finished in the race; collected next wait()
            cause = FuturesTimeout(
                f"exceeded {self.engine.timeout}s budget")
            if future.cancel():
                digest = inflight.pop(future)
                deadlines.pop(future, None)
                self._ordinary_failure(digest, cause, state, by_digest,
                                       requeue=queue)
            elif future.done():
                # completed between the done() check and cancel();
                # leave it in flight for the next wait() to collect
                continue
            else:
                digest = inflight.pop(future)
                deadlines.pop(future, None)
                stuck = True
                self._ordinary_failure(digest, cause, state, by_digest,
                                       requeue=queue)
        if stuck:
            # a hung worker poisons the whole pool: kill it, requeue the
            # innocent in-flight specs (no attempt charged), and rebuild
            self.timeout_kills += 1
            innocents = list(inflight.values())
            inflight.clear()
            deadlines.clear()
            kill_workers(pool)
            queue.extendleft(innocents)
            self.rebuilds += 1
            pool = new_pool(max_workers)
        return pool

    # ------------------------------------------------------------------ #
    # suspect phase: one spec at a time, blame is unambiguous
    # ------------------------------------------------------------------ #
    def _suspect_phase(self, todo: Dict[str, RunSpec],
                       state: Dict[str, _SpecState], suspects: List[str],
                       by_digest: Dict[str, RunOutcome]) -> None:
        for digest in suspects:
            if digest in by_digest:
                continue
            spec, st = todo[digest], state[digest]
            while digest not in by_digest:
                self._check_interrupt(None)
                pool = new_pool(1)
                future = pool.submit(self.engine._execute_fn, spec)
                try:
                    run = self._solo_result(future, pool)
                except BrokenProcessPool as exc:
                    st.kills += 1
                    st.last_error = exc
                    self.pool_deaths += 1
                    self._consecutive_deaths += 1
                    self._clean_streak = 0
                    log.warning("[campaign] %s killed its isolated worker "
                                "(%d/%d)", digest[:12], st.kills,
                                self.quarantine_threshold)
                    if st.kills >= self.quarantine_threshold:
                        self._quarantine(digest, st, by_digest)
                    else:
                        self._backoff()
                except FuturesTimeout as exc:
                    self.timeout_kills += 1
                    self._ordinary_failure(digest, exc, state, by_digest)
                except CampaignInterrupted:
                    # a signal must stop the campaign, not be misfiled as
                    # this spec's failure (it is a RuntimeError, so the
                    # generic handler below would otherwise swallow it)
                    raise
                except Exception as exc:
                    self._ordinary_failure(digest, exc, state, by_digest)
                else:
                    self._land(digest, run, state, by_digest)
                finally:
                    kill_workers(pool)

    def _solo_result(self, future, pool):
        """Wait for an isolated run, honouring signals and the timeout."""
        deadline = (time.monotonic() + self.engine.timeout
                    if self.engine.timeout is not None else None)
        while True:
            self._check_interrupt(pool)
            try:
                return future.result(timeout=_POLL_INTERVAL)
            except FuturesTimeout:
                if deadline is not None and time.monotonic() >= deadline:
                    raise FuturesTimeout(
                        f"exceeded {self.engine.timeout}s budget") from None

    # ------------------------------------------------------------------ #
    # shared bookkeeping
    # ------------------------------------------------------------------ #
    def _land(self, digest: str, run: BenchmarkRun,
              state: Dict[str, _SpecState],
              by_digest: Dict[str, RunOutcome]) -> None:
        """A result arrived: commit, checkpoint, heal the window."""
        self.engine._commit(digest, run)
        self._land_bookkeeping(digest, run, state, by_digest)

    def _land_bookkeeping(self, digest: str, run: BenchmarkRun,
                          state: Dict[str, _SpecState],
                          by_digest: Dict[str, RunOutcome]) -> None:
        """Outcome, manifest and window bookkeeping for a landed result
        (the commit itself already happened)."""
        st = state[digest]
        by_digest[digest] = RunOutcome(st.spec, digest, OK, run=run,
                                       attempts=st.attempts + 1,
                                       kills=st.kills)
        self._consecutive_deaths = 0
        self._clean_streak += 1
        ceiling = max(1, self.engine.jobs)
        if self._clean_streak >= self.heal_after and self.window < ceiling:
            self.window = min(ceiling, self.window * 2)
            self._clean_streak = 0
            log.info("[campaign] sustained health: admission window "
                     "restored to %d", self.window)
        if self.manifest is not None:
            self.manifest.mark_done(digest)
            self._flush_manifest()
        if self.on_checkpoint is not None:
            self.on_checkpoint(self)

    def _ordinary_failure(self, digest: str, exc: BaseException,
                          state: Dict[str, _SpecState],
                          by_digest: Dict[str, RunOutcome],
                          requeue: Optional[deque] = None) -> None:
        """Charge one attempt; requeue while budget remains, else settle."""
        st = state[digest]
        st.attempts += 1
        st.last_error = exc
        if st.attempts <= self.engine.retries:
            self.engine.stats.retries += 1
            log.warning("[retries] resubmitting %s (%s) attempt %d/%d with "
                        "a fresh %ss budget after %r", digest[:12],
                        st.spec.describe(), st.attempts + 1,
                        self.engine.retries + 1, self.engine.timeout, exc)
            if requeue is not None:
                requeue.append(digest)
            return
        self.engine.stats.failures += 1
        status = classify_failure(exc)
        if self.fail_policy == "abort":
            self._flush_manifest()
            raise RunFailure(st.spec, exc) from exc
        by_digest[digest] = RunOutcome(st.spec, digest, status,
                                       error=repr(exc), attempts=st.attempts,
                                       kills=st.kills)
        log.warning("[campaign] %s", by_digest[digest].describe())
        if self.manifest is not None:
            self.manifest.mark_failed(digest, status, repr(exc), st.attempts,
                                      st.spec.to_dict())
            self._flush_manifest()

    def _quarantine(self, digest: str, st: _SpecState,
                    by_digest: Dict[str, RunOutcome]) -> None:
        self.engine.stats.failures += 1
        if self.fail_policy == "abort":
            self._flush_manifest()
            raise RunFailure(st.spec, st.last_error)
        by_digest[digest] = RunOutcome(st.spec, digest, QUARANTINED,
                                       error=repr(st.last_error),
                                       attempts=st.attempts, kills=st.kills)
        log.error("[quarantine] %s parked after %d worker kills: %r",
                  digest[:12], st.kills, st.last_error)
        if self.manifest is not None:
            self.manifest.mark_quarantined(digest, st.kills,
                                           repr(st.last_error),
                                           st.spec.to_dict())
            self._flush_manifest()
        self._append_quarantine_file(digest, st)

    def _append_quarantine_file(self, digest: str, st: _SpecState) -> None:
        if self.quarantine_path is None:
            return
        path = Path(self.quarantine_path)
        entries: List[Dict] = []
        if path.exists():
            try:
                with open(path) as fh:
                    entries = json.load(fh)
            except (OSError, ValueError):
                entries = []
        entries = [e for e in entries if e.get("digest") != digest]
        entries.append({"digest": digest, "spec": st.spec.to_dict(),
                        "kills": st.kills,
                        "last_failure": repr(st.last_error)})
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entries, fh, indent=1)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------ #
    # pool health: backoff, shedding, rebuild
    # ------------------------------------------------------------------ #
    def _rebuild_pool(self, dead_pool, max_workers: int):
        """Backoff (exponential + jitter), shed concurrency, fresh pool."""
        kill_workers(dead_pool)
        self.pool_deaths += 1
        self._consecutive_deaths += 1
        self._clean_streak = 0
        if self._consecutive_deaths >= self.halve_after and self.window > 1:
            self.window = max(1, self.window // 2)
            self.min_window = min(self.min_window, self.window)
            log.warning("[campaign] %d consecutive pool deaths: admission "
                        "window halved to %d", self._consecutive_deaths,
                        self.window)
        self._backoff()
        self.rebuilds += 1
        return new_pool(max_workers)

    def _backoff(self) -> None:
        exponent = min(max(0, self._consecutive_deaths - 1), 16)
        delay = min(self.backoff_cap, self.backoff_base * (2 ** exponent))
        delay *= 1.0 + self.backoff_jitter * self._rng.random()
        self.backoff_log.append(delay)
        self.sleep_fn(delay)

    # ------------------------------------------------------------------ #
    # checkpointing and signals
    # ------------------------------------------------------------------ #
    def _flush_manifest(self) -> None:
        if self.manifest is None:
            return
        cache = self.engine.cache
        self.manifest.data["campaign"] = {
            "jobs": self.engine.jobs,
            "backend": self.engine.backend_name,
            "fail_policy": self.fail_policy,
            "timeout": self.engine.timeout,
            "retries": self.engine.retries,
            "quarantine_threshold": self.quarantine_threshold,
            "cache_dir": str(cache.root) if cache is not None else None,
        }
        self.manifest.data["stats"] = {
            **asdict(self.engine.stats),
            "pool_deaths": self.pool_deaths,
            "timeout_kills": self.timeout_kills,
            "rebuilds": self.rebuilds,
            "window": self.window,
            "min_window": self.min_window,
            "backoffs": len(self.backoff_log),
        }
        backend = self.engine.backend
        if backend is not None and hasattr(backend, "health_snapshot"):
            # remote campaigns checkpoint per-worker breaker state too,
            # so a resumed run knows which workers were misbehaving
            self.manifest.data["stats"]["workers"] = backend.health_snapshot()
        self.manifest.flush()

    def _on_signal(self, signum, frame) -> None:
        self._interrupt = signum

    def _check_interrupt(self, pool) -> None:
        """Raise :class:`CampaignInterrupted` after a checkpoint flush."""
        if self._interrupt is None:
            return
        signum, self._interrupt = self._interrupt, None
        self._flush_manifest()
        if pool is not None:
            kill_workers(pool)
        raise CampaignInterrupted(
            signum, str(self.manifest.path) if self.manifest else None)

    def _install_handlers(self) -> None:
        self._old_handlers = {}
        if not self.install_signal_handlers:
            return
        if threading.current_thread() is not threading.main_thread():
            return
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                self._old_handlers[signum] = signal.signal(signum,
                                                           self._on_signal)
            except (ValueError, OSError):  # pragma: no cover
                pass

    def _restore_handlers(self) -> None:
        for signum, handler in self._old_handlers.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
        self._old_handlers = {}
