"""Per-spec campaign outcomes and the failure taxonomy.

Under ``fail_policy="collect"`` the campaign supervisor
(:mod:`repro.runner.supervisor`) never lets one bad spec abort a sweep:
every submitted spec resolves to a :class:`RunOutcome` whose ``status``
names what happened.  The taxonomy:

========== ==========================================================
status     meaning
========== ==========================================================
ok         the run completed (``outcome.run`` holds the result)
timeout    the run exceeded its wall-clock budget on every attempt
crash      the worker process died (segfault / OOM / ``os._exit``)
deadlock   the simulator raised :class:`~repro.sim.kernel.SimDeadlockError`
sanitizer  the runtime invariant sanitizer flagged a violation
error      any other in-run Python exception
quarantined the spec killed its worker ``quarantine_threshold`` times
           and was parked (never resubmitted this campaign)
========== ==========================================================

:func:`classify_failure` maps an exception to its taxonomy bucket.  It
matches on class *names* as well as types because exceptions that cross
a ``ProcessPoolExecutor`` boundary are re-pickled and occasionally
degrade to base classes.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, field
from typing import List, Optional

from repro.runner.spec import RunSpec

__all__ = [
    "OK", "TIMEOUT", "CRASH", "DEADLOCK", "SANITIZER", "ERROR",
    "QUARANTINED", "FAILURE_STATUSES", "RunOutcome", "classify_failure",
    "summarize_outcomes",
]

OK = "ok"
TIMEOUT = "timeout"
CRASH = "crash"
DEADLOCK = "deadlock"
SANITIZER = "sanitizer"
ERROR = "error"
QUARANTINED = "quarantined"

#: every non-ok status a collect-mode campaign can report
FAILURE_STATUSES = (TIMEOUT, CRASH, DEADLOCK, SANITIZER, ERROR, QUARANTINED)


def classify_failure(exc: BaseException) -> str:
    """Map an execution failure to its taxonomy bucket (never ``ok``)."""
    if isinstance(exc, (FuturesTimeout, TimeoutError)):
        return TIMEOUT
    if isinstance(exc, BrokenExecutor):
        return CRASH
    names = {cls.__name__ for cls in type(exc).__mro__}
    if "SimDeadlockError" in names:
        return DEADLOCK
    if "InvariantViolation" in names:
        return SANITIZER
    if "BrokenProcessPool" in names or "BrokenExecutor" in names:
        return CRASH
    return ERROR


@dataclass
class RunOutcome:
    """What happened to one spec during a supervised campaign."""

    spec: RunSpec
    digest: str
    status: str
    #: the result, present iff ``status == "ok"``
    run: Optional[object] = None
    #: ``repr()`` of the last failure (None when ok)
    error: Optional[str] = None
    #: execution attempts consumed (cache hits report 0)
    attempts: int = 0
    #: unambiguous worker kills attributed to this spec
    kills: int = 0

    @property
    def ok(self) -> bool:
        return self.status == OK

    def describe(self) -> str:
        """One grep-friendly line (the CLI's per-spec failure summary)."""
        line = (f"{self.status.upper():<11} {self.digest[:12]} "
                f"{self.spec.describe()}")
        if self.error:
            line += f": {self.error}"
        return line


def summarize_outcomes(outcomes: List[RunOutcome]) -> dict:
    """Status -> count over ``outcomes`` (always includes ``ok``)."""
    counts = {OK: 0}
    for outcome in outcomes:
        counts[outcome.status] = counts.get(outcome.status, 0) + 1
    return counts
