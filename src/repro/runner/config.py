"""Declarative campaign configs: YAML matrices -> frozen RunSpec batches.

A campaign file names a benchmark × machine × lock × fault-plan matrix
and expands deterministically into :class:`~repro.runner.spec.RunSpec`
values, so a sweep is *data* — reviewable in a PR, hashable for the
result cache, and submittable to the campaign daemon unchanged::

    campaign: smoke
    description: two benchmarks x two locks at 8 cores
    defaults:
      scale: 0.05
      cores: 8
    matrix:
      - benchmarks: [sctr, mctr]
        locks: [mcs, glock]
      - benchmarks: [raytr]
        locks: [glock]
        seeds: [1, 2]
    engine:
      jobs: 2
      timeout: 120

Each ``matrix`` block is a cross-product over its sweep axes
(``benchmarks``, ``locks``, ``cores``, ``scales``, ``seeds``,
``fault_plans``); scalar spellings (``core``/``scale``/``seed``/
``fault_plan``) are accepted for single values.  ``defaults`` supplies
block-level values that individual blocks may override.  Expansion
order is deterministic (blocks in file order, axes in the order listed
above), so the i-th spec of a campaign is stable across hosts — the
streaming publisher relies on this.

Validation is strict and single-line-friendly: unknown keys, unknown
benchmark/lock names, malformed axes and duplicate expanded specs all
raise :class:`ConfigError` with the file/block that caused them, which
the CLI reports on one line and exits 2.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.faults.plan import FaultPlan
from repro.locks.registry import validate_lock_kind
from repro.runner.spec import MachineSpec, RunSpec
from repro.sim.config import CMPConfig
from repro.workloads.registry import PARAMETRIC_WORKLOADS, WORKLOADS

__all__ = ["Campaign", "ConfigError", "expand_campaign", "known_benchmarks",
           "load_campaign", "parse_campaign"]


class ConfigError(ValueError):
    """A campaign config is invalid; the message is one actionable line."""


def known_benchmarks() -> Tuple[str, ...]:
    """Every benchmark name a campaign may reference.

    The scale-driven Table III workloads plus the parametric
    (``workload_params``-configured) synthetic workloads.
    """
    return tuple(WORKLOADS) + tuple(sorted(PARAMETRIC_WORKLOADS))


#: keys allowed at the top level of a campaign document
_TOP_KEYS = ("campaign", "description", "defaults", "matrix", "engine")
#: keys allowed in a matrix block (and in ``defaults``)
_BLOCK_KEYS = (
    "benchmarks", "benchmark", "locks", "lock", "other_lock",
    "cores", "core", "scales", "scale", "seeds", "seed",
    "fault_plans", "fault_plan", "machine", "workload_params",
    "max_events", "max_cycles", "sanitize",
)
#: keys allowed in a block's ``machine`` mapping
_MACHINE_KEYS = ("glock_levels", "allow_glock_sharing", "glock_arbitration")
#: keys allowed in the ``engine`` mapping
_ENGINE_KEYS = ("jobs", "timeout", "retries", "backend", "cache_dir",
                "workers")


@dataclass
class Campaign:
    """A parsed campaign: a name, its expanded specs, engine defaults."""

    name: str
    specs: List[RunSpec]
    description: str = ""
    #: engine construction defaults from the file (CLI flags override)
    engine: Dict[str, Any] = field(default_factory=dict)

    def digests(self) -> List[str]:
        """Spec digests in expansion order (``campaign expand`` output)."""
        return [spec.digest() for spec in self.specs]


# ---------------------------------------------------------------------- #
# helpers
# ---------------------------------------------------------------------- #
def _suggest(key: str, valid: Sequence[str],
             noun: str = "key") -> str:
    close = difflib.get_close_matches(key, valid, n=1)
    hint = f"; did you mean {close[0]!r}?" if close else ""
    return f"unknown {noun} {key!r}{hint} (allowed: {', '.join(valid)})"


def _check_keys(mapping: Dict, valid: Sequence[str], where: str) -> None:
    if not isinstance(mapping, dict):
        raise ConfigError(f"{where}: expected a mapping, got "
                          f"{type(mapping).__name__}")
    for key in mapping:
        if key not in valid:
            raise ConfigError(f"{where}: {_suggest(str(key), valid)}")


def _axis(block: Dict, defaults: Dict, plural: str, singular: str,
          fallback: List, where: str) -> List:
    """One sweep axis: plural (list) or singular (scalar), block over
    defaults over ``fallback``; always returns a non-empty list."""
    for source in (block, defaults):
        if plural in source and singular in source:
            raise ConfigError(f"{where}: give {plural!r} or {singular!r}, "
                              f"not both")
        if plural in source:
            values = source[plural]
            if not isinstance(values, (list, tuple)) or not values:
                raise ConfigError(f"{where}: {plural!r} must be a non-empty "
                                  f"list (use {singular!r} for one value)")
            return list(values)
        if singular in source:
            value = source[singular]
            if isinstance(value, (list, tuple)):
                raise ConfigError(f"{where}: {singular!r} takes one value; "
                                  f"use {plural!r} for a list")
            return [value]
    return fallback


def _scalar(block: Dict, defaults: Dict, key: str, fallback):
    if key in block:
        return block[key]
    if key in defaults:
        return defaults[key]
    return fallback


def _fault_plan(raw, where: str) -> Optional[FaultPlan]:
    if raw is None:
        return None
    if not isinstance(raw, dict):
        raise ConfigError(f"{where}: a fault plan must be a mapping of "
                          f"FaultPlan fields or null, got "
                          f"{type(raw).__name__}")
    try:
        return FaultPlan(**raw)
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"{where}: bad fault plan: {exc}") from None


def _machine(raw: Optional[Dict], n_cores: int, plan: Optional[FaultPlan],
             where: str) -> MachineSpec:
    raw = raw or {}
    _check_keys(raw, _MACHINE_KEYS, f"{where}.machine")
    try:
        return MachineSpec(config=CMPConfig.baseline(int(n_cores)),
                           fault_plan=plan, **raw)
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"{where}: bad machine settings: {exc}") from None


# ---------------------------------------------------------------------- #
# parsing and expansion
# ---------------------------------------------------------------------- #
def parse_campaign(doc: Any, source: str = "campaign") -> Campaign:
    """Validate a loaded campaign document and expand its matrix.

    ``doc`` is the already-parsed mapping (from YAML or JSON); ``source``
    names it in error messages (usually the file path).
    """
    if not isinstance(doc, dict):
        raise ConfigError(f"{source}: top level must be a mapping with "
                          f"'campaign' and 'matrix' keys, got "
                          f"{type(doc).__name__}")
    _check_keys(doc, _TOP_KEYS, source)
    name = doc.get("campaign")
    if not name or not isinstance(name, str):
        raise ConfigError(f"{source}: 'campaign' must name the campaign "
                          f"(a non-empty string)")
    matrix = doc.get("matrix")
    if not isinstance(matrix, list) or not matrix:
        raise ConfigError(f"{source}: 'matrix' must be a non-empty list of "
                          f"blocks (each a benchmarks x locks mapping)")
    defaults = doc.get("defaults") or {}
    _check_keys(defaults, _BLOCK_KEYS, f"{source}: defaults")
    engine = doc.get("engine") or {}
    _check_keys(engine, _ENGINE_KEYS, f"{source}: engine")
    if "backend" in engine:
        from repro.runner.backends import BACKEND_NAMES
        if engine["backend"] not in BACKEND_NAMES:
            raise ConfigError(
                f"{source}: engine.backend must be one of "
                f"{', '.join(BACKEND_NAMES)}, got {engine['backend']!r}")

    specs: List[RunSpec] = []
    seen: Dict[str, Tuple[int, RunSpec]] = {}
    for index, block in enumerate(matrix):
        where = f"{source}: matrix[{index}]"
        _check_keys(block, _BLOCK_KEYS, where)
        for spec in _expand_block(block, defaults, where):
            digest = spec.digest()
            if digest in seen:
                first, _ = seen[digest]
                origin = (f"matrix[{first}]" if first != index
                          else f"matrix[{index}] itself")
                raise ConfigError(
                    f"{where}: expands to duplicate spec {digest[:12]} "
                    f"({spec.describe()}) already produced by {origin}; "
                    f"remove the overlapping axis values")
            seen[digest] = (index, spec)
            specs.append(spec)
    return Campaign(name=name, specs=specs,
                    description=str(doc.get("description") or ""),
                    engine=dict(engine))


def _expand_block(block: Dict, defaults: Dict, where: str) -> List[RunSpec]:
    benchmarks = _axis(block, defaults, "benchmarks", "benchmark", [], where)
    if not benchmarks:
        raise ConfigError(f"{where}: 'benchmarks' is required (one of: "
                          f"{', '.join(known_benchmarks())})")
    valid_benchmarks = known_benchmarks()
    for bench in benchmarks:
        if bench not in valid_benchmarks:
            raise ConfigError(
                f"{where}: "
                f"{_suggest(str(bench), valid_benchmarks, 'benchmark')}")
    locks = _axis(block, defaults, "locks", "lock", ["mcs"], where)
    other_lock = _scalar(block, defaults, "other_lock", "tatas")
    for lock in locks + [other_lock]:
        try:
            # accepts every registered kind plus cr:/cr<k>: wrappers,
            # with a did-you-mean hint on typos
            validate_lock_kind(str(lock))
        except ValueError as exc:
            raise ConfigError(f"{where}: {exc}") from None
    cores = _axis(block, defaults, "cores", "core", [32], where)
    scales = _axis(block, defaults, "scales", "scale", [1.0], where)
    seeds = _axis(block, defaults, "seeds", "seed", [0], where)
    plans_raw = _axis(block, defaults, "fault_plans", "fault_plan",
                      [None], where)
    plans = [_fault_plan(raw, where) for raw in plans_raw]

    machine_raw = _scalar(block, defaults, "machine", None)
    params = _scalar(block, defaults, "workload_params", None) or {}
    if not isinstance(params, dict):
        raise ConfigError(f"{where}: 'workload_params' must be a mapping")
    max_events = _scalar(block, defaults, "max_events", 200_000_000)
    max_cycles = _scalar(block, defaults, "max_cycles", None)
    sanitize = bool(_scalar(block, defaults, "sanitize", False))

    specs: List[RunSpec] = []
    for bench in benchmarks:
        parametric = bench in PARAMETRIC_WORKLOADS
        if not parametric and params:
            raise ConfigError(
                f"{where}: benchmark {bench!r} is scale-driven and takes "
                f"no workload_params (only "
                f"{', '.join(sorted(PARAMETRIC_WORKLOADS))} do)")
        for lock in locks:
            for n_cores in cores:
                if not isinstance(n_cores, int) or n_cores < 1:
                    raise ConfigError(f"{where}: cores must be positive "
                                      f"integers, got {n_cores!r}")
                for scale in scales:
                    try:
                        scale = float(scale)
                    except (TypeError, ValueError):
                        raise ConfigError(f"{where}: scales must be numbers, "
                                          f"got {scale!r}") from None
                    for seed in seeds:
                        if not isinstance(seed, int):
                            raise ConfigError(f"{where}: seeds must be "
                                              f"integers, got {seed!r}")
                        for plan in plans:
                            machine = _machine(machine_raw, n_cores, plan,
                                               where)
                            try:
                                specs.append(RunSpec(
                                    workload=bench, scale=scale,
                                    hc_kind=lock, other_kind=other_lock,
                                    machine=machine,
                                    workload_params=params, seed=seed,
                                    max_events=int(max_events),
                                    max_cycles=max_cycles,
                                    sanitize=sanitize))
                            except (TypeError, ValueError) as exc:
                                raise ConfigError(
                                    f"{where}: bad spec for {bench!r}: "
                                    f"{exc}") from None
    return specs


def load_campaign(path: str) -> Campaign:
    """Parse a YAML campaign file into an expanded :class:`Campaign`."""
    try:
        import yaml
    except ImportError:  # pragma: no cover - PyYAML ships in the image
        raise ConfigError(
            "campaign files need PyYAML, which is not installed; submit "
            "the expanded spec list as JSON instead") from None
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = yaml.safe_load(fh)
    except FileNotFoundError:
        raise ConfigError(f"campaign file not found: {path}") from None
    except yaml.YAMLError as exc:
        detail = " ".join(str(exc).split())
        raise ConfigError(f"{path}: not valid YAML: {detail}") from None
    return parse_campaign(doc, source=str(path))


def expand_campaign(text: str, source: str = "<submitted>") -> Campaign:
    """Parse campaign YAML *text* (the daemon's submission path)."""
    try:
        import yaml
    except ImportError:  # pragma: no cover
        raise ConfigError("campaign parsing needs PyYAML, which is not "
                          "installed") from None
    try:
        doc = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        detail = " ".join(str(exc).split())
        raise ConfigError(f"{source}: not valid YAML: {detail}") from None
    return parse_campaign(doc, source=source)
