"""Content-addressed on-disk result cache.

Layout (two-level fan-out to keep directories small)::

    <cache_dir>/
        ab/
            abcdef....pkl        # sha256(RunSpec) -> pickled payload

Each entry holds ``{"format": .., "digest": .., "spec": <spec dict>,
"run": <BenchmarkRun>}`` — the spec dict rides along so entries stay
inspectable without reverse-hashing.  Writes are atomic (temp file +
``os.replace``), so a killed run never leaves a half-written entry.
Corrupted or stale-format entries are deleted on load and reported as a
:class:`CacheCorruption` so the engine can count and transparently
re-execute them.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["CacheStats", "ResultCache", "CacheCorruption", "CACHE_FORMAT"]

#: bump when the pickled payload layout changes
CACHE_FORMAT = 1


class CacheCorruption(Exception):
    """A cache entry existed but could not be loaded (now deleted)."""


@dataclass
class CacheStats:
    """What ``repro-sim cache stats`` reports about one cache root."""

    entries: int = 0
    total_bytes: int = 0
    oldest: Optional[float] = None   # mtimes (epoch seconds)
    newest: Optional[float] = None
    #: leftover ``*.tmp`` files from killed writes (safe to delete)
    stale_tmp: int = 0

    def describe(self, root: Path) -> str:
        lines = [f"cache root : {root}",
                 f"entries    : {self.entries}",
                 f"size       : {self.total_bytes / 1e6:.2f} MB"]
        if self.entries:
            fmt = "%Y-%m-%d %H:%M:%S"
            lines.append(f"oldest     : "
                         f"{time.strftime(fmt, time.localtime(self.oldest))}")
            lines.append(f"newest     : "
                         f"{time.strftime(fmt, time.localtime(self.newest))}")
        if self.stale_tmp:
            lines.append(f"stale tmp  : {self.stale_tmp} "
                         f"(interrupted writes; gc removes them)")
        return "\n".join(lines)


class ResultCache:
    """Spec-digest -> pickled result store under one root directory."""

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)

    def path_for(self, digest: str) -> Path:
        """On-disk location of ``digest``'s entry."""
        return self.root / digest[:2] / f"{digest}.pkl"

    def __contains__(self, digest: str) -> bool:
        return self.path_for(digest).exists()

    def load(self, digest: str) -> Optional[Any]:
        """The cached run for ``digest``.

        Returns ``None`` on a miss; raises :class:`CacheCorruption` (after
        deleting the offending file) when the entry exists but cannot be
        unpickled, fails its integrity checks, or predates the current
        payload format.
        """
        path = self.path_for(digest)
        if not path.exists():
            return None
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            if (payload["format"] != CACHE_FORMAT
                    or payload["digest"] != digest):
                raise ValueError("format or digest mismatch")
            return payload["run"]
        except Exception as exc:
            path.unlink(missing_ok=True)
            raise CacheCorruption(f"dropped unreadable cache entry "
                                  f"{path.name}: {exc}") from exc

    def store(self, digest: str, run: Any,
              spec_dict: Optional[Dict] = None) -> Path:
        """Atomically persist ``run`` under ``digest``."""
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"format": CACHE_FORMAT, "digest": digest,
                   "spec": spec_dict, "run": run}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def missing(self, digests) -> List[str]:
        """The digests with no cache entry, deduplicated, in order.

        Journal recovery and the chaos harness use this to answer "which
        specs never landed" without loading (or trusting) the payloads.
        """
        return [digest for digest in dict.fromkeys(digests)
                if not self.path_for(digest).exists()]

    def digests(self):
        """Iterate the digests currently stored (campaign resume audits)."""
        if not self.root.exists():
            return
        for entry in sorted(self.root.glob("*/*.pkl")):
            yield entry.stem

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        n = 0
        if not self.root.exists():
            return 0
        for entry in self.root.glob("*/*.pkl"):
            entry.unlink(missing_ok=True)
            n += 1
        return n

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    # ------------------------------------------------------------------ #
    # operability (the ``repro-sim cache`` subcommand)
    # ------------------------------------------------------------------ #
    def stats(self) -> CacheStats:
        """Entry count, byte size, age range and stale temp files."""
        stats = CacheStats()
        if not self.root.exists():
            return stats
        for entry in self.root.glob("*/*.pkl"):
            try:
                st = entry.stat()
            except OSError:
                continue  # raced with a concurrent gc/clear
            stats.entries += 1
            stats.total_bytes += st.st_size
            if stats.oldest is None or st.st_mtime < stats.oldest:
                stats.oldest = st.st_mtime
            if stats.newest is None or st.st_mtime > stats.newest:
                stats.newest = st.st_mtime
        stats.stale_tmp = sum(1 for _ in self.root.glob("*/*.tmp"))
        return stats

    def verify(self) -> Tuple[int, List[str]]:
        """Load-check every entry; corrupt ones are deleted and reported.

        Returns ``(ok_count, corrupt_messages)``.  Uses the same
        integrity checks as :meth:`load`, so anything ``verify`` passes
        an engine will accept.
        """
        ok = 0
        corrupt: List[str] = []
        for digest in list(self.digests()):
            try:
                if self.load(digest) is not None:
                    ok += 1
            except CacheCorruption as exc:
                corrupt.append(str(exc))
        return ok, corrupt

    def gc(self, older_than_days: float) -> Tuple[int, int]:
        """Delete entries older than ``older_than_days`` and stale temp
        files; returns ``(entries_removed, tmp_removed)``."""
        if older_than_days < 0:
            raise ValueError("older_than_days must be >= 0")
        removed = 0
        cutoff = time.time() - older_than_days * 86400.0
        if not self.root.exists():
            return 0, 0
        for entry in self.root.glob("*/*.pkl"):
            try:
                if entry.stat().st_mtime < cutoff:
                    entry.unlink(missing_ok=True)
                    removed += 1
            except OSError:
                continue
        tmp_removed = 0
        for leftover in self.root.glob("*/*.tmp"):
            leftover.unlink(missing_ok=True)
            tmp_removed += 1
        for bucket in self.root.glob("*"):
            if bucket.is_dir():
                try:
                    bucket.rmdir()  # only succeeds when empty
                except OSError:
                    pass
        return removed, tmp_removed
