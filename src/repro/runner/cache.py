"""Content-addressed on-disk result cache.

Layout (two-level fan-out to keep directories small)::

    <cache_dir>/
        ab/
            abcdef....pkl        # sha256(RunSpec) -> pickled payload

Each entry holds ``{"format": .., "digest": .., "spec": <spec dict>,
"run": <BenchmarkRun>}`` — the spec dict rides along so entries stay
inspectable without reverse-hashing.  Writes are atomic (temp file +
``os.replace``), so a killed run never leaves a half-written entry.
Corrupted or stale-format entries are deleted on load and reported as a
:class:`CacheCorruption` so the engine can count and transparently
re-execute them.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = ["ResultCache", "CacheCorruption", "CACHE_FORMAT"]

#: bump when the pickled payload layout changes
CACHE_FORMAT = 1


class CacheCorruption(Exception):
    """A cache entry existed but could not be loaded (now deleted)."""


class ResultCache:
    """Spec-digest -> pickled result store under one root directory."""

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)

    def path_for(self, digest: str) -> Path:
        """On-disk location of ``digest``'s entry."""
        return self.root / digest[:2] / f"{digest}.pkl"

    def __contains__(self, digest: str) -> bool:
        return self.path_for(digest).exists()

    def load(self, digest: str) -> Optional[Any]:
        """The cached run for ``digest``.

        Returns ``None`` on a miss; raises :class:`CacheCorruption` (after
        deleting the offending file) when the entry exists but cannot be
        unpickled, fails its integrity checks, or predates the current
        payload format.
        """
        path = self.path_for(digest)
        if not path.exists():
            return None
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            if (payload["format"] != CACHE_FORMAT
                    or payload["digest"] != digest):
                raise ValueError("format or digest mismatch")
            return payload["run"]
        except Exception as exc:
            path.unlink(missing_ok=True)
            raise CacheCorruption(f"dropped unreadable cache entry "
                                  f"{path.name}: {exc}") from exc

    def store(self, digest: str, run: Any,
              spec_dict: Optional[Dict] = None) -> Path:
        """Atomically persist ``run`` under ``digest``."""
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"format": CACHE_FORMAT, "digest": digest,
                   "spec": spec_dict, "run": run}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def digests(self):
        """Iterate the digests currently stored (campaign resume audits)."""
        if not self.root.exists():
            return
        for entry in sorted(self.root.glob("*/*.pkl")):
            yield entry.stem

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        n = 0
        if not self.root.exists():
            return 0
        for entry in self.root.glob("*/*.pkl"):
            entry.unlink(missing_ok=True)
            n += 1
        return n

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))
