"""Declarative experiment engine.

The three pieces (see ``docs/running-experiments.md``):

- :class:`RunSpec` / :class:`MachineSpec` — one benchmark execution as
  frozen, hashable data (``repro.runner.spec``);
- :class:`Engine` — executes spec batches over a process pool with an
  in-process memo and a persistent content-addressed result cache
  (``repro.runner.engine`` / ``repro.runner.cache``);
- the **active engine** — a process-wide engine that the experiment
  harnesses and the ``run_benchmark`` compatibility shim submit to, so
  the CLI can swap in a parallel/caching engine (``--jobs``,
  ``--cache-dir``) without threading it through 13 call sites.

Typical use::

    from repro.runner import Engine, RunSpec, run_specs, use_engine

    specs = [RunSpec.benchmark("sctr", kind, n_cores=32)
             for kind in ("mcs", "glock")]
    with use_engine(Engine(jobs=4, cache_dir="~/.cache/repro-sim")):
        mcs, gl = run_specs(specs)
    print(gl.makespan / mcs.makespan)
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, List, Optional

from repro.faults.plan import FaultPlan
from repro.runner.backends import (BACKEND_NAMES, ExecutionBackend,
                                   InlineBackend, ProcessPoolBackend,
                                   make_backend)
from repro.runner.cache import CacheCorruption, CacheStats, ResultCache
from repro.runner.config import (Campaign, ConfigError, expand_campaign,
                                 load_campaign, parse_campaign)
from repro.runner.engine import (BenchmarkRun, Engine, EngineStats,
                                 RunFailure, execute_spec)
from repro.runner.journal import JobJournal, JournalJob, replay_journal
from repro.runner.outcome import (FAILURE_STATUSES, RunOutcome,
                                  classify_failure, summarize_outcomes)
from repro.runner.publisher import SamplePublisher
from repro.runner.spec import MachineSpec, RunSpec, canonical_json
from repro.runner.supervisor import (CampaignInterrupted, CampaignManifest,
                                     CampaignResult, Supervisor)

__all__ = [
    "BACKEND_NAMES", "BenchmarkRun", "CacheCorruption", "CacheStats",
    "Campaign", "CampaignInterrupted", "CampaignManifest", "CampaignResult",
    "ConfigError", "Engine", "EngineStats", "ExecutionBackend",
    "FAILURE_STATUSES", "FaultPlan", "InlineBackend", "JobJournal",
    "JournalJob", "MachineSpec", "ProcessPoolBackend", "ResultCache",
    "RunFailure", "RunOutcome", "RunSpec", "SamplePublisher", "Supervisor",
    "active_engine", "active_supervisor", "canonical_json",
    "classify_failure", "execute_spec", "expand_campaign", "load_campaign",
    "make_backend", "parse_campaign", "replay_journal", "run_spec",
    "run_specs", "set_active_engine", "set_active_supervisor",
    "summarize_outcomes", "use_engine", "use_supervisor",
]

_active: Optional[Engine] = None
_default: Optional[Engine] = None
_active_supervisor: Optional[Supervisor] = None


def active_engine() -> Engine:
    """The engine harnesses submit to.

    The installed engine if :func:`set_active_engine`/:func:`use_engine`
    is in effect, else a lazily-created process-wide default (serial, no
    disk cache) that reproduces the classic ``run_benchmark`` memo
    semantics.
    """
    global _default
    if _active is not None:
        return _active
    if _default is None:
        _default = Engine()
    return _default


def set_active_engine(engine: Optional[Engine]) -> None:
    """Install ``engine`` process-wide (``None`` restores the default)."""
    global _active
    _active = engine


@contextmanager
def use_engine(engine: Engine):
    """Temporarily install ``engine`` as the active engine."""
    global _active
    previous = _active
    _active = engine
    try:
        yield engine
    finally:
        _active = previous


def active_supervisor() -> Optional[Supervisor]:
    """The installed campaign supervisor, if any (``None`` = engine only)."""
    return _active_supervisor


def set_active_supervisor(supervisor: Optional[Supervisor]) -> None:
    """Install ``supervisor`` process-wide (``None`` removes it)."""
    global _active_supervisor
    _active_supervisor = supervisor


@contextmanager
def use_supervisor(supervisor: Supervisor):
    """Route :func:`run_specs` through a campaign supervisor.

    While in effect, harness batches gain failure isolation and crash
    recovery: under ``fail_policy="collect"`` a failed or quarantined
    spec yields ``None`` in the returned list instead of raising, and
    harnesses render the partial sweep.
    """
    global _active_supervisor
    previous = _active_supervisor
    _active_supervisor = supervisor
    try:
        yield supervisor
    finally:
        _active_supervisor = previous


def run_spec(spec: RunSpec) -> BenchmarkRun:
    """Run one spec on the active engine."""
    return active_engine().run_spec(spec)


def run_specs(specs: Iterable[RunSpec]) -> List[Optional[BenchmarkRun]]:
    """Run a batch (order-preserving) on the active supervisor or engine.

    With a supervisor installed (:func:`use_supervisor`) and
    ``fail_policy="collect"``, entries for failed or quarantined specs
    are ``None``; otherwise every entry is a :class:`BenchmarkRun`.
    """
    if _active_supervisor is not None:
        return _active_supervisor.run_specs(specs)
    return active_engine().run_specs(specs)
