"""Durable write-ahead job journal for the campaign service.

The service daemon appends one JSON line per state transition to a
journal file before acting on it, so a crash (SIGKILL, OOM, power loss)
never loses submitted work:

- ``job_submitted`` — a campaign was accepted; the record carries the
  *full campaign YAML source* so a restarted daemon can re-expand it
  without the original client.
- ``job_started`` — the executor picked the job up.
- ``spec_dispatched`` — the job's pending digests were handed to the
  execution backend (one record listing them; landed cache hits are not
  dispatched).
- ``spec_landed`` / ``spec_failed`` — one record per digest as results
  arrive.
- ``job_done`` — terminal, with the job's final status and counters.

Replay (:func:`replay_journal`) folds the log into per-job state and is
deliberately forgiving: a torn final line (the daemon died mid-write)
is dropped, unknown events are ignored, and a journal that does not
exist yet replays to an empty state.  ``repro-sim serve
--resume-journal`` re-enqueues every job that has no terminal record;
because results are digest-keyed in the shared cache, the re-run
re-executes only the specs that never landed — recovery is idempotent
and duplicates no work.

Each append is flushed and (by default) fsynced: the journal is the
daemon's source of truth, and a record that was acknowledged to a
client must survive the daemon.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, IO, List, Optional, Set

__all__ = ["JOURNAL_VERSION", "JobJournal", "JournalJob", "replay_journal"]

#: bump when the record layout changes incompatibly
JOURNAL_VERSION = 1

#: events with meaning to :func:`replay_journal` (others are ignored)
TERMINAL_EVENTS = ("job_done",)


class JobJournal:
    """Append-only JSONL journal (one file, one writer).

    Args:
        path: journal file; parent directories are created on first
            write.  The file is opened in append mode, so resuming a
            journal keeps its history.
        sync: fsync after every record (default).  Turning this off is
            only safe when losing the tail on a hard crash is
            acceptable (tests).
    """

    def __init__(self, path: os.PathLike, sync: bool = True) -> None:
        self.path = Path(path)
        self.sync = sync
        self._fh: Optional[IO[str]] = None

    # ------------------------------------------------------------------ #
    def record(self, event: str, **fields) -> None:
        """Durably append one record (``{"event": ..., **fields}``)."""
        record = {"event": event, "version": JOURNAL_VERSION}
        record.update(fields)
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())

    # convenience wrappers (keep field names in one place) ------------- #
    def job_submitted(self, job_id: str, name: str, source: str,
                      fmt: str, digests: List[str]) -> None:
        self.record("job_submitted", job=job_id, campaign=name,
                    source=source, format=fmt, digests=digests)

    def job_started(self, job_id: str) -> None:
        self.record("job_started", job=job_id)

    def spec_dispatched(self, job_id: str, digests: List[str]) -> None:
        self.record("spec_dispatched", job=job_id, digests=digests)

    def spec_landed(self, job_id: str, digest: str) -> None:
        self.record("spec_landed", job=job_id, digest=digest)

    def spec_failed(self, job_id: str, digest: str, error: str) -> None:
        self.record("spec_failed", job=job_id, digest=digest, error=error)

    def job_done(self, job_id: str, status: str, executed: int,
                 cache_hits: int, error: Optional[str] = None) -> None:
        self.record("job_done", job=job_id, status=status,
                    executed=executed, cache_hits=cache_hits, error=error)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


@dataclass
class JournalJob:
    """One job's folded state after :func:`replay_journal`."""

    id: str
    campaign: str = ""
    source: str = ""            # the submitted campaign YAML
    fmt: str = "jsonl"
    digests: List[str] = field(default_factory=list)
    started: bool = False
    landed: Set[str] = field(default_factory=set)
    failed: Dict[str, str] = field(default_factory=dict)  # digest -> error
    #: terminal status from job_done (None = unfinished, needs recovery)
    status: Optional[str] = None
    executed: int = 0
    cache_hits: int = 0
    error: Optional[str] = None

    @property
    def finished(self) -> bool:
        return self.status is not None

    @property
    def unlanded(self) -> List[str]:
        """Digests with no ``spec_landed`` record, in submission order."""
        return [d for d in self.digests if d not in self.landed]


def replay_journal(path: os.PathLike) -> Dict[str, JournalJob]:
    """Fold a journal into per-job state (insertion = submission order).

    Tolerates a missing file (empty state), a torn final line (dropped
    — the write it recorded never completed), blank lines, and records
    for jobs whose submission predates the journal's retention (such
    orphan records are ignored rather than fabricating half-known
    jobs).  Raises :class:`ValueError` only for a structurally corrupt
    journal: torn or unparsable lines *before* the final record, where
    dropping data would silently lose acknowledged work.
    """
    path = Path(path)
    jobs: Dict[str, JournalJob] = {}
    if not path.exists():
        return jobs
    with open(path, encoding="utf-8") as fh:
        lines = fh.read().split("\n")
    # a trailing newline yields one empty final element; real torn tails
    # are whatever was mid-write when the daemon died
    records = []
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except ValueError as exc:
            if i >= len(lines) - 2:  # the torn tail; drop it
                break
            raise ValueError(
                f"corrupt journal {path} at line {i + 1}: {exc}") from exc
    for record in records:
        event = record.get("event")
        job_id = record.get("job")
        if not isinstance(job_id, str):
            continue
        if event == "job_submitted":
            jobs[job_id] = JournalJob(
                id=job_id,
                campaign=record.get("campaign", ""),
                source=record.get("source", ""),
                fmt=record.get("format", "jsonl"),
                digests=list(record.get("digests", ())),
            )
            continue
        job = jobs.get(job_id)
        if job is None:
            continue  # orphan record from a rotated-away submission
        if event == "job_started":
            job.started = True
        elif event == "spec_landed":
            digest = record.get("digest")
            if digest:
                job.landed.add(digest)
        elif event == "spec_failed":
            digest = record.get("digest")
            if digest:
                job.failed[digest] = record.get("error", "")
        elif event == "job_done":
            job.status = record.get("status", "done")
            job.executed = record.get("executed", 0)
            job.cache_hits = record.get("cache_hits", 0)
            job.error = record.get("error")
    return jobs
