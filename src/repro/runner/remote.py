"""Remote execution: socket-protocol workers sharing the result cache.

A **worker** (``repro-sim worker --port P --cache-dir D``) is a small
TCP server wrapping :func:`repro.runner.engine.execute_spec`.  It speaks
a length-prefixed pickle frame protocol, checks its digest-keyed
:class:`~repro.runner.cache.ResultCache` before simulating, and stores
fresh results back — so any number of workers pointed at one shared
cache directory (NFS, a shared volume) collectively behave like one
warm cache.

The :class:`RemoteBackend` is the matching
:class:`~repro.runner.backends.ExecutionBackend`: it fans a batch of
specs over a fixed set of worker addresses (one dispatch thread per
worker pulling from a shared queue), lands results through the engine's
usual commit hooks, and applies the same retry budget as the pool
backend.  A worker that drops its connection costs the in-flight spec
one attempt and takes that worker out of rotation; the batch continues
on the survivors and only fails when either a spec exhausts its budget
or no workers remain.

Specs travel as their JSON-safe ``to_dict()`` form (version-checked by
``RunSpec.from_dict``); results travel as pickled
:class:`~repro.runner.engine.BenchmarkRun` payloads, exactly what a
process-pool worker would have returned.  Simulations are deterministic
pure functions of their spec, so remote results are byte-identical to
inline ones.

The protocol is trusted-network plumbing (pickle over TCP, no
authentication) — bind workers to loopback or a private interconnect,
never a public interface.
"""

from __future__ import annotations

import logging
import os
import pickle
import socket
import socketserver
import struct
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.runner.backends import ExecutionBackend
from repro.runner.cache import CacheCorruption, ResultCache
from repro.runner.spec import RunSpec

__all__ = ["PROTOCOL_VERSION", "RemoteBackend", "RemoteRunError",
           "WorkerClient", "WorkerServer", "parse_address"]

log = logging.getLogger("repro.runner")

#: bump when the frame or request/response layout changes
PROTOCOL_VERSION = 1

_HEADER = struct.Struct(">I")
#: refuse frames beyond this size (corrupt header / wrong peer)
_MAX_FRAME = 256 * 1024 * 1024


class RemoteRunError(RuntimeError):
    """A spec failed *inside* a worker (the worker itself is healthy).

    ``kind`` carries the worker-side classification from
    :func:`repro.runner.outcome.classify_failure` so campaign outcome
    taxonomy survives the wire even though the original exception
    object does not.
    """

    def __init__(self, kind: str, error: str) -> None:
        super().__init__(f"remote {kind}: {error}")
        self.kind = kind
        self.error = error


def parse_address(address: str) -> Tuple[str, int]:
    """``"host:port"`` (or ``":port"`` / bare port) -> ``(host, port)``."""
    text = address.strip()
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = "", text
    host = host or "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"bad worker address {address!r}; "
                         f"expected host:port") from None
    if not 0 < port < 65536:
        raise ValueError(f"bad worker port in {address!r}")
    return host, port


# ---------------------------------------------------------------------- #
# frame protocol
# ---------------------------------------------------------------------- #
def send_frame(sock: socket.socket, payload: Dict) -> None:
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(data)) + data)


def recv_frame(sock: socket.socket) -> Optional[Dict]:
    """One frame, or ``None`` on a clean EOF at a frame boundary."""
    header = _recv_exact(sock, _HEADER.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > _MAX_FRAME:
        raise ConnectionError(f"oversized frame ({length} bytes); "
                              f"wrong peer or corrupt stream")
    data = _recv_exact(sock, length, eof_ok=False)
    return pickle.loads(data)


def _recv_exact(sock: socket.socket, n: int, *,
                eof_ok: bool) -> Optional[bytes]:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if eof_ok and remaining == n:
                return None
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ---------------------------------------------------------------------- #
# the worker (server) side
# ---------------------------------------------------------------------- #
class WorkerServer:
    """A ``repro-sim worker``: executes specs shipped over TCP.

    Args:
        host / port: bind address (``port=0`` picks a free port;
            read it back from :attr:`address`).
        cache_dir: digest-keyed result cache shared with other workers
            and coordinators; ``None`` executes every request.
        execute_fn: spec runner, overridable for tests.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 cache_dir: Optional[str] = None,
                 execute_fn: Optional[Callable] = None) -> None:
        from repro.runner.engine import execute_spec
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.execute_fn = execute_fn or execute_spec
        self.stats = {"requests": 0, "executed": 0, "cache_hits": 0,
                      "errors": 0}
        self._stats_lock = threading.Lock()
        worker = self

        class _Handler(socketserver.BaseRequestHandler):
            def handle(self) -> None:  # one connection, many requests
                while True:
                    try:
                        request = recv_frame(self.request)
                    except (ConnectionError, OSError, pickle.PickleError,
                            EOFError):
                        return
                    if request is None:
                        return
                    try:
                        reply, keep_open = worker._serve(request)
                    except Exception as exc:  # never kill the worker
                        reply, keep_open = {"ok": False, "kind": "error",
                                            "error": repr(exc)}, True
                    try:
                        send_frame(self.request, reply)
                    except (ConnectionError, OSError):
                        return  # client vanished; drop the result
                    if not keep_open:
                        threading.Thread(target=self.server.shutdown,
                                         daemon=True).start()
                        return

        class _Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = _Server((host, port), _Handler)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        return self._server.server_address[:2]

    def serve_forever(self) -> None:
        self._server.serve_forever(poll_interval=0.1)

    def shutdown(self) -> None:
        self._server.shutdown()
        self._server.server_close()

    # ------------------------------------------------------------------ #
    def _serve(self, request: Dict) -> Tuple[Dict, bool]:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "role": "repro-sim-worker",
                    "protocol": PROTOCOL_VERSION, "pid": os.getpid()}, True
        if op == "stats":
            with self._stats_lock:
                return {"ok": True, "stats": dict(self.stats)}, True
        if op == "shutdown":
            return {"ok": True}, False
        if op == "run":
            return self._serve_run(request), True
        return {"ok": False, "kind": "error",
                "error": f"unknown op {op!r}"}, True

    def _serve_run(self, request: Dict) -> Dict:
        with self._stats_lock:
            self.stats["requests"] += 1
        try:
            spec = RunSpec.from_dict(request["spec"])
        except Exception as exc:
            with self._stats_lock:
                self.stats["errors"] += 1
            return {"ok": False, "kind": "error",
                    "error": f"undecodable spec: {exc!r}"}
        digest = spec.digest()
        if self.cache is not None:
            try:
                run = self.cache.load(digest)
            except CacheCorruption:
                run = None
            if run is not None:
                with self._stats_lock:
                    self.stats["cache_hits"] += 1
                return {"ok": True, "run": run, "cached": True}
        try:
            run = self.execute_fn(spec)
        except Exception as exc:
            from repro.runner.outcome import classify_failure
            with self._stats_lock:
                self.stats["errors"] += 1
            return {"ok": False, "kind": classify_failure(exc),
                    "error": repr(exc)}
        with self._stats_lock:
            self.stats["executed"] += 1
        if self.cache is not None:
            self.cache.store(digest, run, spec.to_dict())
        return {"ok": True, "run": run, "cached": False}


# ---------------------------------------------------------------------- #
# the coordinator (client) side
# ---------------------------------------------------------------------- #
class WorkerClient:
    """One persistent connection to a worker."""

    def __init__(self, address: str, connect_timeout: float = 10.0) -> None:
        self.address = address
        host, port = parse_address(address)
        self._sock = socket.create_connection((host, port),
                                              timeout=connect_timeout)
        self._sock.settimeout(None)

    def request(self, payload: Dict,
                timeout: Optional[float] = None) -> Dict:
        self._sock.settimeout(timeout)
        try:
            send_frame(self._sock, payload)
            reply = recv_frame(self._sock)
        finally:
            self._sock.settimeout(None)
        if reply is None:
            raise ConnectionError(f"worker {self.address} closed the "
                                  f"connection")
        return reply

    def ping(self) -> Dict:
        return self.request({"op": "ping"}, timeout=10.0)

    def stats(self) -> Dict:
        return self.request({"op": "stats"}, timeout=10.0)["stats"]

    def shutdown(self) -> None:
        try:
            self.request({"op": "shutdown"}, timeout=10.0)
        finally:
            self.close()

    def run_spec(self, spec: RunSpec,
                 timeout: Optional[float] = None) -> object:
        """Execute ``spec`` remotely; raises :class:`RemoteRunError` when
        the spec failed in the worker, ``ConnectionError``/``OSError``
        when the worker itself failed."""
        reply = self.request({"op": "run", "spec": spec.to_dict()},
                             timeout=timeout)
        if not reply.get("ok"):
            raise RemoteRunError(reply.get("kind", "error"),
                                 reply.get("error", "unknown remote error"))
        return reply["run"]

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


class RemoteBackend(ExecutionBackend):
    """Execute specs on ``repro-sim worker`` processes over sockets.

    Args:
        workers: worker addresses (``host:port``).  One dispatch thread
            per address pulls specs from a shared queue, so faster
            workers naturally take more of the batch.
        connect_timeout: seconds to wait for a worker to accept.
    """

    name = "remote"

    def __init__(self, workers: Sequence[str],
                 connect_timeout: float = 10.0) -> None:
        addresses = [w.strip() for w in workers if w and w.strip()]
        if not addresses:
            raise ValueError("remote backend needs at least one worker "
                             "address (host:port)")
        for address in addresses:
            parse_address(address)  # fail fast on typos
        self.addresses = addresses
        self.connect_timeout = connect_timeout

    def describe(self) -> str:
        return f"remote({','.join(self.addresses)})"

    def execute(self, todo, engine, *, land=None, fail=None, tick=None):
        from repro.runner.engine import RunFailure

        out: Dict[str, object] = {}
        commit = land if land is not None else engine._commit
        lock = threading.Lock()
        queue = deque(todo)
        attempts: Dict[str, int] = {digest: 0 for digest in todo}
        resolved: set = set()           # landed or settled-failed digests
        abort: List[BaseException] = []  # first abort-mode failure
        # a run can exceed the budget by one poll tick before the socket
        # timeout trips; generous enough to never race a healthy worker
        io_timeout = (engine.timeout + 1.0
                      if engine.timeout is not None else None)

        def exhausted(digest: str, exc: BaseException) -> None:
            # caller holds `lock`
            engine.stats.failures += 1
            resolved.add(digest)
            if fail is None:
                if not abort:
                    abort.append(RunFailure(todo[digest], exc))
            else:
                fail(digest, exc)

        def charge(digest: str, exc: BaseException) -> None:
            # caller holds `lock`
            attempts[digest] += 1
            if attempts[digest] <= engine.retries:
                engine.stats.retries += 1
                log.warning(
                    "[retries] resubmitting %s (%s) attempt %d/%d after %r",
                    digest[:12], todo[digest].describe(),
                    attempts[digest] + 1, engine.retries + 1, exc)
                queue.append(digest)
            else:
                exhausted(digest, exc)

        def dispatch(address: str) -> None:
            client: Optional[WorkerClient] = None
            try:
                while True:
                    with lock:
                        if abort or not queue:
                            return
                        digest = queue.popleft()
                    if client is None:
                        try:
                            client = WorkerClient(
                                address, connect_timeout=self.connect_timeout)
                        except OSError as exc:
                            # this worker is unreachable: hand the spec
                            # back uncharged and leave the rotation
                            log.warning("[remote] worker %s unreachable: %s",
                                        address, exc)
                            with lock:
                                queue.appendleft(digest)
                            return
                    try:
                        run = client.run_spec(todo[digest],
                                              timeout=io_timeout)
                    except RemoteRunError as exc:
                        with lock:
                            charge(digest, exc)
                    except socket.timeout:
                        # the spec blew its budget; the worker may still
                        # be grinding on it, so abandon this connection
                        cause = TimeoutError(
                            f"exceeded {engine.timeout}s budget on "
                            f"{address}")
                        client.close()
                        client = None
                        with lock:
                            charge(digest, cause)
                    except (ConnectionError, OSError, pickle.PickleError,
                            EOFError) as exc:
                        # the worker died mid-run: one attempt charged
                        # (mirrors a BrokenProcessPool victim), worker
                        # leaves the rotation
                        log.warning("[remote] lost worker %s: %r",
                                    address, exc)
                        client.close()
                        client = None
                        with lock:
                            charge(digest, exc)
                        return
                    else:
                        with lock:
                            commit(digest, run)
                            out[digest] = run
                            resolved.add(digest)
            finally:
                if client is not None:
                    client.close()

        threads = [threading.Thread(target=dispatch, args=(address,),
                                    name=f"remote-{address}", daemon=True)
                   for address in self.addresses]
        for thread in threads:
            thread.start()
        while any(t.is_alive() for t in threads):
            if tick is not None:
                tick()
            for thread in threads:
                thread.join(timeout=0.1)
        if tick is not None:
            tick()
        if abort:
            raise abort[0]
        with lock:
            stranded = [d for d in todo
                        if d not in resolved] + list(queue)
        if stranded:
            # every worker left the rotation with work still owed
            digest = stranded[0]
            cause = ConnectionError(
                f"no live workers left (of {len(self.addresses)}) with "
                f"{len(set(stranded))} specs still owed")
            if fail is None:
                raise RunFailure(todo[digest], cause)
            with lock:
                for d in dict.fromkeys(stranded):
                    exhausted(d, cause)
        return out

    def shutdown_workers(self) -> int:
        """Ask every reachable worker to exit; returns how many acked."""
        acked = 0
        for address in self.addresses:
            try:
                client = WorkerClient(address,
                                      connect_timeout=self.connect_timeout)
                client.shutdown()
                acked += 1
            except OSError:
                pass
        return acked

    def wait_ready(self, deadline: float = 30.0) -> None:
        """Block until every worker answers a ping (startup races)."""
        end = time.monotonic() + deadline
        for address in self.addresses:
            while True:
                try:
                    client = WorkerClient(address, connect_timeout=1.0)
                    client.ping()
                    client.close()
                    break
                except OSError:
                    if time.monotonic() >= end:
                        raise ConnectionError(
                            f"worker {address} not ready after "
                            f"{deadline}s") from None
                    time.sleep(0.1)
