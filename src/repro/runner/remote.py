"""Remote execution: socket-protocol workers sharing the result cache.

A **worker** (``repro-sim worker --port P --cache-dir D``) is a small
TCP server wrapping :func:`repro.runner.engine.execute_spec`.  It speaks
a length-prefixed pickle frame protocol, checks its digest-keyed
:class:`~repro.runner.cache.ResultCache` before simulating, and stores
fresh results back — so any number of workers pointed at one shared
cache directory (NFS, a shared volume) collectively behave like one
warm cache.

The :class:`RemoteBackend` is the matching
:class:`~repro.runner.backends.ExecutionBackend`: it fans a batch of
specs over a fixed set of worker addresses (one dispatch thread per
worker pulling from a shared queue), lands results through the engine's
usual commit hooks, and applies the same retry budget as the pool
backend.

**Leases and heartbeats** make the backend self-healing.  Every
dispatched spec holds a *lease*: the worker must produce a frame — a
periodic ``{"heartbeat": true}`` while it simulates, or the final
result — within ``lease_timeout`` seconds, or the backend reclaims the
spec and re-dispatches it to a healthy worker.  Heartbeats distinguish
*slow-but-alive* (lease keeps extending; only the engine's overall
``timeout`` budget can expire it) from *dead or hung* (silence; lease
breaks).  A worker that breaks leases or drops connections trips a
per-worker **circuit breaker**: it is quarantined for an exponentially
growing backoff, then probed half-open with a cheap no-op (``ping``)
before readmission; ``max_strikes`` consecutive failures retire it for
the rest of the batch.  The batch fails only when a spec exhausts its
retry budget or every worker has been retired.

Specs travel as their JSON-safe ``to_dict()`` form (version-checked by
``RunSpec.from_dict``); results travel as pickled
:class:`~repro.runner.engine.BenchmarkRun` payloads, exactly what a
process-pool worker would have returned.  Simulations are deterministic
pure functions of their spec, so remote results are byte-identical to
inline ones.

The protocol is trusted-network plumbing (pickle over TCP, no
authentication) — bind workers to loopback or a private interconnect,
never a public interface.
"""

from __future__ import annotations

import logging
import os
import pickle
import socket
import socketserver
import struct
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.runner.backends import ExecutionBackend
from repro.runner.cache import CacheCorruption, ResultCache
from repro.runner.spec import RunSpec

__all__ = ["PROTOCOL_VERSION", "LeaseExpired", "RemoteBackend",
           "RemoteRunError", "WorkerClient", "WorkerDied", "WorkerHealth",
           "WorkerServer", "parse_address"]

log = logging.getLogger("repro.runner")

#: bump when the frame or request/response layout changes
PROTOCOL_VERSION = 2

_HEADER = struct.Struct(">I")
#: refuse frames beyond this size (corrupt header / wrong peer)
_MAX_FRAME = 256 * 1024 * 1024

#: how often idle dispatch threads re-check for reclaimed work (seconds)
_POLL = 0.05


class RemoteRunError(RuntimeError):
    """A spec failed *inside* a worker (the worker itself is healthy).

    ``kind`` carries the worker-side classification from
    :func:`repro.runner.outcome.classify_failure` so campaign outcome
    taxonomy survives the wire even though the original exception
    object does not.
    """

    def __init__(self, kind: str, error: str) -> None:
        super().__init__(f"remote {kind}: {error}")
        self.kind = kind
        self.error = error


class WorkerDied(ConnectionError):
    """The worker's connection failed mid-request (process died, was
    killed, or vanished from the network) — distinguishable from a
    worker-side spec failure (:class:`RemoteRunError`) and from a bare
    ``EOFError``/unpickling crash on a truncated result frame."""

    def __init__(self, address: str, detail: str,
                 cause: Optional[BaseException] = None) -> None:
        super().__init__(f"worker {address} died: {detail}")
        self.address = address
        self.detail = detail
        self.cause = cause


class LeaseExpired(WorkerDied):
    """No frame (heartbeat or result) within the lease window: the
    worker is hung or silently dead, and its spec has been reclaimed."""

    def __init__(self, address: str, lease_timeout: float) -> None:
        super().__init__(address, f"no heartbeat within the "
                                  f"{lease_timeout:g}s lease window")
        self.lease_timeout = lease_timeout


def parse_address(address: str) -> Tuple[str, int]:
    """``"host:port"`` (or ``":port"`` / bare port) -> ``(host, port)``."""
    text = address.strip()
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = "", text
    host = host or "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"bad worker address {address!r}; "
                         f"expected host:port") from None
    if not 0 < port < 65536:
        raise ValueError(f"bad worker port in {address!r}")
    return host, port


# ---------------------------------------------------------------------- #
# frame protocol
# ---------------------------------------------------------------------- #
def send_frame(sock: socket.socket, payload: Dict) -> None:
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(data)) + data)


def recv_frame(sock: socket.socket) -> Optional[Dict]:
    """One frame, or ``None`` on a clean EOF at a frame boundary."""
    header = _recv_exact(sock, _HEADER.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > _MAX_FRAME:
        raise ConnectionError(f"oversized frame ({length} bytes); "
                              f"wrong peer or corrupt stream")
    data = _recv_exact(sock, length, eof_ok=False)
    return pickle.loads(data)


def _recv_exact(sock: socket.socket, n: int, *,
                eof_ok: bool) -> Optional[bytes]:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if eof_ok and remaining == n:
                return None
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ---------------------------------------------------------------------- #
# the worker (server) side
# ---------------------------------------------------------------------- #
class WorkerServer:
    """A ``repro-sim worker``: executes specs shipped over TCP.

    While a spec simulates, the worker emits a ``{"heartbeat": true}``
    frame every ``heartbeat_interval`` seconds so the coordinator's
    lease keeps extending for slow-but-alive runs (``0`` disables
    heartbeats — the run executes synchronously and a long spec will
    look identical to a hang).

    Args:
        host / port: bind address (``port=0`` picks a free port;
            read it back from :attr:`address`).
        cache_dir: digest-keyed result cache shared with other workers
            and coordinators; ``None`` executes every request.
        execute_fn: spec runner, overridable for tests.
        heartbeat_interval: seconds between heartbeat frames during a
            run (default 1.0).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 cache_dir: Optional[str] = None,
                 execute_fn: Optional[Callable] = None,
                 heartbeat_interval: float = 1.0) -> None:
        from repro.runner.engine import execute_spec
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.execute_fn = execute_fn or execute_spec
        self.heartbeat_interval = heartbeat_interval
        self.stats = {"requests": 0, "executed": 0, "cache_hits": 0,
                      "errors": 0, "heartbeats": 0}
        self._stats_lock = threading.Lock()
        self._draining = threading.Event()
        self._inflight = 0
        self._idle = threading.Condition()
        worker = self

        class _Handler(socketserver.BaseRequestHandler):
            def handle(self) -> None:  # one connection, many requests
                while True:
                    try:
                        request = recv_frame(self.request)
                    except (ConnectionError, OSError, pickle.PickleError,
                            EOFError):
                        return
                    if request is None:
                        return
                    try:
                        reply, action = worker._handle_request(request,
                                                               self.request)
                    except Exception as exc:  # never kill the worker
                        reply, action = {"ok": False, "kind": "error",
                                         "error": repr(exc)}, "keep"
                    try:
                        send_frame(self.request, reply)
                    except (ConnectionError, OSError):
                        return  # client vanished; the cache kept the result
                    if action == "shutdown":
                        threading.Thread(target=worker.shutdown,
                                         daemon=True).start()
                        return
                    if action == "close" or worker._draining.is_set():
                        return

        class _Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = _Server((host, port), _Handler)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        return self._server.server_address[:2]

    def serve_forever(self) -> None:
        self._server.serve_forever(poll_interval=0.1)

    def shutdown(self) -> None:
        """Stop at once (the classic ``shutdown`` op / test teardown)."""
        self._server.shutdown()
        self._server.server_close()

    # graceful drain (SIGINT/SIGTERM on ``repro-sim worker``) ---------- #
    def begin_drain(self) -> None:
        """Stop admitting work; safe to call from a signal handler.

        New ``run`` requests are refused with ``kind="draining"``, the
        accept loop stops (``serve_forever`` returns), and the spec
        currently simulating is left to finish and commit to the cache
        — :meth:`wait_drained` picks up from there.
        """
        self._draining.set()
        threading.Thread(target=self._server.shutdown, daemon=True).start()

    def wait_drained(self, grace: Optional[float] = None) -> bool:
        """Block until in-flight requests finish, then close the socket.

        Returns ``True`` when the worker drained cleanly within
        ``grace`` seconds (``None`` waits forever).
        """
        with self._idle:
            drained = self._idle.wait_for(lambda: self._inflight == 0,
                                          timeout=grace)
        self._server.server_close()
        return drained

    # ------------------------------------------------------------------ #
    def _handle_request(self, request: Dict,
                        sock: socket.socket) -> Tuple[Dict, str]:
        """One request -> ``(reply, action)`` with action in
        ``keep`` / ``close`` / ``shutdown``."""
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "role": "repro-sim-worker",
                    "protocol": PROTOCOL_VERSION, "pid": os.getpid(),
                    "draining": self._draining.is_set()}, "keep"
        if op == "stats":
            with self._stats_lock:
                return {"ok": True, "stats": dict(self.stats)}, "keep"
        if op == "shutdown":
            return {"ok": True}, "shutdown"
        if op == "run":
            if self._draining.is_set():
                return {"ok": False, "kind": "draining",
                        "error": "worker is draining and admits no new "
                                 "specs"}, "close"
            return self._run_with_heartbeats(request, sock), "keep"
        return {"ok": False, "kind": "error",
                "error": f"unknown op {op!r}"}, "keep"

    def _run_with_heartbeats(self, request: Dict,
                             sock: socket.socket) -> Dict:
        """Execute a run while streaming heartbeats on its connection.

        The run executes on a helper thread; this (handler) thread owns
        the socket and emits one heartbeat frame per interval until the
        result is ready.  If a heartbeat send fails the client is gone
        — the run still finishes so its result lands in the shared
        cache for whoever re-dispatches the spec.
        """
        with self._idle:
            self._inflight += 1
        try:
            if not self.heartbeat_interval or self.heartbeat_interval <= 0:
                return self._serve_run(request)
            box: Dict[str, Dict] = {}

            def work() -> None:
                box["reply"] = self._serve_run(request)

            thread = threading.Thread(target=work, name="worker-run",
                                      daemon=True)
            thread.start()
            beating = True
            while True:
                thread.join(self.heartbeat_interval if beating else None)
                if not thread.is_alive():
                    break
                if beating:
                    try:
                        send_frame(sock, {"heartbeat": True})
                        with self._stats_lock:
                            self.stats["heartbeats"] += 1
                    except (ConnectionError, OSError):
                        beating = False  # client gone; finish for the cache
            return box.get("reply", {"ok": False, "kind": "error",
                                     "error": "worker run thread died"})
        finally:
            with self._idle:
                self._inflight -= 1
                self._idle.notify_all()

    def _serve_run(self, request: Dict) -> Dict:
        with self._stats_lock:
            self.stats["requests"] += 1
        try:
            spec = RunSpec.from_dict(request["spec"])
        except Exception as exc:
            with self._stats_lock:
                self.stats["errors"] += 1
            return {"ok": False, "kind": "error",
                    "error": f"undecodable spec: {exc!r}"}
        digest = spec.digest()
        if self.cache is not None:
            try:
                run = self.cache.load(digest)
            except CacheCorruption:
                run = None
            if run is not None:
                with self._stats_lock:
                    self.stats["cache_hits"] += 1
                return {"ok": True, "run": run, "cached": True}
        try:
            run = self.execute_fn(spec)
        except Exception as exc:
            from repro.runner.outcome import classify_failure
            with self._stats_lock:
                self.stats["errors"] += 1
            return {"ok": False, "kind": classify_failure(exc),
                    "error": repr(exc)}
        with self._stats_lock:
            self.stats["executed"] += 1
        if self.cache is not None:
            self.cache.store(digest, run, spec.to_dict())
        return {"ok": True, "run": run, "cached": False}


# ---------------------------------------------------------------------- #
# the coordinator (client) side
# ---------------------------------------------------------------------- #
class WorkerClient:
    """One persistent connection to a worker.

    Every request carries a socket timeout: ``default_timeout`` for the
    control ops (ping/stats/shutdown), and a per-frame lease window for
    ``run`` (see :meth:`run_spec`) — a worker can hang without ever
    hanging the coordinator.
    """

    def __init__(self, address: str, connect_timeout: float = 10.0,
                 default_timeout: float = 30.0) -> None:
        self.address = address
        self.default_timeout = default_timeout
        host, port = parse_address(address)
        self._sock = socket.create_connection((host, port),
                                              timeout=connect_timeout)
        self._sock.settimeout(None)

    def request(self, payload: Dict,
                timeout: Optional[float] = None) -> Dict:
        """Send one frame, return the first non-heartbeat reply.

        ``timeout`` bounds each frame (defaults to ``default_timeout``);
        a connection failure mid-request raises :class:`WorkerDied`
        rather than a bare ``EOFError``/``ConnectionError``/unpickling
        crash.
        """
        if timeout is None:
            timeout = self.default_timeout
        self._sock.settimeout(timeout)
        try:
            self._send(payload)
            while True:
                reply = self._recv()
                if not (isinstance(reply, dict) and reply.get("heartbeat")):
                    return reply
        finally:
            try:
                self._sock.settimeout(None)
            except OSError:  # pragma: no cover - socket already dead
                pass

    def ping(self, timeout: float = 10.0) -> Dict:
        return self.request({"op": "ping"}, timeout=timeout)

    def stats(self) -> Dict:
        return self.request({"op": "stats"})["stats"]

    def shutdown(self) -> None:
        try:
            self.request({"op": "shutdown"})
        finally:
            self.close()

    def run_spec(self, spec: RunSpec, timeout: Optional[float] = None,
                 lease_timeout: Optional[float] = None,
                 on_heartbeat: Optional[Callable[[], None]] = None) -> object:
        """Execute ``spec`` remotely under a heartbeat-extended lease.

        - ``timeout`` is the *overall* wall-clock budget for the run
          (the engine's per-spec budget); exceeding it raises
          ``TimeoutError`` even while heartbeats keep arriving.
        - ``lease_timeout`` bounds the silence between frames; a worker
          producing neither a heartbeat nor a result within it raises
          :class:`LeaseExpired` (hung or silently dead).
        - a dropped connection (including mid-result-frame) raises
          :class:`WorkerDied`; a spec failure *inside* a healthy worker
          raises :class:`RemoteRunError`.
        """
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        self._sock.settimeout(lease_timeout if lease_timeout is not None
                              else timeout)
        try:
            self._send({"op": "run", "spec": spec.to_dict()})
            while True:
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(
                            f"exceeded {timeout}s budget on {self.address}")
                    if lease_timeout is not None:
                        self._sock.settimeout(min(lease_timeout, remaining))
                    else:
                        self._sock.settimeout(remaining)
                try:
                    reply = self._recv()
                except socket.timeout:
                    if (deadline is not None
                            and time.monotonic() >= deadline):
                        raise TimeoutError(
                            f"exceeded {timeout}s budget on "
                            f"{self.address}") from None
                    raise LeaseExpired(
                        self.address,
                        lease_timeout if lease_timeout is not None
                        else timeout or 0.0) from None
                if isinstance(reply, dict) and reply.get("heartbeat"):
                    if on_heartbeat is not None:
                        on_heartbeat()
                    continue
                break
        finally:
            try:
                self._sock.settimeout(None)
            except OSError:  # pragma: no cover - socket already dead
                pass
        if not reply.get("ok"):
            raise RemoteRunError(reply.get("kind", "error"),
                                 reply.get("error", "unknown remote error"))
        return reply["run"]

    # low-level frame IO with WorkerDied wrapping ---------------------- #
    def _send(self, payload: Dict) -> None:
        try:
            send_frame(self._sock, payload)
        except (ConnectionError, OSError) as exc:
            if isinstance(exc, socket.timeout):
                raise
            raise WorkerDied(self.address, f"send failed: {exc!r}",
                             exc) from exc

    def _recv(self) -> Dict:
        try:
            reply = recv_frame(self._sock)
        except socket.timeout:
            raise
        except (ConnectionError, OSError, EOFError,
                pickle.PickleError) as exc:
            # includes a worker dying mid-result-frame: a truncated
            # stream surfaces as WorkerDied, never an unpickling crash
            raise WorkerDied(self.address, f"receive failed: {exc!r}",
                             exc) from exc
        if reply is None:
            raise WorkerDied(self.address, "closed the connection")
        return reply

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


# ---------------------------------------------------------------------- #
# per-worker health: the circuit breaker state machine
# ---------------------------------------------------------------------- #
#: breaker states
HEALTHY, QUARANTINED, HALF_OPEN, RETIRED = ("healthy", "quarantined",
                                            "half-open", "retired")


@dataclass
class WorkerHealth:
    """One worker's breaker state and telemetry (see ``/status``)."""

    address: str
    state: str = HEALTHY
    consecutive_failures: int = 0
    lease_breaks: int = 0       # leases that expired on this worker
    deaths: int = 0             # connection failures / dead mid-run
    completed: int = 0          # specs this worker landed
    heartbeats: int = 0         # heartbeat frames received
    probes: int = 0             # half-open readmission probes sent
    quarantines: int = 0        # times the breaker tripped
    backoff_until: float = 0.0  # monotonic instant quarantine ends
    current: Optional[str] = None   # digest currently leased, if any

    def snapshot(self) -> Dict[str, object]:
        return {
            "address": self.address,
            "state": self.state,
            "completed": self.completed,
            "lease_breaks": self.lease_breaks,
            "deaths": self.deaths,
            "heartbeats": self.heartbeats,
            "quarantines": self.quarantines,
            "probes": self.probes,
            "consecutive_failures": self.consecutive_failures,
            "current": self.current,
        }


class RemoteBackend(ExecutionBackend):
    """Execute specs on ``repro-sim worker`` processes over sockets.

    Args:
        workers: worker addresses (``host:port``).  One dispatch thread
            per address pulls specs from a shared queue, so faster
            workers naturally take more of the batch.
        connect_timeout: seconds to wait for a worker to accept.
        lease_timeout: max silence (no heartbeat, no result) before a
            dispatched spec's lease breaks and it is reclaimed for
            re-dispatch.  Keep this a few multiples of the workers'
            ``heartbeat_interval``.
        breaker_base / breaker_cap: quarantine backoff after the n-th
            consecutive failure is ``min(cap, base * 2**(n-1))``
            seconds, followed by a half-open ``ping`` probe.
        max_strikes: consecutive failures (lease breaks, deaths,
            unreachable connects, failed probes) after which a worker
            is retired from the batch for good.
    """

    name = "remote"

    def __init__(self, workers: Sequence[str],
                 connect_timeout: float = 10.0,
                 lease_timeout: float = 10.0,
                 breaker_base: float = 0.25,
                 breaker_cap: float = 8.0,
                 max_strikes: int = 4) -> None:
        addresses = [w.strip() for w in workers if w and w.strip()]
        if not addresses:
            raise ValueError("remote backend needs at least one worker "
                             "address (host:port)")
        for address in addresses:
            parse_address(address)  # fail fast on typos
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be > 0")
        if max_strikes < 1:
            raise ValueError("max_strikes must be >= 1")
        self.addresses = addresses
        self.connect_timeout = connect_timeout
        self.lease_timeout = lease_timeout
        self.breaker_base = breaker_base
        self.breaker_cap = breaker_cap
        self.max_strikes = max_strikes
        self.health: Dict[str, WorkerHealth] = {
            address: WorkerHealth(address) for address in addresses}

    def describe(self) -> str:
        return f"remote({','.join(self.addresses)})"

    def health_snapshot(self) -> List[Dict[str, object]]:
        """Per-worker breaker state + telemetry (service ``/status``)."""
        return [self.health[address].snapshot()
                for address in self.addresses]

    # ------------------------------------------------------------------ #
    def execute(self, todo, engine, *, land=None, fail=None, tick=None):
        from repro.runner.engine import RunFailure

        out: Dict[str, object] = {}
        commit = land if land is not None else engine._commit
        lock = threading.Lock()
        queue = deque(todo)
        attempts: Dict[str, int] = {digest: 0 for digest in todo}
        resolved: set = set()           # landed or settled-failed digests
        abort: List[BaseException] = []  # first abort-mode failure
        # the lease, not this overall budget, catches dead workers; the
        # budget only expires genuinely over-long runs
        io_timeout = (engine.timeout + 1.0
                      if engine.timeout is not None else None)

        def finished() -> bool:
            # caller holds `lock`
            return bool(abort) or len(resolved) == len(todo)

        def exhausted(digest: str, exc: BaseException) -> None:
            # caller holds `lock`
            engine.stats.failures += 1
            resolved.add(digest)
            if fail is None:
                if not abort:
                    abort.append(RunFailure(todo[digest], exc))
            else:
                fail(digest, exc)

        def charge(digest: str, exc: BaseException) -> None:
            # caller holds `lock`
            attempts[digest] += 1
            if attempts[digest] <= engine.retries:
                engine.stats.retries += 1
                log.warning(
                    "[retries] resubmitting %s (%s) attempt %d/%d after %r",
                    digest[:12], todo[digest].describe(),
                    attempts[digest] + 1, engine.retries + 1, exc)
                queue.append(digest)
            else:
                exhausted(digest, exc)

        def trip(health: WorkerHealth, why: str) -> None:
            """One strike: quarantine with exponential backoff, or retire."""
            health.consecutive_failures += 1
            health.current = None
            if health.consecutive_failures >= self.max_strikes:
                health.state = RETIRED
                log.warning("[remote] retiring worker %s after %d "
                            "consecutive failures (%s)", health.address,
                            health.consecutive_failures, why)
                return
            health.quarantines += 1
            backoff = min(self.breaker_cap,
                          self.breaker_base
                          * (2 ** (health.consecutive_failures - 1)))
            health.backoff_until = time.monotonic() + backoff
            health.state = QUARANTINED
            log.warning("[remote] quarantining worker %s for %.2gs (%s; "
                        "strike %d/%d)", health.address, backoff, why,
                        health.consecutive_failures, self.max_strikes)

        def probe(health: WorkerHealth) -> bool:
            """Half-open readmission: a cheap no-op must succeed."""
            health.state = HALF_OPEN
            health.probes += 1
            try:
                client = WorkerClient(health.address,
                                      connect_timeout=self.connect_timeout)
                try:
                    client.ping(timeout=min(5.0, self.lease_timeout))
                finally:
                    client.close()
            except (WorkerDied, OSError):
                return False
            health.state = HEALTHY
            return True

        def dispatch(address: str) -> None:
            health = self.health[address]
            client: Optional[WorkerClient] = None

            def drop_client() -> None:
                nonlocal client
                if client is not None:
                    client.close()
                    client = None

            def on_heartbeat() -> None:
                health.heartbeats += 1

            try:
                while True:
                    with lock:
                        if finished() or health.state == RETIRED:
                            return
                    if health.state in (QUARANTINED, HALF_OPEN):
                        if time.monotonic() < health.backoff_until:
                            time.sleep(_POLL)
                            continue
                        if not probe(health):
                            trip(health, "half-open probe failed")
                        continue
                    with lock:
                        if finished():
                            return
                        if not queue:
                            in_flight = len(todo) - len(resolved)
                        else:
                            in_flight = 0
                            digest = queue.popleft()
                            health.current = digest
                    if in_flight:
                        # unresolved specs are leased elsewhere; linger in
                        # case a lease breaks and the spec is reclaimed
                        time.sleep(_POLL)
                        continue
                    if client is None:
                        try:
                            client = WorkerClient(
                                address, connect_timeout=self.connect_timeout)
                        except OSError as exc:
                            # unreachable: hand the spec back uncharged
                            # (the worker never saw it) and strike
                            with lock:
                                queue.appendleft(digest)
                            trip(health, f"unreachable: {exc}")
                            continue
                    try:
                        run = client.run_spec(
                            todo[digest], timeout=io_timeout,
                            lease_timeout=self.lease_timeout,
                            on_heartbeat=on_heartbeat)
                    except RemoteRunError as exc:
                        # the worker answered: it is healthy, the spec is
                        # not
                        health.current = None
                        health.consecutive_failures = 0
                        with lock:
                            charge(digest, exc)
                    except LeaseExpired as exc:
                        health.lease_breaks += 1
                        log.warning("[remote] lease broken by %s on %s: %s",
                                    address, digest[:12], exc)
                        drop_client()
                        with lock:
                            charge(digest, exc)
                        trip(health, "lease expired")
                    except WorkerDied as exc:
                        health.deaths += 1
                        log.warning("[remote] lost worker %s: %s",
                                    address, exc)
                        drop_client()
                        with lock:
                            charge(digest, exc)
                        trip(health, "connection died")
                    except TimeoutError as exc:
                        # the spec blew its overall budget; the worker may
                        # still be grinding on it, so abandon this
                        # connection (no strike: heartbeats kept arriving)
                        health.current = None
                        drop_client()
                        with lock:
                            charge(digest, exc)
                    except (OSError, pickle.PickleError, EOFError) as exc:
                        health.deaths += 1
                        log.warning("[remote] worker %s I/O error: %r",
                                    address, exc)
                        drop_client()
                        with lock:
                            charge(digest, exc)
                        trip(health, f"I/O error: {exc!r}")
                    else:
                        health.current = None
                        health.completed += 1
                        health.consecutive_failures = 0
                        with lock:
                            commit(digest, run)
                            out[digest] = run
                            resolved.add(digest)
            finally:
                drop_client()

        threads = [threading.Thread(target=dispatch, args=(address,),
                                    name=f"remote-{address}", daemon=True)
                   for address in self.addresses]
        for thread in threads:
            thread.start()
        while any(t.is_alive() for t in threads):
            if tick is not None:
                tick()
            for thread in threads:
                thread.join(timeout=0.1)
        if tick is not None:
            tick()
        if abort:
            raise abort[0]
        with lock:
            stranded = [d for d in todo
                        if d not in resolved] + list(queue)
        if stranded:
            # every worker was retired with work still owed
            digest = stranded[0]
            cause = ConnectionError(
                f"no live workers left (of {len(self.addresses)}) with "
                f"{len(set(stranded))} specs still owed")
            if fail is None:
                raise RunFailure(todo[digest], cause)
            with lock:
                for d in dict.fromkeys(stranded):
                    if d not in resolved:
                        exhausted(d, cause)
        return out

    def shutdown_workers(self) -> int:
        """Ask every reachable worker to exit; returns how many acked."""
        acked = 0
        for address in self.addresses:
            try:
                client = WorkerClient(address,
                                      connect_timeout=self.connect_timeout)
                client.shutdown()
                acked += 1
            except OSError:
                pass
        return acked

    def wait_ready(self, deadline: float = 30.0) -> None:
        """Block until every worker answers a ping (startup races)."""
        end = time.monotonic() + deadline
        for address in self.addresses:
            while True:
                try:
                    client = WorkerClient(address, connect_timeout=1.0)
                    client.ping()
                    client.close()
                    break
                except OSError:
                    if time.monotonic() >= end:
                        raise ConnectionError(
                            f"worker {address} not ready after "
                            f"{deadline}s") from None
                    time.sleep(0.1)
