"""Declarative run specifications.

A :class:`RunSpec` describes one benchmark execution as pure, frozen,
hashable data: the workload (registry name or parametric definition), its
inputs, the lock kinds, and a :class:`MachineSpec` carrying the full chip
configuration plus the GLock-network knobs.  Because a spec is *data*, it
can be

- content-hashed (:meth:`RunSpec.digest`) to key the engine's persistent
  result cache,
- pickled across :class:`concurrent.futures.ProcessPoolExecutor` workers,
- round-tripped through JSON (:meth:`RunSpec.to_dict` /
  :meth:`RunSpec.from_dict`) for debugging and cache inspection.

Hash stability rests on :meth:`repro.sim.config.CMPConfig.to_dict` being
deterministic — exercised by the round-trip tests in
``tests/test_sim_config.py``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.faults.plan import FaultPlan
from repro.sim.config import CMPConfig

__all__ = ["MachineSpec", "RunSpec", "canonical_json"]

#: bump when the hashed spec schema or the cached payload format changes;
#: part of the digest, so old on-disk entries simply become misses
SPEC_VERSION = 1


def canonical_json(data: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace drift."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class MachineSpec:
    """Everything needed to build a :class:`~repro.machine.Machine`.

    Wraps the :class:`CMPConfig` together with the ``Machine.__init__``
    keyword arguments (GLock tree depth, sharing, arbitration) that were
    previously unreachable from the experiment plumbing.
    """

    config: CMPConfig = field(default_factory=CMPConfig.baseline)
    glock_levels: int = 2
    allow_glock_sharing: bool = False
    glock_arbitration: str = "round_robin"
    #: fault-injection schedule (repro.faults); None or a non-enabled plan
    #: builds a fault-free machine and is *omitted from serialization*, so
    #: every pre-existing cache digest is unchanged
    fault_plan: Optional[FaultPlan] = None

    @classmethod
    def baseline(cls, n_cores: int = 32, **kwargs) -> "MachineSpec":
        """The paper's Table II chip at ``n_cores`` (extra kwargs pass through)."""
        return cls(config=CMPConfig.baseline(n_cores), **kwargs)

    @property
    def n_cores(self) -> int:
        return self.config.n_cores

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic plain-dict form (stable key order, JSON-safe)."""
        data = {
            "config": self.config.to_dict(),
            "glock_levels": self.glock_levels,
            "allow_glock_sharing": self.allow_glock_sharing,
            "glock_arbitration": self.glock_arbitration,
        }
        if self.fault_plan is not None and self.fault_plan.enabled:
            data["fault_plan"] = self.fault_plan.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MachineSpec":
        """Inverse of :meth:`to_dict`."""
        plan = data.get("fault_plan")
        return cls(
            config=CMPConfig.from_dict(data["config"]),
            glock_levels=data["glock_levels"],
            allow_glock_sharing=data["allow_glock_sharing"],
            glock_arbitration=data["glock_arbitration"],
            fault_plan=FaultPlan.from_dict(plan) if plan is not None else None,
        )


Params = Union[Mapping[str, Any], Sequence[Tuple[str, Any]]]


@dataclass(frozen=True)
class RunSpec:
    """One benchmark execution, fully described by data.

    ``workload`` is either a registry name (``sctr`` .. ``qsort``, built
    with the Table III inputs scaled by ``scale``) or a parametric
    workload (``synth`` / ``hotlocks``) configured by ``workload_params``.
    ``seed`` feeds workloads that draw randomness (e.g. the Raytrace
    proxy); ``0`` keeps each workload's own fixed default, so equal specs
    always replay identically regardless of execution order or process.
    """

    workload: str
    scale: float = 1.0
    hc_kind: str = "mcs"
    other_kind: str = "tatas"
    hc_kinds: Optional[Tuple[str, ...]] = None
    machine: MachineSpec = field(default_factory=MachineSpec)
    workload_params: Tuple[Tuple[str, Any], ...] = ()
    seed: int = 0
    max_events: int = 200_000_000
    #: arm the kernel's deadlock watchdog (None = off, the default);
    #: omitted from serialization when None so existing digests hold
    max_cycles: Optional[int] = None
    #: attach the runtime invariant sanitizer to the machine (chaos runs);
    #: omitted from serialization when False so existing digests hold
    sanitize: bool = False

    def __post_init__(self) -> None:
        # normalize the sequence-ish fields so equal specs hash equally
        if self.hc_kinds is not None and not isinstance(self.hc_kinds, tuple):
            object.__setattr__(self, "hc_kinds", tuple(self.hc_kinds))
        params = self.workload_params
        if isinstance(params, Mapping):
            params = params.items()
        object.__setattr__(self, "workload_params",
                           tuple(sorted((str(k), v) for k, v in params)))

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def benchmark(cls, name: str, hc_kind: str = "mcs", *, n_cores: int = 32,
                  scale: float = 1.0, other_kind: str = "tatas",
                  hc_kinds: Optional[Sequence[str]] = None,
                  **kwargs) -> "RunSpec":
        """Mirror of the classic ``run_benchmark`` signature."""
        return cls(workload=name, scale=scale, hc_kind=hc_kind,
                   other_kind=other_kind,
                   hc_kinds=tuple(hc_kinds) if hc_kinds is not None else None,
                   machine=MachineSpec.baseline(n_cores), **kwargs)

    @property
    def effective_hc_kinds(self) -> Tuple[str, ...]:
        """Per-HC-lock kinds if given, else a marker for 'all ``hc_kind``'."""
        return self.hc_kinds if self.hc_kinds is not None else (self.hc_kind,)

    def with_fault_plan(self, plan: Optional[FaultPlan],
                        **overrides: Any) -> "RunSpec":
        """Copy of this spec whose machine carries ``plan`` (sweep helper).

        Extra keyword overrides (e.g. ``sanitize=True``,
        ``max_cycles=...``) are applied to the returned spec.
        """
        from dataclasses import replace
        return replace(self, machine=replace(self.machine, fault_plan=plan),
                       **overrides)

    # ------------------------------------------------------------------ #
    # serialization / hashing
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Deterministic plain-dict form (stable key order, JSON-safe)."""
        data = {
            "version": SPEC_VERSION,
            "workload": self.workload,
            "scale": self.scale,
            "hc_kind": self.hc_kind,
            "other_kind": self.other_kind,
            "hc_kinds": list(self.hc_kinds) if self.hc_kinds is not None else None,
            "machine": self.machine.to_dict(),
            "workload_params": [[k, v] for k, v in self.workload_params],
            "seed": self.seed,
            "max_events": self.max_events,
        }
        # new optional knobs are serialized only when set, so every spec
        # that predates them keeps its exact digest (cache compatibility)
        if self.max_cycles is not None:
            data["max_cycles"] = self.max_cycles
        if self.sanitize:
            data["sanitize"] = True
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            workload=data["workload"],
            scale=data["scale"],
            hc_kind=data["hc_kind"],
            other_kind=data["other_kind"],
            hc_kinds=(tuple(data["hc_kinds"])
                      if data["hc_kinds"] is not None else None),
            machine=MachineSpec.from_dict(data["machine"]),
            workload_params=tuple((k, v) for k, v in data["workload_params"]),
            seed=data["seed"],
            max_events=data["max_events"],
            max_cycles=data.get("max_cycles"),
            sanitize=data.get("sanitize", False),
        )

    def digest(self) -> str:
        """Content hash: the cache key of this run."""
        return hashlib.sha256(
            canonical_json(self.to_dict()).encode()).hexdigest()

    def describe(self) -> str:
        """Short human-readable label (progress/log lines)."""
        kinds = ("/".join(self.hc_kinds) if self.hc_kinds is not None
                 else self.hc_kind)
        extra = "".join(f" {k}={v}" for k, v in self.workload_params)
        return (f"{self.workload}[{kinds}] cores={self.machine.n_cores} "
                f"scale={self.scale}{extra}")
