"""Canonical fingerprinting of simulation results.

The experiment cache (:mod:`repro.runner.cache`) keys entries by the
*spec* digest; this module provides the complementary *result* digest: a
stable sha256 over everything a :class:`~repro.machine.RunResult`
measured, serialized canonically (sorted keys, no whitespace drift).

Two kernels produce the same fingerprint if and only if they executed
the simulation identically — every counter, every per-core cycle
account, every lock-wait interval in its original recording order.
That property is what lets the determinism suite
(``tests/test_kernel_determinism.py``) pin golden fingerprints recorded
with the pre-optimization kernel and assert the optimized hot path
replays them bit-for-bit.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict

__all__ = ["result_canonical_dict", "result_fingerprint"]


def result_canonical_dict(result) -> Dict[str, Any]:
    """A :class:`~repro.machine.RunResult` as a canonical plain dict.

    Dict-valued fields are emitted with sorted keys so the fingerprint
    tracks *values*, not incidental insertion order; lock-wait intervals
    keep their recording order because that order is itself part of the
    deterministic event schedule being asserted.

    Interval keys are lock uids, which come from a process-global counter
    (``repro.locks.base._uids``) and therefore depend on how many locks
    earlier runs in the same process created.  They are renumbered densely
    by order of first appearance so the fingerprint describes *this* run
    alone and two identical simulations hash identically regardless of
    process history.
    """
    intervals = None
    if result.lock_intervals is not None:
        key_map = {}
        intervals = []
        for iv in result.lock_intervals.intervals:
            key = key_map.setdefault(iv.key, len(key_map))
            intervals.append([iv.start, iv.end, iv.owner, key])
    canonical = {
        "config": result.config.to_dict(),
        "makespan": result.makespan,
        "cycles_by_category": dict(sorted(result.cycles_by_category.items())),
        "per_core_cycles": [dict(sorted(c.items()))
                            for c in result.per_core_cycles],
        "instructions": result.instructions,
        "counters": dict(sorted(result.counters.items())),
        "traffic": dict(sorted(result.traffic.items())),
        "byte_hops": result.byte_hops,
        "lock_intervals": intervals,
    }
    # open-loop serving runs carry per-request records; the key is emitted
    # only when present so every pre-existing golden fingerprint (and any
    # result unpickled from an old cache, which lacks the attribute)
    # hashes exactly as before
    requests = getattr(result, "requests", None)
    if requests is not None:
        canonical["requests"] = [list(record) for record in requests]
    return canonical


def result_fingerprint(result) -> str:
    """sha256 hex digest of :func:`result_canonical_dict`."""
    canonical = json.dumps(result_canonical_dict(result), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()
