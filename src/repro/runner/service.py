"""The campaign service: a long-lived daemon serving sweeps over HTTP.

``repro-sim serve`` starts one :class:`CampaignService`: a stdlib
``http.server`` front end, a bounded FIFO job queue, and a single
executor thread running submitted campaigns **sequentially over one
shared Engine** — so every client's sweep sees the same in-process memo
and digest-keyed disk cache.  Two users submitting overlapping matrices
pay for the overlap once; a re-submitted campaign is served entirely
warm (0 specs executed).

The service is crash-recovering and load-shedding (see the "Fault
tolerance" section of ``docs/campaign-service.md``):

- every submission and per-spec transition is appended to a durable
  write-ahead **journal** (:mod:`repro.runner.journal`) before it is
  acknowledged, so ``repro-sim serve --resume-journal`` after a crash
  re-enqueues unfinished jobs and — results being digest-keyed in the
  cache — re-executes only the specs that never landed;
- the job queue is **bounded** (``max_queue``); a full queue answers
  ``429 Too Many Requests`` with a ``Retry-After`` hint instead of
  accepting load it cannot serve;
- SIGTERM puts the daemon in **drain mode**: admission stops (``503``),
  the in-flight job finishes and flushes its publisher, still-queued
  jobs stay journaled for the next ``--resume-journal``, and the
  process exits 0.

API (JSON in/out unless noted):

- ``POST /campaigns`` — body is campaign YAML (the same file
  ``repro-sim campaign run`` takes).  Returns 202 with the job id and
  the expanded digests; 400 with a one-line error on an invalid config;
  429 + ``Retry-After`` when the queue is full; 503 + ``Retry-After``
  while draining.  ``?format=csv`` selects the published sample format
  (default JSONL).
- ``GET /jobs/<id>`` — job status: queued/running/done/failed, spec
  counts, per-job cache-hit/executed deltas once finished.
- ``GET /jobs/<id>/results`` — the published sample file as it stands
  (streamed records appear as results land; complete once the job is
  done).
- ``GET /status`` — daemon status: queue depth and bound, drain state,
  job table, engine summary line, per-worker health for the remote
  backend.
- ``GET /healthz`` — liveness probe, plain ``ok``.

Everything is stdlib (``http.server``, ``urllib``): no new deps.  Like
the remote worker protocol this is trusted-network plumbing — bind to
loopback or a private interface.
"""

from __future__ import annotations

import json
import logging
import threading
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from queue import Empty, Queue
from typing import Dict, List, Optional
from urllib.parse import parse_qs, urlparse

from repro.runner.config import Campaign, ConfigError, expand_campaign
from repro.runner.engine import Engine, RunFailure
from repro.runner.journal import JobJournal, replay_journal
from repro.runner.publisher import PUBLISH_FORMATS, SamplePublisher

__all__ = ["CampaignService", "Job", "QueueFull", "ServiceDraining",
           "http_get_json", "http_get_text", "http_submit"]

log = logging.getLogger("repro.runner")


class QueueFull(RuntimeError):
    """The bounded job queue is at capacity (HTTP 429)."""


class ServiceDraining(RuntimeError):
    """The service is draining and admits no new jobs (HTTP 503)."""


@dataclass
class Job:
    """One submitted campaign in the service's FIFO queue."""

    id: str
    campaign: Campaign
    fmt: str = "jsonl"
    #: the submitted YAML, journaled so a restart can re-expand the job
    source: str = ""
    status: str = "queued"      # queued | running | done | failed
    error: Optional[str] = None
    #: engine-stat deltas attributed to this job (set when finished)
    executed: int = 0
    cache_hits: int = 0
    results_path: Optional[Path] = None
    #: re-enqueued from the journal by ``--resume-journal``
    recovered: bool = False
    #: digests whose ``spec_landed`` is already journaled (recovery must
    #: not re-log them: one landing record per digest per job, ever)
    already_landed: frozenset = frozenset()
    done_event: threading.Event = field(default_factory=threading.Event)

    def to_dict(self) -> Dict[str, object]:
        data = {
            "job": self.id,
            "campaign": self.campaign.name,
            "status": self.status,
            "specs": len(self.campaign.specs),
            "format": self.fmt,
        }
        if self.recovered:
            data["recovered"] = True
        if self.status in ("done", "failed"):
            data["executed"] = self.executed
            data["cache_hits"] = self.cache_hits
        if self.error is not None:
            data["error"] = self.error
        return data


class CampaignService:
    """FIFO campaign executor with an HTTP submit/status/results API.

    Args:
        engine: the shared :class:`Engine` every job runs on (its memo
            and cache_dir are the service's warm cache).
        results_dir: where published sample files land
            (``<results_dir>/<job-id>.jsonl``).
        host / port: bind address (``port=0`` picks a free port).
        journal_path: durable write-ahead journal location; ``None``
            disables journaling (a crash then loses queued jobs).
        max_queue: bound on *queued* (not yet running) jobs; ``None``
            is unbounded.  A full queue rejects submissions with
            :class:`QueueFull` (HTTP 429 + ``Retry-After``).
        retry_after: the ``Retry-After`` hint, in seconds, sent with
            429/503 responses.
    """

    def __init__(self, engine: Engine, results_dir, host: str = "127.0.0.1",
                 port: int = 0, journal_path=None,
                 max_queue: Optional[int] = None,
                 retry_after: float = 5.0) -> None:
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.engine = engine
        self.results_dir = Path(results_dir)
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self.journal = (JobJournal(journal_path)
                        if journal_path is not None else None)
        self.max_queue = max_queue
        self.retry_after = retry_after
        self.jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._queue: "Queue[Optional[Job]]" = Queue()
        self._queued = 0            # jobs admitted but not yet running
        self._lock = threading.Lock()
        self._job_seq = 0
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._started = False
        self._worker = threading.Thread(target=self._run_jobs,
                                        name="campaign-executor", daemon=True)
        service = self

        class _Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, fmt, *args):  # route through logging
                log.debug("[serve] %s", fmt % args)

            def do_GET(self) -> None:
                service._handle_get(self)

            def do_POST(self) -> None:
                service._handle_post(self)

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self):
        """The bound ``(host, port)``."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def serve_forever(self) -> None:
        """Run until :meth:`shutdown`/:meth:`drain` (blocks the caller)."""
        if self._draining.is_set() or self._stop.is_set():
            return  # a signal landed before the loop started
        self._started = True
        self._worker.start()
        try:
            self._httpd.serve_forever(poll_interval=0.1)
        finally:
            self._stop.set()
            self._queue.put(None)

    def start(self) -> None:
        """Start HTTP + executor threads in the background (tests)."""
        self._started = True
        self._worker.start()
        threading.Thread(target=self._httpd.serve_forever,
                         kwargs={"poll_interval": 0.1}, daemon=True).start()

    def shutdown(self) -> None:
        """Stop immediately (tests); queued jobs stay journaled."""
        self._stop.set()
        self._queue.put(None)
        if self._started:
            # shutdown() on a server whose serve_forever never ran would
            # wait forever for an acknowledgement that cannot come
            self._httpd.shutdown()
        self._httpd.server_close()
        if self.journal is not None:
            self.journal.close()

    def drain(self, grace: Optional[float] = None) -> bool:
        """Graceful shutdown: finish the running job, keep the rest.

        Admission stops at once (submissions get 503).  The executor
        finishes (and publishes) the job it is currently running, then
        exits without starting queued jobs — those remain in the
        journal as unfinished and are recovered by the next
        ``--resume-journal``.  Returns ``True`` when the executor
        drained within ``grace`` seconds (``None`` waits forever).
        """
        self._draining.set()
        self._queue.put(None)       # unblock an idle executor promptly
        if self._worker.is_alive():
            self._worker.join(grace)
        drained = not self._worker.is_alive()
        with self._lock:
            left_behind = [jid for jid in self._order
                           if self.jobs[jid].status == "queued"]
        if left_behind:
            log.warning("[serve] drained with %d queued job(s) left "
                        "journaled for --resume-journal: %s",
                        len(left_behind), ", ".join(left_behind))
        if self._started:
            self._httpd.shutdown()
        self._httpd.server_close()
        if self.journal is not None:
            self.journal.close()
        return drained

    # ------------------------------------------------------------------ #
    # submission, recovery, and the executor thread
    # ------------------------------------------------------------------ #
    def submit(self, campaign: Campaign, fmt: str = "jsonl",
               source: str = "") -> Job:
        """Queue a campaign; returns its :class:`Job` immediately.

        Raises :class:`ServiceDraining` once :meth:`drain` has begun and
        :class:`QueueFull` when ``max_queue`` jobs are already waiting.
        The job is journaled before it is acknowledged, so an accepted
        submission survives a daemon crash.
        """
        if self._draining.is_set():
            raise ServiceDraining("service is draining; resubmit to the "
                                  "restarted daemon")
        with self._lock:
            if self.max_queue is not None and self._queued >= self.max_queue:
                raise QueueFull(f"job queue is full "
                                f"({self._queued}/{self.max_queue} queued)")
            self._job_seq += 1
            job = Job(id=f"job-{self._job_seq:04d}", campaign=campaign,
                      fmt=fmt, source=source)
            self.jobs[job.id] = job
            self._order.append(job.id)
            self._queued += 1
        if self.journal is not None:
            self.journal.job_submitted(job.id, campaign.name, source,
                                       fmt, campaign.digests())
        self._queue.put(job)
        return job

    def resume_journal(self) -> List[Job]:
        """Replay the journal; re-enqueue unfinished jobs (call before
        :meth:`start`/:meth:`serve_forever`).

        Finished jobs are restored to the job table (status, counters
        and results files stay queryable); unfinished jobs are
        re-expanded from their journaled YAML and queued again with
        their original ids.  Recovery is idempotent: landed specs are
        served from the digest-keyed cache, so a recovered job only
        executes the specs that never landed.  Returns the re-enqueued
        jobs.
        """
        if self.journal is None:
            raise ValueError("resume_journal needs a journal_path")
        recovered: List[Job] = []
        replayed = replay_journal(self.journal.path)
        for state in replayed.values():
            seq = _job_seq_of(state.id)
            if seq is not None:
                self._job_seq = max(self._job_seq, seq)
            try:
                campaign = expand_campaign(state.source,
                                           source=f"<journal:{state.id}>")
            except ConfigError as exc:
                log.error("[serve] journaled job %s no longer expands "
                          "(%s); marking failed", state.id, exc)
                campaign = Campaign(name=state.campaign or state.id,
                                    specs=[])
                job = Job(id=state.id, campaign=campaign, fmt=state.fmt,
                          source=state.source, status="failed",
                          error=f"unrecoverable from journal: {exc}",
                          recovered=True)
                job.done_event.set()
                self.jobs[job.id] = job
                self._order.append(job.id)
                self.journal.job_done(job.id, "failed", 0, 0, job.error)
                continue
            job = Job(id=state.id, campaign=campaign, fmt=state.fmt,
                      source=state.source, recovered=True,
                      already_landed=frozenset(state.landed))
            suffix = "csv" if state.fmt == "csv" else "jsonl"
            job.results_path = self.results_dir / f"{state.id}.{suffix}"
            self.jobs[job.id] = job
            self._order.append(job.id)
            if state.finished:
                job.status = state.status
                job.executed = state.executed
                job.cache_hits = state.cache_hits
                job.error = state.error
                job.done_event.set()
                continue
            job.status = "queued"
            with self._lock:
                self._queued += 1
            recovered.append(job)
            self._queue.put(job)
        if recovered:
            log.info("[serve] resumed %d unfinished job(s) from %s: %s",
                     len(recovered), self.journal.path,
                     ", ".join(j.id for j in recovered))
        return recovered

    def _run_jobs(self) -> None:
        while not self._stop.is_set():
            if self._draining.is_set():
                return
            try:
                job = self._queue.get(timeout=0.2)
            except Empty:
                continue
            if job is None:
                if self._draining.is_set() or self._stop.is_set():
                    return
                continue
            if self._draining.is_set():
                return  # leave the job journaled for --resume-journal
            with self._lock:
                self._queued -= 1
            self._run_one(job)

    def _run_one(self, job: Job) -> None:
        job.status = "running"
        suffix = "csv" if job.fmt == "csv" else "jsonl"
        job.results_path = self.results_dir / f"{job.id}.{suffix}"
        publisher = SamplePublisher(job.results_path, fmt=job.fmt, sync=True)
        digests = [spec.digest() for spec in job.campaign.specs]
        publisher.expect(digests)
        journal = self.journal
        if journal is not None:
            journal.job_started(job.id)
            cache = self.engine.cache
            pending = (cache.missing(digests) if cache is not None
                       else list(dict.fromkeys(digests)))
            journal.spec_dispatched(job.id, pending)
        landed: set = set(job.already_landed)

        def observe(digest: str, run) -> None:
            publisher(digest, run)
            if journal is not None and digest not in landed:
                landed.add(digest)
                journal.spec_landed(job.id, digest)

        before_exec = self.engine.stats.executed
        before_hits = (self.engine.stats.memo_hits
                       + self.engine.stats.disk_hits)
        self.engine.observers.append(observe)
        try:
            self.engine.run_specs(job.campaign.specs)
            job.status = "done"
        except RunFailure as exc:
            job.status = "failed"
            job.error = str(exc)
            if journal is not None:
                journal.spec_failed(job.id, exc.spec.digest(),
                                    repr(exc.cause))
            log.warning("[serve] %s failed: %s", job.id, exc)
        except Exception as exc:  # the executor thread must survive
            job.status = "failed"
            job.error = repr(exc)
            log.warning("[serve] %s crashed: %r", job.id, exc)
        finally:
            self.engine.observers.remove(observe)
            publisher.close()
            job.executed = self.engine.stats.executed - before_exec
            job.cache_hits = (self.engine.stats.memo_hits
                              + self.engine.stats.disk_hits - before_hits)
            if journal is not None:
                journal.job_done(job.id, job.status, job.executed,
                                 job.cache_hits, job.error)
            job.done_event.set()

    # ------------------------------------------------------------------ #
    # HTTP handlers
    # ------------------------------------------------------------------ #
    def _handle_post(self, request: BaseHTTPRequestHandler) -> None:
        parsed = urlparse(request.path)
        if parsed.path != "/campaigns":
            _send_json(request, 404, {"error": f"no such endpoint "
                                               f"{parsed.path!r}"})
            return
        fmt = parse_qs(parsed.query).get("format", ["jsonl"])[0]
        if fmt not in PUBLISH_FORMATS:
            _send_json(request, 400, {
                "error": f"unknown format {fmt!r}; choose from "
                         f"{', '.join(PUBLISH_FORMATS)}"})
            return
        length = int(request.headers.get("Content-Length", 0))
        body = request.rfile.read(length).decode("utf-8", "replace")
        try:
            campaign = expand_campaign(body, source="<submitted>")
        except ConfigError as exc:
            _send_json(request, 400, {"error": str(exc)})
            return
        try:
            job = self.submit(campaign, fmt=fmt, source=body)
        except QueueFull as exc:
            _send_json(request, 429, {"error": str(exc),
                                      "retry_after": self.retry_after},
                       retry_after=self.retry_after)
            return
        except ServiceDraining as exc:
            _send_json(request, 503, {"error": str(exc),
                                      "retry_after": self.retry_after},
                       retry_after=self.retry_after)
            return
        _send_json(request, 202, {
            "job": job.id,
            "campaign": campaign.name,
            "specs": len(campaign.specs),
            "digests": campaign.digests(),
            "results": f"/jobs/{job.id}/results",
        })

    def _handle_get(self, request: BaseHTTPRequestHandler) -> None:
        path = urlparse(request.path).path
        if path == "/healthz":
            _send_text(request, 200, "ok\n")
            return
        if path == "/status":
            with self._lock:
                jobs = [self.jobs[jid].to_dict() for jid in self._order]
                queued = self._queued
            status = {
                "queue_depth": queued,
                "max_queue": self.max_queue,
                "draining": self.draining,
                "journal": (str(self.journal.path)
                            if self.journal is not None else None),
                "jobs": jobs,
                "engine": self.engine.summary(),
                "backend": self.engine.backend_name,
            }
            backend = self.engine.backend
            if backend is not None and hasattr(backend, "health_snapshot"):
                status["workers"] = backend.health_snapshot()
            _send_json(request, 200, status)
            return
        parts = [p for p in path.split("/") if p]
        if len(parts) >= 2 and parts[0] == "jobs":
            job = self.jobs.get(parts[1])
            if job is None:
                _send_json(request, 404, {"error": f"no such job "
                                                   f"{parts[1]!r}"})
                return
            if len(parts) == 2:
                _send_json(request, 200, job.to_dict())
                return
            if len(parts) == 3 and parts[2] == "results":
                if job.results_path is None or not job.results_path.exists():
                    _send_json(request, 409, {
                        "error": f"{job.id} has no results yet "
                                 f"(status: {job.status})"})
                    return
                content_type = ("text/csv" if job.fmt == "csv"
                                else "application/x-ndjson")
                _send_text(request, 200, job.results_path.read_text(),
                           content_type=content_type)
                return
        _send_json(request, 404, {"error": f"no such endpoint {path!r}"})


def _job_seq_of(job_id: str) -> Optional[int]:
    """The numeric suffix of a ``job-NNNN`` id (None when absent)."""
    _, _, tail = job_id.rpartition("-")
    try:
        return int(tail)
    except ValueError:
        return None


def _send_json(request: BaseHTTPRequestHandler, code: int, data,
               retry_after: Optional[float] = None) -> None:
    _send_text(request, code, json.dumps(data, sort_keys=True) + "\n",
               content_type="application/json", retry_after=retry_after)


def _send_text(request: BaseHTTPRequestHandler, code: int, text: str,
               content_type: str = "text/plain",
               retry_after: Optional[float] = None) -> None:
    payload = text.encode("utf-8")
    request.send_response(code)
    request.send_header("Content-Type", content_type)
    request.send_header("Content-Length", str(len(payload)))
    if retry_after is not None:
        request.send_header("Retry-After", str(int(max(1, retry_after))))
    request.end_headers()
    request.wfile.write(payload)


# ---------------------------------------------------------------------- #
# tiny stdlib client helpers (tests, CI smoke, scripts)
# ---------------------------------------------------------------------- #
def http_submit(base_url: str, campaign_yaml: str,
                fmt: str = "jsonl", timeout: float = 30.0) -> Dict:
    """POST a campaign; returns the decoded response (raises on non-2xx
    with the server's one-line error in the exception message)."""
    url = f"{base_url}/campaigns"
    if fmt != "jsonl":
        url += f"?format={fmt}"
    req = urllib.request.Request(
        url, data=campaign_yaml.encode("utf-8"),
        headers={"Content-Type": "application/yaml"}, method="POST")
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode("utf-8", "replace").strip()
        try:
            detail = json.loads(detail).get("error", detail)
        except (ValueError, AttributeError):
            pass
        error = RuntimeError(f"submit failed ({exc.code}): {detail}")
        error.code = exc.code
        error.retry_after = exc.headers.get("Retry-After")
        raise error from None


def http_get_json(base_url: str, path: str, timeout: float = 30.0) -> Dict:
    with urllib.request.urlopen(f"{base_url}{path}",
                                timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


def http_get_text(base_url: str, path: str, timeout: float = 30.0) -> str:
    with urllib.request.urlopen(f"{base_url}{path}",
                                timeout=timeout) as resp:
        return resp.read().decode("utf-8")
