"""The campaign service: a long-lived daemon serving sweeps over HTTP.

``repro-sim serve`` starts one :class:`CampaignService`: a stdlib
``http.server`` front end, a FIFO job queue, and a single executor
thread running submitted campaigns **sequentially over one shared
Engine** — so every client's sweep sees the same in-process memo and
digest-keyed disk cache.  Two users submitting overlapping matrices
pay for the overlap once; a re-submitted campaign is served entirely
warm (0 specs executed).

API (JSON in/out unless noted):

- ``POST /campaigns`` — body is campaign YAML (the same file
  ``repro-sim campaign run`` takes).  Returns 202 with the job id and
  the expanded digests; 400 with a one-line error on an invalid config.
  ``?format=csv`` selects the published sample format (default JSONL).
- ``GET /jobs/<id>`` — job status: queued/running/done/failed, spec
  counts, per-job cache-hit/executed deltas once finished.
- ``GET /jobs/<id>/results`` — the published sample file as it stands
  (streamed records appear as results land; complete once the job is
  done).
- ``GET /status`` — daemon status: queue depth, job table, engine
  summary line.
- ``GET /healthz`` — liveness probe, plain ``ok``.

Everything is stdlib (``http.server``, ``urllib``): no new deps.  Like
the remote worker protocol this is trusted-network plumbing — bind to
loopback or a private interface.
"""

from __future__ import annotations

import json
import logging
import threading
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from queue import Empty, Queue
from typing import Dict, List, Optional
from urllib.parse import parse_qs, urlparse

from repro.runner.config import Campaign, ConfigError, expand_campaign
from repro.runner.engine import Engine, RunFailure
from repro.runner.publisher import PUBLISH_FORMATS, SamplePublisher

__all__ = ["CampaignService", "Job", "http_get_json", "http_get_text",
           "http_submit"]

log = logging.getLogger("repro.runner")


@dataclass
class Job:
    """One submitted campaign in the service's FIFO queue."""

    id: str
    campaign: Campaign
    fmt: str = "jsonl"
    status: str = "queued"      # queued | running | done | failed
    error: Optional[str] = None
    #: engine-stat deltas attributed to this job (set when finished)
    executed: int = 0
    cache_hits: int = 0
    results_path: Optional[Path] = None
    done_event: threading.Event = field(default_factory=threading.Event)

    def to_dict(self) -> Dict[str, object]:
        data = {
            "job": self.id,
            "campaign": self.campaign.name,
            "status": self.status,
            "specs": len(self.campaign.specs),
            "format": self.fmt,
        }
        if self.status in ("done", "failed"):
            data["executed"] = self.executed
            data["cache_hits"] = self.cache_hits
        if self.error is not None:
            data["error"] = self.error
        return data


class CampaignService:
    """FIFO campaign executor with an HTTP submit/status/results API.

    Args:
        engine: the shared :class:`Engine` every job runs on (its memo
            and cache_dir are the service's warm cache).
        results_dir: where published sample files land
            (``<results_dir>/<job-id>.jsonl``).
        host / port: bind address (``port=0`` picks a free port).
    """

    def __init__(self, engine: Engine, results_dir, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.engine = engine
        self.results_dir = Path(results_dir)
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self.jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._queue: "Queue[Optional[Job]]" = Queue()
        self._lock = threading.Lock()
        self._job_seq = 0
        self._stop = threading.Event()
        self._worker = threading.Thread(target=self._run_jobs,
                                        name="campaign-executor", daemon=True)
        service = self

        class _Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, fmt, *args):  # route through logging
                log.debug("[serve] %s", fmt % args)

            def do_GET(self) -> None:
                service._handle_get(self)

            def do_POST(self) -> None:
                service._handle_post(self)

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self):
        """The bound ``(host, port)``."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        """Run until :meth:`shutdown` (blocks the calling thread)."""
        self._worker.start()
        try:
            self._httpd.serve_forever(poll_interval=0.1)
        finally:
            self._stop.set()
            self._queue.put(None)

    def start(self) -> None:
        """Start HTTP + executor threads in the background (tests)."""
        self._worker.start()
        threading.Thread(target=self._httpd.serve_forever,
                         kwargs={"poll_interval": 0.1}, daemon=True).start()

    def shutdown(self) -> None:
        self._stop.set()
        self._queue.put(None)
        self._httpd.shutdown()
        self._httpd.server_close()

    # ------------------------------------------------------------------ #
    # the executor thread
    # ------------------------------------------------------------------ #
    def submit(self, campaign: Campaign, fmt: str = "jsonl") -> Job:
        """Queue a campaign; returns its :class:`Job` immediately."""
        with self._lock:
            self._job_seq += 1
            job = Job(id=f"job-{self._job_seq:04d}", campaign=campaign, fmt=fmt)
            self.jobs[job.id] = job
            self._order.append(job.id)
        self._queue.put(job)
        return job

    def _run_jobs(self) -> None:
        while not self._stop.is_set():
            try:
                job = self._queue.get(timeout=0.2)
            except Empty:
                continue
            if job is None:
                return
            self._run_one(job)

    def _run_one(self, job: Job) -> None:
        job.status = "running"
        suffix = "csv" if job.fmt == "csv" else "jsonl"
        job.results_path = self.results_dir / f"{job.id}.{suffix}"
        publisher = SamplePublisher(job.results_path, fmt=job.fmt)
        publisher.expect([spec.digest() for spec in job.campaign.specs])
        before_exec = self.engine.stats.executed
        before_hits = (self.engine.stats.memo_hits
                       + self.engine.stats.disk_hits)
        self.engine.observers.append(publisher)
        try:
            self.engine.run_specs(job.campaign.specs)
            job.status = "done"
        except RunFailure as exc:
            job.status = "failed"
            job.error = str(exc)
            log.warning("[serve] %s failed: %s", job.id, exc)
        except Exception as exc:  # the executor thread must survive
            job.status = "failed"
            job.error = repr(exc)
            log.warning("[serve] %s crashed: %r", job.id, exc)
        finally:
            self.engine.observers.remove(publisher)
            publisher.close()
            job.executed = self.engine.stats.executed - before_exec
            job.cache_hits = (self.engine.stats.memo_hits
                              + self.engine.stats.disk_hits - before_hits)
            job.done_event.set()

    # ------------------------------------------------------------------ #
    # HTTP handlers
    # ------------------------------------------------------------------ #
    def _handle_post(self, request: BaseHTTPRequestHandler) -> None:
        parsed = urlparse(request.path)
        if parsed.path != "/campaigns":
            _send_json(request, 404, {"error": f"no such endpoint "
                                               f"{parsed.path!r}"})
            return
        fmt = parse_qs(parsed.query).get("format", ["jsonl"])[0]
        if fmt not in PUBLISH_FORMATS:
            _send_json(request, 400, {
                "error": f"unknown format {fmt!r}; choose from "
                         f"{', '.join(PUBLISH_FORMATS)}"})
            return
        length = int(request.headers.get("Content-Length", 0))
        body = request.rfile.read(length).decode("utf-8", "replace")
        try:
            campaign = expand_campaign(body, source="<submitted>")
        except ConfigError as exc:
            _send_json(request, 400, {"error": str(exc)})
            return
        job = self.submit(campaign, fmt=fmt)
        _send_json(request, 202, {
            "job": job.id,
            "campaign": campaign.name,
            "specs": len(campaign.specs),
            "digests": campaign.digests(),
            "results": f"/jobs/{job.id}/results",
        })

    def _handle_get(self, request: BaseHTTPRequestHandler) -> None:
        path = urlparse(request.path).path
        if path == "/healthz":
            _send_text(request, 200, "ok\n")
            return
        if path == "/status":
            with self._lock:
                jobs = [self.jobs[jid].to_dict() for jid in self._order]
            _send_json(request, 200, {
                "queue_depth": self._queue.qsize(),
                "jobs": jobs,
                "engine": self.engine.summary(),
                "backend": self.engine.backend_name,
            })
            return
        parts = [p for p in path.split("/") if p]
        if len(parts) >= 2 and parts[0] == "jobs":
            job = self.jobs.get(parts[1])
            if job is None:
                _send_json(request, 404, {"error": f"no such job "
                                                   f"{parts[1]!r}"})
                return
            if len(parts) == 2:
                _send_json(request, 200, job.to_dict())
                return
            if len(parts) == 3 and parts[2] == "results":
                if job.results_path is None or not job.results_path.exists():
                    _send_json(request, 409, {
                        "error": f"{job.id} has no results yet "
                                 f"(status: {job.status})"})
                    return
                content_type = ("text/csv" if job.fmt == "csv"
                                else "application/x-ndjson")
                _send_text(request, 200, job.results_path.read_text(),
                           content_type=content_type)
                return
        _send_json(request, 404, {"error": f"no such endpoint {path!r}"})


def _send_json(request: BaseHTTPRequestHandler, code: int, data) -> None:
    _send_text(request, code, json.dumps(data, sort_keys=True) + "\n",
               content_type="application/json")


def _send_text(request: BaseHTTPRequestHandler, code: int, text: str,
               content_type: str = "text/plain") -> None:
    payload = text.encode("utf-8")
    request.send_response(code)
    request.send_header("Content-Type", content_type)
    request.send_header("Content-Length", str(len(payload)))
    request.end_headers()
    request.wfile.write(payload)


# ---------------------------------------------------------------------- #
# tiny stdlib client helpers (tests, CI smoke, scripts)
# ---------------------------------------------------------------------- #
def http_submit(base_url: str, campaign_yaml: str,
                fmt: str = "jsonl", timeout: float = 30.0) -> Dict:
    """POST a campaign; returns the decoded response (raises on non-2xx
    with the server's one-line error in the exception message)."""
    url = f"{base_url}/campaigns"
    if fmt != "jsonl":
        url += f"?format={fmt}"
    req = urllib.request.Request(
        url, data=campaign_yaml.encode("utf-8"),
        headers={"Content-Type": "application/yaml"}, method="POST")
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode("utf-8", "replace").strip()
        try:
            detail = json.loads(detail).get("error", detail)
        except (ValueError, AttributeError):
            pass
        raise RuntimeError(f"submit failed ({exc.code}): {detail}") from None


def http_get_json(base_url: str, path: str, timeout: float = 30.0) -> Dict:
    with urllib.request.urlopen(f"{base_url}{path}",
                                timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


def http_get_text(base_url: str, path: str, timeout: float = 30.0) -> str:
    with urllib.request.urlopen(f"{base_url}{path}",
                                timeout=timeout) as resp:
        return resp.read().decode("utf-8")
