"""Command-line interface.

::

    repro-sim config [--cores N]             # print the Table II chip
    repro-sim cost [--cores N] [--levels L]  # Table I for that chip
    repro-sim run --workload sctr --lock glock [--cores N] [--scale S]
                  [--sanitize]               # runtime invariant checks
                  [--race-detect]            # lockset/vector-clock races
    repro-sim experiment fig08 [--scale S] [--cores N]
                  [--jobs J] [--cache-dir D] [--no-cache]
    repro-sim shootout [--cores N] [--iters I] [--jobs J] ...
    repro-sim lint [paths...]                # simulator-aware static lint
    repro-sim modelcheck [--cores N] [--arbitration P] [--max-concurrent K]

``experiment`` and ``shootout`` submit their runs to the experiment
engine (:mod:`repro.runner`): ``--jobs`` fans independent simulations out
over a process pool, and results are cached on disk keyed by their spec
hash, so a repeated invocation re-executes nothing (the trailing
``[engine] ...`` summary line reports ``executed=`` / ``disk_hits=``).

(also runnable as ``python -m repro.cli ...``; the lint alone also as
``python -m repro.lint ...``)
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.report import format_table
from repro.energy import account_run, ed2p
from repro.machine import Machine
from repro.runner import Engine, MachineSpec, RunSpec, use_engine
from repro.sim.config import CMPConfig
from repro.workloads import WORKLOADS, make_workload

__all__ = ["main", "build_parser", "DEFAULT_CACHE_DIR"]

#: default persistent result cache (override: --cache-dir / REPRO_SIM_CACHE_DIR)
DEFAULT_CACHE_DIR = os.path.join("~", ".cache", "repro-sim")

EXPERIMENTS = {
    "fig01": "repro.experiments.fig01_ideal",
    "fig07": "repro.experiments.fig07_contention",
    "fig08": "repro.experiments.fig08_exectime",
    "fig09": "repro.experiments.fig09_traffic",
    "fig10": "repro.experiments.fig10_ed2p",
    "table1": "repro.experiments.table1_cost",
    "table4": "repro.experiments.table4_speedup",
    "ablate-cs": "repro.experiments.ablate_cs_length",
    "ablate-gline": "repro.experiments.ablate_gline",
    "ablate-arbitration": "repro.experiments.ablate_arbitration",
    "ablate-sharing": "repro.experiments.ablate_sharing",
    "ablate-coherence": "repro.experiments.ablate_coherence",
    "ablate-faults": "repro.experiments.ablate_faults",
    "ablate_faults": "repro.experiments.ablate_faults",  # CI-friendly alias
    "validate": "repro.experiments.validate",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="GLocks reproduction: cycle-level many-core CMP simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("config", help="print the chip configuration")
    p.add_argument("--cores", type=int, default=32)

    p = sub.add_parser("cost", help="Table I GLocks cost model")
    p.add_argument("--cores", type=int, default=49)
    p.add_argument("--levels", type=int, default=2, choices=(2, 3))

    p = sub.add_parser("run", help="run one benchmark once")
    p.add_argument("--workload", required=True, choices=WORKLOADS)
    p.add_argument("--lock", default="mcs",
                   help="lock kind for the highly-contended locks")
    p.add_argument("--other-lock", default="tatas")
    p.add_argument("--cores", type=int, default=32)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--sanitize", action="store_true",
                   help="validate runtime invariants every event "
                        "(repro.verify.invariants)")
    p.add_argument("--sanitize-starvation-bound", type=int, default=1_000_000,
                   metavar="CYCLES",
                   help="max cycles a core may wait for a TOKEN under "
                        "--sanitize (default: 1e6)")
    p.add_argument("--profile", action="store_true",
                   help="per-component cycle/event attribution "
                        "(repro.sim.profile); results are unchanged")
    p.add_argument("--race-detect", action="store_true",
                   help="attach the lockset/vector-clock data-race "
                        "detector (repro.verify.races); exits 1 on "
                        "unannotated races, fingerprints are unchanged")

    def add_engine_flags(p):
        p.add_argument("--jobs", type=int, default=1, metavar="J",
                       help="simulator runs to execute in parallel "
                            "(process pool; default: 1 = in-process)")
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persistent result cache location (default: "
                            "$REPRO_SIM_CACHE_DIR or ~/.cache/repro-sim)")
        p.add_argument("--no-cache", action="store_true",
                       help="skip the on-disk result cache entirely")
        p.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-run wall-clock budget in seconds "
                            "(pool mode)")
        p.add_argument("--retries", type=int, default=0, metavar="N",
                       help="extra attempts per spec after a failure or "
                            "timeout (default: 0)")

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("name", choices=sorted(EXPERIMENTS))
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--cores", type=int, default=32)
    p.add_argument("--smoke", action="store_true",
                   help="shrunk CI-sized sweep (experiments that support "
                        "it, e.g. ablate-faults)")
    p.add_argument("--profile", action="store_true",
                   help="per-component cycle/event attribution; forces "
                        "--jobs 1 --no-cache so every run executes "
                        "in-process (spec digests are unaffected)")
    p.add_argument("--race-detect", action="store_true",
                   help="race-check every run in the sweep; forces "
                        "--jobs 1 --no-cache so detectors attach "
                        "in-process (spec digests are unaffected)")
    add_engine_flags(p)
    p.add_argument("--fail-policy", choices=("abort", "collect"),
                   default="abort",
                   help="abort: die on the first exhausted spec (classic); "
                        "collect: run the campaign supervisor, record a "
                        "per-spec outcome, and render the partial sweep")
    p.add_argument("--manifest", default=None, metavar="PATH",
                   help="checkpoint campaign progress to PATH (JSON, "
                        "atomically rewritten as results land); implies "
                        "the campaign supervisor")
    p.add_argument("--resume", default=None, metavar="MANIFEST",
                   help="resume a previous campaign: done specs are served "
                        "from its result cache, quarantined specs are "
                        "skipped; implies --fail-policy collect and the "
                        "manifest's cache dir unless overridden")
    p.add_argument("--quarantine-threshold", type=int, default=2,
                   metavar="K",
                   help="worker kills before a spec is quarantined "
                        "(default: 2)")

    p = sub.add_parser("shootout", help="compare all lock kinds quickly")
    p.add_argument("--cores", type=int, default=8)
    p.add_argument("--iters", type=int, default=160)
    add_engine_flags(p)

    p = sub.add_parser("lint", help="simulator-aware static lint "
                                    "(SIM001-SIM007)")
    p.add_argument("paths", nargs="*", default=["src/"],
                   help="files or directories (default: src/)")

    p = sub.add_parser("modelcheck",
                       help="exhaust the token-protocol state space on a "
                            "small mesh")
    p.add_argument("--cores", type=int, default=4,
                   help="mesh size (default 4 = 2x2)")
    p.add_argument("--levels", type=int, default=2, choices=(2, 3))
    p.add_argument("--arbitration", default="all",
                   choices=("all", "round_robin", "fifo", "static"))
    p.add_argument("--max-concurrent", type=int, default=None,
                   help="bound on simultaneously active cores "
                        "(default: all cores eager — keep to small meshes)")
    p.add_argument("--fairness-bound", type=int, default=None,
                   help="per-manager bounded-bypass check "
                        "(round_robin/fifo only)")

    return parser


def _cmd_config(args) -> int:
    print(CMPConfig.baseline(args.cores).describe())
    return 0


def _cmd_cost(args) -> int:
    from repro.experiments import table1_cost
    from repro.core import cost_model

    cost = cost_model(CMPConfig.baseline(args.cores), levels=args.levels)
    rows = [[label, value] for label, value in cost.rows()]
    print(format_table(["resource / latency", "value"], rows,
                       title=f"Table I ({args.cores} cores, "
                             f"{args.levels}-level network)"))
    return 0


def _cmd_run(args) -> int:
    if args.profile:
        from repro.sim.profile import profiling

        with profiling() as prof:
            code = _run_once(args)
        print()
        print(prof.format_table())
        return code
    return _run_once(args)


def _run_once(args) -> int:
    machine = Machine(CMPConfig.baseline(args.cores))
    if args.sanitize:
        from repro.verify.invariants import attach_sanitizer

        if machine.sanitizer is not None:
            # e.g. pytest --sanitize auto-attached one; ours carries the
            # CLI-configured starvation bound
            machine.sanitizer.detach()
        sanitizer = attach_sanitizer(
            machine, starvation_bound=args.sanitize_starvation_bound)
    detector = None
    if args.race_detect and machine.races is None:
        from repro.verify.races import attach_detector

        detector = attach_detector(machine)
    workload = make_workload(args.workload, scale=args.scale)
    instance = workload.instantiate(machine, hc_kind=args.lock,
                                    other_kind=args.other_lock)
    result = machine.run(instance.programs)
    instance.validate(machine)
    if args.sanitize:
        print(f"sanitizer  : OK ({sanitizer.checks_run} per-event checks, "
              "drain invariants hold)")
    if detector is not None:
        print(detector.format_report())
    energy = account_run(result)
    fractions = result.category_fractions()
    print(f"workload   : {args.workload} (scale {args.scale}) on "
          f"{args.cores} cores, HC locks = {args.lock}")
    print(f"makespan   : {result.makespan} cycles")
    print("breakdown  : " + "  ".join(
        f"{cat}={fractions[cat]:.1%}" for cat in fractions))
    print(f"NoC traffic: {result.total_traffic} switch-bytes "
          f"({result.traffic})")
    print(f"energy     : {energy.total_pj / 1e6:.2f} uJ; "
          f"ED2P = {ed2p(energy, result.makespan):.3e} pJ*cyc^2")
    if detector is not None and detector.races:
        return 1
    return 0


def _engine_from_args(args, fallback_cache_dir: Optional[str] = None
                      ) -> Engine:
    """Build the experiment engine the CLI flags describe."""
    if args.no_cache:
        cache_dir = None
    else:
        cache_dir = (args.cache_dir
                     or fallback_cache_dir
                     or os.environ.get("REPRO_SIM_CACHE_DIR")
                     or DEFAULT_CACHE_DIR)
        cache_dir = os.path.expanduser(cache_dir)
    return Engine(jobs=args.jobs, cache_dir=cache_dir,
                  timeout=getattr(args, "timeout", None),
                  retries=getattr(args, "retries", 0))


def _campaign_exit_code(outcomes) -> int:
    """0 all ok; 3 when anything was quarantined; 2 on other failures."""
    if any(o.status == "quarantined" for o in outcomes):
        return 3
    if any(not o.ok for o in outcomes):
        return 2
    return 0


def _cmd_experiment(args) -> int:
    import importlib

    from repro.runner import (CampaignInterrupted, RunFailure, Supervisor,
                              use_supervisor)

    if args.profile:
        # profiling lives in this process: cached results would skip the
        # simulation entirely and pool workers would profile into their
        # own (discarded) interpreters, so force inline, uncached runs
        from repro.sim.profile import profiling

        if args.jobs != 1 or not args.no_cache:
            print("profile: forcing --jobs 1 --no-cache (profiled runs "
                  "must execute in-process)")
        args.jobs = 1
        args.no_cache = True
        args.profile = False  # run the plain path below, instrumented
        with profiling() as prof:
            code = _cmd_experiment(args)
        print()
        print(prof.format_table())
        return code

    if args.race_detect:
        # same in-process constraint as --profile: the detector attaches
        # to Machines built in this interpreter, and a cache hit would
        # skip the simulation it needs to observe
        from repro.verify.races import race_detection

        if args.jobs != 1 or not args.no_cache:
            print("race-detect: forcing --jobs 1 --no-cache (detectors "
                  "attach to in-process runs)")
        args.jobs = 1
        args.no_cache = True
        args.race_detect = False  # run the plain path below, instrumented
        with race_detection() as races:
            code = _cmd_experiment(args)
        print()
        print(races.format_report())
        if races.races and code == 0:
            code = 1
        return code

    module = importlib.import_module(EXPERIMENTS[args.name])
    kwargs = {}
    import inspect

    signature = inspect.signature(module.run)
    if "scale" in signature.parameters:
        kwargs["scale"] = args.scale
    if "n_cores" in signature.parameters:
        kwargs["n_cores"] = args.cores
    if "smoke" in signature.parameters:
        kwargs["smoke"] = args.smoke
    elif args.smoke:
        print(f"note: experiment {args.name!r} has no smoke mode; "
              "running the full sweep")

    supervised = (args.fail_policy == "collect" or args.manifest
                  or args.resume)
    fallback_cache_dir = None
    if args.resume:
        # a resumed campaign defaults to the cache its manifest recorded,
        # so "done" specs are found instead of re-simulated
        from repro.runner import CampaignManifest
        try:
            fallback_cache_dir = (CampaignManifest.load(args.resume)
                                  .data.get("campaign", {}).get("cache_dir"))
        except (OSError, ValueError) as exc:
            print(f"error: cannot resume from {args.resume}: {exc}")
            return 2
    engine = _engine_from_args(args, fallback_cache_dir)
    try:
        if supervised:
            fail_policy = "collect" if args.resume else args.fail_policy
            supervisor = Supervisor(
                engine, fail_policy=fail_policy,
                quarantine_threshold=args.quarantine_threshold,
                manifest_path=args.manifest, resume_from=args.resume)
            with use_engine(engine), use_supervisor(supervisor):
                print(module.render(module.run(**kwargs)))
            print(engine.summary())
            print(supervisor.summary())
            bad = [o for o in supervisor.outcomes if not o.ok]
            for outcome in bad:
                print(f"FAILED {outcome.describe()}")
            return _campaign_exit_code(supervisor.outcomes)
        with use_engine(engine):
            print(module.render(module.run(**kwargs)))
        print(engine.summary())
        return 0
    except RunFailure as failure:
        print(engine.summary())
        print(f"FAILED {failure.spec.digest()[:12]} "
              f"{failure.spec.describe()}: {failure.cause!r}")
        return 2
    except CampaignInterrupted as interrupt:
        print(engine.summary())
        print(f"INTERRUPTED {interrupt} — resume with "
              f"--resume {interrupt.manifest_path}")
        return 130


def _cmd_shootout(args) -> int:
    from repro.locks import LOCK_KINDS

    per_thread = max(args.iters // args.cores, 1)
    n_cs = per_thread * args.cores
    specs = [
        RunSpec(workload="synth", hc_kind=kind,
                machine=MachineSpec.baseline(args.cores),
                workload_params={"iterations_per_thread": per_thread})
        for kind in LOCK_KINDS
    ]
    engine = _engine_from_args(args)
    with use_engine(engine):
        runs = engine.run_specs(specs)
    rows = [[kind, bench.makespan / n_cs, bench.total_traffic / n_cs]
            for kind, bench in zip(LOCK_KINDS, runs)]
    print(format_table(
        ["lock", "cycles/CS", "switch-bytes/CS"], rows,
        title=f"Lock shootout ({args.cores} cores)"))
    print(engine.summary())
    return 0


def _cmd_lint(args) -> int:
    from repro.verify.lint import main as lint_main

    return lint_main(args.paths)


def _cmd_modelcheck(args) -> int:
    from repro.verify.modelcheck import check_protocol

    policies = (("round_robin", "fifo", "static")
                if args.arbitration == "all" else (args.arbitration,))
    for policy in policies:
        fairness = args.fairness_bound if policy != "static" else None
        result = check_protocol(
            args.cores, args.levels, policy,
            max_concurrent=args.max_concurrent,
            fairness_bound=fairness)
        print(result.describe())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "config": _cmd_config,
        "cost": _cmd_cost,
        "run": _cmd_run,
        "experiment": _cmd_experiment,
        "shootout": _cmd_shootout,
        "lint": _cmd_lint,
        "modelcheck": _cmd_modelcheck,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
