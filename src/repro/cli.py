"""Command-line interface.

::

    repro-sim config [--cores N]             # print the Table II chip
    repro-sim cost [--cores N] [--levels L]  # Table I for that chip
    repro-sim run --workload sctr --lock glock [--cores N] [--scale S]
                  [--backend pure|compiled|auto] [--list-backends]
                  [--sanitize]               # runtime invariant checks
                  [--race-detect]            # lockset/vector-clock races
    repro-sim experiment fig08 [--scale S] [--cores N]
                  [--jobs J] [--cache-dir D] [--no-cache]
    repro-sim campaign expand FILE [--dry-run]   # YAML matrix -> digests
    repro-sim campaign run FILE [--backend B] [--workers H:P,...]
    repro-sim worker [--port P] [--cache-dir D]  # remote execution worker
    repro-sim serve [--port P] [--cache-dir D]   # campaign service daemon
    repro-sim cache stats|verify|gc [--older-than DAYS]
    repro-sim shootout [--cores N] [--iters I] [--jobs J] ...
    repro-sim lint [paths...]                # simulator-aware static lint
    repro-sim modelcheck [--cores N] [--arbitration P] [--max-concurrent K]

``experiment`` and ``shootout`` submit their runs to the experiment
engine (:mod:`repro.runner`): ``--jobs`` fans independent simulations out
over a process pool, and results are cached on disk keyed by their spec
hash, so a repeated invocation re-executes nothing (the trailing
``[engine] ...`` summary line reports ``executed=`` / ``disk_hits=``).

(also runnable as ``python -m repro.cli ...``; the lint alone also as
``python -m repro.lint ...``)
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.report import format_table
from repro.energy import account_run, ed2p
from repro.machine import Machine
from repro.runner import Engine, MachineSpec, RunSpec, use_engine
from repro.sim.config import CMPConfig
from repro.workloads import WORKLOADS, make_workload

__all__ = ["main", "build_parser", "DEFAULT_CACHE_DIR"]

#: default persistent result cache (override: --cache-dir / REPRO_SIM_CACHE_DIR)
DEFAULT_CACHE_DIR = os.path.join("~", ".cache", "repro-sim")

EXPERIMENTS = {
    "fig01": "repro.experiments.fig01_ideal",
    "fig07": "repro.experiments.fig07_contention",
    "fig08": "repro.experiments.fig08_exectime",
    "fig09": "repro.experiments.fig09_traffic",
    "fig10": "repro.experiments.fig10_ed2p",
    "table1": "repro.experiments.table1_cost",
    "table4": "repro.experiments.table4_speedup",
    "ablate-cs": "repro.experiments.ablate_cs_length",
    "ablate-gline": "repro.experiments.ablate_gline",
    "ablate-arbitration": "repro.experiments.ablate_arbitration",
    "ablate-sharing": "repro.experiments.ablate_sharing",
    "ablate-coherence": "repro.experiments.ablate_coherence",
    "ablate-faults": "repro.experiments.ablate_faults",
    "ablate_faults": "repro.experiments.ablate_faults",  # CI-friendly alias
    "ablate-overload": "repro.experiments.ablate_overload",
    "validate": "repro.experiments.validate",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="GLocks reproduction: cycle-level many-core CMP simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("config", help="print the chip configuration")
    p.add_argument("--cores", type=int, default=32)

    p = sub.add_parser("cost", help="Table I GLocks cost model")
    p.add_argument("--cores", type=int, default=49)
    p.add_argument("--levels", type=int, default=2, choices=(2, 3))

    p = sub.add_parser("run", help="run one benchmark once")
    p.add_argument("--workload", choices=WORKLOADS,
                   help="benchmark to run (required unless --list-locks)")
    p.add_argument("--list-locks", action="store_true",
                   help="print the registered lock kinds and exit")
    p.add_argument("--lock", default="mcs",
                   help="lock kind for the highly-contended locks "
                        "(any kind from --list-locks, or a 'cr:<kind>' / "
                        "'cr<k>:<kind>' concurrency-restricted wrapper)")
    p.add_argument("--other-lock", default="tatas")
    p.add_argument("--cores", type=int, default=32)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--sanitize", action="store_true",
                   help="validate runtime invariants every event "
                        "(repro.verify.invariants)")
    p.add_argument("--sanitize-starvation-bound", type=int, default=1_000_000,
                   metavar="CYCLES",
                   help="max cycles a core may wait for a TOKEN under "
                        "--sanitize (default: 1e6)")
    p.add_argument("--profile", action="store_true",
                   help="per-component cycle/event attribution "
                        "(repro.sim.profile); results are unchanged")
    p.add_argument("--race-detect", action="store_true",
                   help="attach the lockset/vector-clock data-race "
                        "detector (repro.verify.races); exits 1 on "
                        "unannotated races, fingerprints are unchanged")
    p.add_argument("--backend", default=None,
                   choices=("pure", "compiled", "auto"),
                   help="simulator kernel backend (default: "
                        "$REPRO_SIM_BACKEND or auto = compiled when "
                        "built, else pure); results are bit-identical "
                        "across backends")
    p.add_argument("--list-backends", action="store_true",
                   help="print the available simulator backends (and "
                        "what 'auto' resolves to here) and exit")

    def add_engine_flags(p):
        from repro.runner.backends import BACKEND_NAMES
        p.add_argument("--jobs", type=int, default=1, metavar="J",
                       help="simulator runs to execute in parallel "
                            "(process pool; default: 1 = in-process)")
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persistent result cache location (default: "
                            "$REPRO_SIM_CACHE_DIR or ~/.cache/repro-sim)")
        p.add_argument("--no-cache", action="store_true",
                       help="skip the on-disk result cache entirely")
        p.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-run wall-clock budget in seconds "
                            "(pool and remote backends)")
        p.add_argument("--retries", type=int, default=0, metavar="N",
                       help="extra attempts per spec after a failure or "
                            "timeout (default: 0)")
        p.add_argument("--backend", default="auto", choices=BACKEND_NAMES,
                       help="execution backend (default: auto = inline "
                            "for --jobs 1, process-pool otherwise)")
        p.add_argument("--workers", default=None, metavar="H:P,H:P",
                       help="comma-separated repro-sim worker addresses "
                            "(required by --backend remote)")
        p.add_argument("--lease-timeout", type=float, default=None,
                       metavar="S",
                       help="remote backend: max silence (no heartbeat, "
                            "no result) before a dispatched spec's lease "
                            "breaks and it is re-dispatched (default: 10)")

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("name", choices=sorted(EXPERIMENTS))
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--cores", type=int, default=32)
    p.add_argument("--smoke", action="store_true",
                   help="shrunk CI-sized sweep (experiments that support "
                        "it, e.g. ablate-faults)")
    p.add_argument("--profile", action="store_true",
                   help="per-component cycle/event attribution; forces "
                        "--jobs 1 --no-cache so every run executes "
                        "in-process (spec digests are unaffected)")
    p.add_argument("--race-detect", action="store_true",
                   help="race-check every run in the sweep; forces "
                        "--jobs 1 --no-cache so detectors attach "
                        "in-process (spec digests are unaffected)")
    add_engine_flags(p)
    p.add_argument("--fail-policy", choices=("abort", "collect"),
                   default="abort",
                   help="abort: die on the first exhausted spec (classic); "
                        "collect: run the campaign supervisor, record a "
                        "per-spec outcome, and render the partial sweep")
    p.add_argument("--manifest", default=None, metavar="PATH",
                   help="checkpoint campaign progress to PATH (JSON, "
                        "atomically rewritten as results land); implies "
                        "the campaign supervisor")
    p.add_argument("--resume", default=None, metavar="MANIFEST",
                   help="resume a previous campaign: done specs are served "
                        "from its result cache, quarantined specs are "
                        "skipped; implies --fail-policy collect and the "
                        "manifest's cache dir unless overridden")
    p.add_argument("--quarantine-threshold", type=int, default=2,
                   metavar="K",
                   help="worker kills before a spec is quarantined "
                        "(default: 2)")

    p = sub.add_parser("shootout", help="compare all lock kinds quickly")
    p.add_argument("--cores", type=int, default=8)
    p.add_argument("--iters", type=int, default=160)
    add_engine_flags(p)

    p = sub.add_parser("campaign",
                       help="expand or run a declarative YAML campaign")
    campaign_sub = p.add_subparsers(dest="campaign_cmd", required=True)
    pe = campaign_sub.add_parser(
        "expand", help="validate a campaign file and print its spec "
                       "digests without executing")
    pe.add_argument("file", help="campaign YAML file")
    pe.add_argument("--dry-run", action="store_true",
                    help="accepted for symmetry; expand never executes")
    pr = campaign_sub.add_parser(
        "run", help="execute a campaign file through the engine")
    pr.add_argument("file", help="campaign YAML file")
    add_engine_flags(pr)
    pr.add_argument("--publish", default=None, metavar="PATH",
                    help="stream result records to PATH as they land")
    pr.add_argument("--publish-format", choices=("jsonl", "csv"),
                    default="jsonl")
    pr.add_argument("--fail-policy", choices=("abort", "collect"),
                    default="abort",
                    help="abort: die on the first exhausted spec; collect: "
                         "record per-spec outcomes and keep going")
    pr.add_argument("--manifest", default=None, metavar="PATH",
                    help="checkpoint campaign progress to PATH (implies "
                         "the campaign supervisor)")

    p = sub.add_parser("worker",
                       help="serve remote spec execution for "
                            "--backend remote")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (default: 0 = pick a free one)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="shared result cache (default: $REPRO_SIM_CACHE_DIR "
                        "or ~/.cache/repro-sim)")
    p.add_argument("--no-cache", action="store_true",
                   help="execute every request, share nothing")
    p.add_argument("--heartbeat-interval", type=float, default=1.0,
                   metavar="S",
                   help="seconds between heartbeat frames while a spec "
                        "simulates (0 disables; default: 1)")

    p = sub.add_parser("serve",
                       help="campaign service daemon (HTTP submit/status/"
                            "results over one warm cache)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642,
                   help="HTTP port (default: 8642; 0 = pick a free one)")
    p.add_argument("--results-dir", default=None, metavar="DIR",
                   help="published sample files (default: "
                        "<cache-dir>/results)")
    p.add_argument("--journal", default=None, metavar="PATH",
                   help="write-ahead job journal (default: "
                        "<cache-dir>/service-journal.jsonl; 'off' "
                        "disables journaling)")
    p.add_argument("--resume-journal", action="store_true",
                   help="replay the journal on startup and re-enqueue "
                        "jobs that never finished (landed specs are "
                        "served from the cache, so only the rest "
                        "re-execute)")
    p.add_argument("--max-queue", type=int, default=None, metavar="N",
                   help="bound on queued jobs; a full queue answers "
                        "429 with Retry-After (default: unbounded)")
    add_engine_flags(p)

    p = sub.add_parser("cache", help="inspect or prune the result cache")
    p.add_argument("action", choices=("stats", "verify", "gc"))
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="cache root (default: $REPRO_SIM_CACHE_DIR or "
                        "~/.cache/repro-sim)")
    p.add_argument("--older-than", type=float, default=None, metavar="DAYS",
                   help="gc: delete entries older than DAYS (required "
                        "for gc)")

    p = sub.add_parser("lint", help="simulator-aware static lint "
                                    "(SIM001-SIM007)")
    p.add_argument("paths", nargs="*", default=["src/"],
                   help="files or directories (default: src/)")

    p = sub.add_parser("modelcheck",
                       help="exhaust the token-protocol state space on a "
                            "small mesh")
    p.add_argument("--cores", type=int, default=4,
                   help="mesh size (default 4 = 2x2)")
    p.add_argument("--levels", type=int, default=2, choices=(2, 3))
    p.add_argument("--arbitration", default="all",
                   choices=("all", "round_robin", "fifo", "static"))
    p.add_argument("--max-concurrent", type=int, default=None,
                   help="bound on simultaneously active cores "
                        "(default: all cores eager — keep to small meshes)")
    p.add_argument("--fairness-bound", type=int, default=None,
                   help="per-manager bounded-bypass check "
                        "(round_robin/fifo only)")

    return parser


def _cmd_config(args) -> int:
    print(CMPConfig.baseline(args.cores).describe())
    return 0


def _cmd_cost(args) -> int:
    from repro.experiments import table1_cost
    from repro.core import cost_model

    cost = cost_model(CMPConfig.baseline(args.cores), levels=args.levels)
    rows = [[label, value] for label, value in cost.rows()]
    print(format_table(["resource / latency", "value"], rows,
                       title=f"Table I ({args.cores} cores, "
                             f"{args.levels}-level network)"))
    return 0


def _cmd_run(args) -> int:
    from repro.sim import kernel

    if args.list_backends:
        auto = kernel.resolve_backend("auto")
        available = kernel.available_backends()
        for name in ("pure", "compiled"):
            if name in available:
                mark = "  <- auto" if name == auto else ""
                print(f"{name}{mark}")
            else:
                print(f"{name}  (not built; python setup.py build_ext "
                      "--inplace)")
        return 0
    if args.backend is not None:
        try:
            kernel.set_backend(args.backend)
        except kernel.BackendUnavailableError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.list_locks:
        from repro.locks.registry import LOCK_KINDS

        for kind in LOCK_KINDS:
            print(kind)
        print("cr:<kind> / cr<k>:<kind>  (concurrency-restricted wrapper, "
              "admit <= k; default k=4)")
        return 0
    if args.workload is None:
        print("error: --workload is required (or use --list-locks)")
        return 2
    if args.profile:
        from repro.sim.profile import profiling

        with profiling() as prof:
            code = _run_once(args)
        print()
        print(prof.format_table())
        return code
    return _run_once(args)


def _run_once(args) -> int:
    machine = Machine(CMPConfig.baseline(args.cores))
    if args.sanitize:
        from repro.verify.invariants import attach_sanitizer

        if machine.sanitizer is not None:
            # e.g. pytest --sanitize auto-attached one; ours carries the
            # CLI-configured starvation bound
            machine.sanitizer.detach()
        sanitizer = attach_sanitizer(
            machine, starvation_bound=args.sanitize_starvation_bound)
    detector = None
    if args.race_detect and machine.races is None:
        from repro.verify.races import attach_detector

        detector = attach_detector(machine)
    workload = make_workload(args.workload, scale=args.scale)
    instance = workload.instantiate(machine, hc_kind=args.lock,
                                    other_kind=args.other_lock)
    result = machine.run(instance.programs)
    instance.validate(machine)
    if args.sanitize:
        print(f"sanitizer  : OK ({sanitizer.checks_run} per-event checks, "
              "drain invariants hold)")
    if detector is not None:
        print(detector.format_report())
    energy = account_run(result)
    fractions = result.category_fractions()
    print(f"workload   : {args.workload} (scale {args.scale}) on "
          f"{args.cores} cores, HC locks = {args.lock}")
    print(f"makespan   : {result.makespan} cycles")
    print("breakdown  : " + "  ".join(
        f"{cat}={fractions[cat]:.1%}" for cat in fractions))
    print(f"NoC traffic: {result.total_traffic} switch-bytes "
          f"({result.traffic})")
    print(f"energy     : {energy.total_pj / 1e6:.2f} uJ; "
          f"ED2P = {ed2p(energy, result.makespan):.3e} pJ*cyc^2")
    if detector is not None and detector.races:
        return 1
    return 0


def _resolve_cache_dir(cache_dir: Optional[str],
                       fallback: Optional[str] = None) -> str:
    """The effective cache root for a flag value (env/default fallback)."""
    return os.path.expanduser(cache_dir
                              or fallback
                              or os.environ.get("REPRO_SIM_CACHE_DIR")
                              or DEFAULT_CACHE_DIR)


def _backend_from_args(args):
    """The explicit backend the flags describe (None = classic auto)."""
    from repro.runner.backends import make_backend

    name = getattr(args, "backend", "auto")
    workers = getattr(args, "workers", None)
    if workers:
        workers = [w for w in workers.split(",") if w.strip()]
    if workers and name == "auto":
        name = "remote"  # --workers alone is unambiguous
    return make_backend(name, jobs=args.jobs, workers=workers,
                        lease_timeout=getattr(args, "lease_timeout", None))


def _engine_from_args(args, fallback_cache_dir: Optional[str] = None
                      ) -> Engine:
    """Build the experiment engine the CLI flags describe."""
    if args.no_cache:
        cache_dir = None
    else:
        cache_dir = _resolve_cache_dir(args.cache_dir, fallback_cache_dir)
    return Engine(jobs=args.jobs, cache_dir=cache_dir,
                  timeout=getattr(args, "timeout", None),
                  retries=getattr(args, "retries", 0),
                  backend=_backend_from_args(args))


def _campaign_exit_code(outcomes) -> int:
    """0 all ok; 3 when anything was quarantined; 2 on other failures."""
    if any(o.status == "quarantined" for o in outcomes):
        return 3
    if any(not o.ok for o in outcomes):
        return 2
    return 0


def _cmd_experiment(args) -> int:
    import importlib

    from repro.runner import (CampaignInterrupted, RunFailure, Supervisor,
                              use_supervisor)

    if args.profile:
        # profiling lives in this process: cached results would skip the
        # simulation entirely and pool workers would profile into their
        # own (discarded) interpreters, so force inline, uncached runs
        from repro.sim.profile import profiling

        if args.jobs != 1 or not args.no_cache:
            print("profile: forcing --jobs 1 --no-cache (profiled runs "
                  "must execute in-process)")
        args.jobs = 1
        args.no_cache = True
        args.profile = False  # run the plain path below, instrumented
        with profiling() as prof:
            code = _cmd_experiment(args)
        print()
        print(prof.format_table())
        return code

    if args.race_detect:
        # same in-process constraint as --profile: the detector attaches
        # to Machines built in this interpreter, and a cache hit would
        # skip the simulation it needs to observe
        from repro.verify.races import race_detection

        if args.jobs != 1 or not args.no_cache:
            print("race-detect: forcing --jobs 1 --no-cache (detectors "
                  "attach to in-process runs)")
        args.jobs = 1
        args.no_cache = True
        args.race_detect = False  # run the plain path below, instrumented
        with race_detection() as races:
            code = _cmd_experiment(args)
        print()
        print(races.format_report())
        if races.races and code == 0:
            code = 1
        return code

    module = importlib.import_module(EXPERIMENTS[args.name])
    kwargs = {}
    import inspect

    signature = inspect.signature(module.run)
    if "scale" in signature.parameters:
        kwargs["scale"] = args.scale
    if "n_cores" in signature.parameters:
        kwargs["n_cores"] = args.cores
    if "smoke" in signature.parameters:
        kwargs["smoke"] = args.smoke
    elif args.smoke:
        print(f"note: experiment {args.name!r} has no smoke mode; "
              "running the full sweep")

    supervised = (args.fail_policy == "collect" or args.manifest
                  or args.resume)
    fallback_cache_dir = None
    if args.resume:
        # a resumed campaign defaults to the cache its manifest recorded,
        # so "done" specs are found instead of re-simulated
        from repro.runner import CampaignManifest
        try:
            fallback_cache_dir = (CampaignManifest.load(args.resume)
                                  .data.get("campaign", {}).get("cache_dir"))
        except (OSError, ValueError) as exc:
            print(f"error: cannot resume from {args.resume}: {exc}")
            return 2
    try:
        engine = _engine_from_args(args, fallback_cache_dir)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    try:
        if supervised:
            fail_policy = "collect" if args.resume else args.fail_policy
            supervisor = Supervisor(
                engine, fail_policy=fail_policy,
                quarantine_threshold=args.quarantine_threshold,
                manifest_path=args.manifest, resume_from=args.resume)
            with use_engine(engine), use_supervisor(supervisor):
                print(module.render(module.run(**kwargs)))
            print(engine.summary())
            print(supervisor.summary())
            bad = [o for o in supervisor.outcomes if not o.ok]
            for outcome in bad:
                print(f"FAILED {outcome.describe()}")
            return _campaign_exit_code(supervisor.outcomes)
        with use_engine(engine):
            print(module.render(module.run(**kwargs)))
        print(engine.summary())
        return 0
    except RunFailure as failure:
        print(engine.summary())
        print(f"FAILED {failure.spec.digest()[:12]} "
              f"{failure.spec.describe()}: {failure.cause!r}")
        return 2
    except CampaignInterrupted as interrupt:
        print(engine.summary())
        print(f"INTERRUPTED {interrupt} — resume with "
              f"--resume {interrupt.manifest_path}")
        return 130


def _cmd_shootout(args) -> int:
    from repro.locks import LOCK_KINDS

    per_thread = max(args.iters // args.cores, 1)
    n_cs = per_thread * args.cores
    specs = [
        RunSpec(workload="synth", hc_kind=kind,
                machine=MachineSpec.baseline(args.cores),
                workload_params={"iterations_per_thread": per_thread})
        for kind in LOCK_KINDS
    ]
    engine = _engine_from_args(args)
    with use_engine(engine):
        runs = engine.run_specs(specs)
    rows = [[kind, bench.makespan / n_cs, bench.total_traffic / n_cs]
            for kind, bench in zip(LOCK_KINDS, runs)]
    print(format_table(
        ["lock", "cycles/CS", "switch-bytes/CS"], rows,
        title=f"Lock shootout ({args.cores} cores)"))
    print(engine.summary())
    return 0


_ENGINE_FLAG_DEFAULTS = {"jobs": 1, "timeout": None, "retries": 0,
                         "backend": "auto", "workers": None,
                         "cache_dir": None, "lease_timeout": None}


def _apply_campaign_engine(args, settings) -> None:
    """Fill engine flags from the campaign's ``engine:`` section.

    CLI flags win: a file value only applies where the flag still holds
    its parser default.
    """
    for key, value in settings.items():
        arg_key = key
        if key == "workers" and isinstance(value, list):
            value = ",".join(str(w) for w in value)
        if (arg_key in _ENGINE_FLAG_DEFAULTS
                and getattr(args, arg_key) == _ENGINE_FLAG_DEFAULTS[arg_key]):
            setattr(args, arg_key, value)


def _cmd_campaign(args) -> int:
    from repro.runner import CampaignInterrupted, RunFailure, Supervisor
    from repro.runner import use_engine, use_supervisor
    from repro.runner.config import ConfigError, load_campaign
    from repro.runner.publisher import SamplePublisher

    try:
        campaign = load_campaign(args.file)
    except ConfigError as exc:
        print(f"error: {exc}")
        return 2

    if args.campaign_cmd == "expand":
        print(f"campaign {campaign.name}: {len(campaign.specs)} specs")
        for spec in campaign.specs:
            print(f"{spec.digest()}  {spec.describe()}")
        return 0

    _apply_campaign_engine(args, campaign.engine)
    try:
        engine = _engine_from_args(args)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    publisher = None
    if args.publish:
        publisher = SamplePublisher(args.publish, fmt=args.publish_format)
        publisher.expect(campaign.digests())
        engine.observers.append(publisher)
    supervised = args.fail_policy == "collect" or args.manifest
    try:
        try:
            if supervised:
                supervisor = Supervisor(engine, fail_policy=args.fail_policy,
                                        manifest_path=args.manifest)
                with use_engine(engine), use_supervisor(supervisor):
                    supervisor.run_campaign(campaign.specs)
                print(engine.summary())
                print(supervisor.summary())
                for outcome in (o for o in supervisor.outcomes if not o.ok):
                    print(f"FAILED {outcome.describe()}")
                return _campaign_exit_code(supervisor.outcomes)
            with use_engine(engine):
                engine.run_specs(campaign.specs)
            print(engine.summary())
            return 0
        except RunFailure as failure:
            print(engine.summary())
            print(f"FAILED {failure.spec.digest()[:12]} "
                  f"{failure.spec.describe()}: {failure.cause!r}")
            return 2
        except CampaignInterrupted as interrupt:
            print(engine.summary())
            print(f"INTERRUPTED {interrupt}")
            return 130
    finally:
        if publisher is not None:
            publisher.close()
            print(f"published {publisher.published} records to "
                  f"{publisher.path}")
        engine.close()


def _cmd_worker(args) -> int:
    import signal

    from repro.runner.remote import WorkerServer

    cache_dir = (None if args.no_cache
                 else _resolve_cache_dir(args.cache_dir))
    server = WorkerServer(host=args.host, port=args.port,
                          cache_dir=cache_dir,
                          heartbeat_interval=args.heartbeat_interval)

    def stop(signum, frame):
        # drain: refuse new specs, let the in-flight one finish and
        # commit to the shared cache, then exit 0
        server.begin_drain()

    # handlers go in before the ready line: a supervisor that reacts to
    # the printed address must never catch us with default dispositions
    signal.signal(signal.SIGTERM, stop)
    signal.signal(signal.SIGINT, stop)
    host, port = server.address
    print(f"worker listening on {host}:{port} "
          f"(cache: {cache_dir or 'off'})", flush=True)
    server.serve_forever()
    print("worker draining: waiting for the in-flight spec...", flush=True)
    server.wait_drained()
    print("worker drained cleanly", flush=True)
    return 0


def _cmd_serve(args) -> int:
    import signal
    import threading

    from repro.runner.service import CampaignService

    try:
        engine = _engine_from_args(args)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    results_dir = args.results_dir or os.path.join(
        _resolve_cache_dir(args.cache_dir), "results")
    if args.journal == "off":
        journal_path = None
    else:
        journal_path = args.journal or os.path.join(
            _resolve_cache_dir(args.cache_dir), "service-journal.jsonl")
    if args.resume_journal and journal_path is None:
        print("error: --resume-journal needs a journal (drop --journal off)")
        return 2
    service = CampaignService(engine, results_dir=results_dir,
                              host=args.host, port=args.port,
                              journal_path=journal_path,
                              max_queue=args.max_queue)
    if args.resume_journal:
        recovered = service.resume_journal()
        if recovered:
            print(f"resumed {len(recovered)} unfinished job(s) from "
                  f"{journal_path}: "
                  f"{', '.join(j.id for j in recovered)}", flush=True)
    def stop(signum, frame):
        # drain: stop admitting (503), finish the running job, leave
        # queued jobs journaled for --resume-journal, exit 0
        threading.Thread(target=service.drain, daemon=True).start()

    # handlers go in before the ready line (see _cmd_worker)
    signal.signal(signal.SIGTERM, stop)
    signal.signal(signal.SIGINT, stop)
    host, port = service.address
    print(f"campaign service listening on http://{host}:{port} "
          f"(backend: {engine.backend_name}, cache: "
          f"{engine.cache.root if engine.cache else 'off'}, "
          f"results: {results_dir}, journal: {journal_path or 'off'})",
          flush=True)
    try:
        service.serve_forever()
    finally:
        engine.close()
    print("campaign service drained cleanly", flush=True)
    return 0


def _cmd_cache(args) -> int:
    from repro.runner.cache import ResultCache

    cache = ResultCache(_resolve_cache_dir(args.cache_dir))
    if args.action == "stats":
        print(cache.stats().describe(cache.root))
        return 0
    if args.action == "verify":
        ok, corrupt = cache.verify()
        print(f"verified {ok} entries under {cache.root}")
        for message in corrupt:
            print(f"CORRUPT {message}")
        if corrupt:
            print(f"{len(corrupt)} corrupt entries deleted (they will "
                  f"re-execute on next use)")
            return 1
        return 0
    # gc
    if args.older_than is None:
        print("error: cache gc needs --older-than DAYS")
        return 2
    try:
        removed, tmp_removed = cache.gc(args.older_than)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    print(f"removed {removed} entries and {tmp_removed} stale temp files "
          f"older than {args.older_than:g} days from {cache.root}")
    return 0


def _cmd_lint(args) -> int:
    from repro.verify.lint import main as lint_main

    return lint_main(args.paths)


def _cmd_modelcheck(args) -> int:
    from repro.verify.modelcheck import check_protocol

    policies = (("round_robin", "fifo", "static")
                if args.arbitration == "all" else (args.arbitration,))
    for policy in policies:
        fairness = args.fairness_bound if policy != "static" else None
        result = check_protocol(
            args.cores, args.levels, policy,
            max_concurrent=args.max_concurrent,
            fairness_bound=fairness)
        print(result.describe())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "config": _cmd_config,
        "cost": _cmd_cost,
        "run": _cmd_run,
        "experiment": _cmd_experiment,
        "campaign": _cmd_campaign,
        "worker": _cmd_worker,
        "serve": _cmd_serve,
        "cache": _cmd_cache,
        "shootout": _cmd_shootout,
        "lint": _cmd_lint,
        "modelcheck": _cmd_modelcheck,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
