"""The assembled CMP: cores + memory hierarchy + GLock networks.

:class:`Machine` is the library's main entry point::

    from repro import Machine, CMPConfig

    machine = Machine(CMPConfig.baseline(32))
    lock = machine.make_lock("glock", name="counter-lock")
    counter = machine.mem.address_space.alloc_line()

    def program(ctx):
        for _ in range(100):
            yield from ctx.acquire(lock)
            yield from ctx.rmw(counter, lambda v: v + 1)
            yield from ctx.release(lock)

    result = machine.run([program] * 32)
    print(result.makespan, result.traffic)

``run`` executes one thread program per core for the parallel phase and
returns a :class:`RunResult` with everything the paper's figures need:
makespan, per-category cycle breakdown, protocol counters, NoC traffic by
category, and the raw lock-wait intervals for the contention analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.glock import GLockPool
from repro.cpu.core import CATEGORIES, Core, ThreadContext
from repro.locks.base import Lock
from repro.locks.registry import make_lock as _make_lock
from repro.mem.hierarchy import MemorySystem
from repro.sim.config import CMPConfig
from repro.sim.kernel import Simulator
from repro.sim.profile import active_profiler
from repro.sim.stats import IntervalRecorder
from repro.verify.races import RaceDetector, active_race_collection
from repro.sync.barrier import TreeBarrier

__all__ = ["Machine", "RunResult"]

ThreadProgram = Callable[[ThreadContext], object]


@dataclass
class RunResult:
    """Everything measured during one parallel phase."""

    config: CMPConfig
    makespan: int
    cycles_by_category: Dict[str, int]
    per_core_cycles: List[Dict[str, int]]
    instructions: int
    counters: Dict[str, int]
    traffic: Dict[str, int]          # switch-bytes per Figure 9 category
    byte_hops: int
    #: lock-wait intervals for the Figure 7 contention analysis; ``None``
    #: when the result was produced without interval recording (consumers
    #: must guard — see :func:`repro.analysis.contention.analyze_contention`)
    lock_intervals: Optional[IntervalRecorder] = field(repr=False, default=None)
    #: per-request records from open-loop serving workloads, in completion
    #: order: ``(arrival, start, end, core, ok, retries)`` cycles/flags
    #: (see :mod:`repro.workloads.serving`).  ``None`` for closed-loop
    #: runs — and for results unpickled from caches predating the field,
    #: so consumers use ``getattr(result, "requests", None)``
    requests: Optional[List[tuple]] = field(repr=False, default=None)

    @property
    def total_traffic(self) -> int:
        """Total switch-bytes across all categories."""
        return sum(self.traffic.values())

    def category_fractions(self) -> Dict[str, float]:
        """Machine-wide share of each execution-time category."""
        total = sum(self.cycles_by_category.values())
        if total == 0:
            return {c: 0.0 for c in CATEGORIES}
        return {c: v / total for c, v in self.cycles_by_category.items()}


class Machine:
    """A simulated many-core CMP ready to run thread programs."""

    def __init__(self, config: Optional[CMPConfig] = None, *,
                 glock_levels: int = 2,
                 allow_glock_sharing: bool = False,
                 glock_arbitration: str = "round_robin",
                 fault_plan=None) -> None:
        self.config = config or CMPConfig.baseline()
        # a profiler is ambient state (repro.sim.profile.profiling), never
        # part of any spec — machines built under `with profiling()` are
        # instrumented without their digests knowing
        self.sim = Simulator(profile=active_profiler())
        self.mem = MemorySystem(self.sim, self.config)
        self.counters = self.mem.counters  # machine-global counter set
        #: the repro.faults.FaultInjector, or None — a machine without an
        #: enabled FaultPlan never imports or consults the faults package
        self.faults = None
        if fault_plan is not None and fault_plan.enabled:
            from repro.faults import FaultInjector
            self.faults = FaultInjector(self.sim, self.counters, fault_plan)
        self.glocks = GLockPool(self.sim, self.config, self.counters,
                                levels=glock_levels,
                                allow_sharing=allow_glock_sharing,
                                arbitration=glock_arbitration,
                                faults=self.faults)
        self.cores: List[Core] = [
            Core(self.sim, i, self.mem.l1(i), self.counters)
            for i in range(self.config.n_cores)
        ]
        self.lock_intervals = IntervalRecorder()
        #: created on first request_log() call (serving workloads); stays
        #: None for closed-loop runs so their RunResults are unchanged
        self._request_log: Optional[List[tuple]] = None
        self._ran = False
        #: optional repro.verify.invariants.InvariantSanitizer; set by
        #: InvariantSanitizer.attach() (or the --sanitize CLI flag) and
        #: finalized automatically at the end of run()
        self.sanitizer = None
        #: optional repro.verify.races.RaceDetector; set by
        #: RaceDetector.attach() (or --race-detect) and drained at the end
        #: of run().  Like the profiler, ambient attachment via
        #: repro.verify.races.race_detection() never touches spec digests.
        self.races = None
        collection = active_race_collection()
        if collection is not None:
            RaceDetector(self, collection=collection).attach()

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_spec(cls, spec) -> "Machine":
        """Build a machine fully described by a :class:`repro.runner.MachineSpec`.

        The spec carries the :class:`CMPConfig` plus the GLock-network
        kwargs (``glock_levels`` / ``allow_glock_sharing`` /
        ``glock_arbitration``) that are otherwise only reachable through
        ``Machine.__init__`` — making a machine constructible from pure
        data, which is what lets the experiment engine hash, cache and
        ship runs across worker processes.
        """
        return cls(spec.config,
                   glock_levels=spec.glock_levels,
                   allow_glock_sharing=spec.allow_glock_sharing,
                   glock_arbitration=spec.glock_arbitration,
                   fault_plan=getattr(spec, "fault_plan", None))

    def make_lock(self, kind: str, name: str = "") -> Lock:
        """Create a lock of ``kind`` (see :data:`repro.locks.LOCK_KINDS`)."""
        return _make_lock(kind, sim=self.sim, mem=self.mem,
                          n_threads=self.config.n_cores,
                          glock_pool=self.glocks, name=name)

    def make_barrier(self, n_threads: Optional[int] = None,
                     name: str = "barrier") -> TreeBarrier:
        """Create a tree barrier over the first ``n_threads`` cores."""
        if n_threads is None:
            n_threads = self.config.n_cores
        return TreeBarrier(self.mem, n_threads, name)

    def request_log(self) -> List[tuple]:
        """The machine-wide per-request record list (created on demand).

        Open-loop serving workloads append ``(arrival, start, end, core,
        ok, retries)`` tuples here; the list lands on
        :attr:`RunResult.requests` and inside the result fingerprint, so
        its (deterministic) append order is part of what the determinism
        suite pins.
        """
        if self._request_log is None:
            self._request_log = []
        return self._request_log

    def context(self, core_id: int) -> ThreadContext:
        """A thread-program context bound to ``core_id``."""
        return ThreadContext(self.cores[core_id], self.lock_intervals,
                             races=self.races)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self, programs: Sequence[ThreadProgram],
            max_events: int = 200_000_000,
            max_cycles: Optional[int] = None) -> RunResult:
        """Run one program per core (parallel phase); returns measurements.

        A machine runs one parallel phase; build a fresh Machine per run so
        caches, counters and clocks start cold (the paper likewise measures
        whole parallel phases).

        ``max_cycles`` arms the kernel's deadlock watchdog: exceeding it
        raises a SimulationError naming the blocked processes and the
        signals they wait on.
        """
        if self._ran:
            raise RuntimeError("a Machine runs a single parallel phase; "
                               "create a new Machine for the next run")
        self._ran = True
        if len(programs) > self.config.n_cores:
            raise ValueError(
                f"{len(programs)} programs but only {self.config.n_cores} cores"
            )
        procs = []
        for core_id, program in enumerate(programs):
            ctx = self.context(core_id)
            proc = self.sim.spawn(self._wrap(program, ctx), name=f"core{core_id}")
            procs.append(proc)
        self.sim.run_until_processes_finish(procs, max_events=max_events,
                                            max_cycles=max_cycles)
        if self.sanitizer is not None:
            self.sanitizer.at_drain(procs)
        if self.races is not None:
            self.races.at_drain()
        return self._collect(procs)

    def _wrap(self, program: ThreadProgram, ctx: ThreadContext):
        yield from program(ctx)
        ctx.core.finish_time = self.sim.now

    def _collect(self, procs) -> RunResult:
        makespan = max(core.finish_time or 0 for core in self.cores)
        by_cat = {c: 0 for c in CATEGORIES}
        per_core = []
        for core in self.cores:
            per_core.append(dict(core.cycles))
            for c in CATEGORIES:
                by_cat[c] += core.cycles[c]
        return RunResult(
            config=self.config,
            makespan=makespan,
            cycles_by_category=by_cat,
            per_core_cycles=per_core,
            instructions=sum(core.instructions for core in self.cores),
            counters=self.counters.as_dict(),
            traffic=self.mem.traffic.breakdown(),
            byte_hops=self.mem.traffic.byte_hops,
            lock_intervals=self.lock_intervals,
            requests=self._request_log,
        )
