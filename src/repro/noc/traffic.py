"""Traffic accounting for the main data network.

The paper measures "the total number of bytes transmitted by all the switches
of the interconnect".  A message that crosses ``h`` links traverses ``h + 1``
switches (the injection router plus one per hop), so we account
``size_bytes * (hops + 1)`` into the message's category.  Byte-hops and
flit-hops are tracked separately for the Orion-style energy model.
"""

from __future__ import annotations

from typing import Dict

from repro.noc.messages import Message, MsgCategory
from repro.sim.stats import CounterSet

__all__ = ["TrafficMeter"]


class TrafficMeter:
    """Accumulates per-category NoC traffic statistics."""

    def __init__(self) -> None:
        self.counters = CounterSet()
        # counter names are fixed by the category taxonomy, so resolve
        # them once instead of building f-strings per delivered message
        self._per_cat = {
            cat: (self.counters.bind(f"noc.switch_bytes.{cat.value}"),
                  self.counters.bind(f"noc.msgs.{cat.value}"))
            for cat in MsgCategory
        }
        self._byte_hops = self.counters.bind("noc.byte_hops")
        self._link_traversals = self.counters.bind("noc.link_traversals")
        #: compiled mesh core accumulating traffic in C (attached by
        #: Mesh.__init__); its sums are folded in before every read
        self._core = None

    def _sync(self) -> None:
        if self._core is not None:
            self._core.flush_traffic()

    def record(self, msg: Message, hops: int) -> None:
        """Account one delivered message that crossed ``hops`` links."""
        switch_bytes, msgs = self._per_cat[msg.category]
        size = msg.size_bytes
        switch_bytes.value += size * (hops + 1)
        msgs.value += 1
        self._byte_hops.value += size * hops
        self._link_traversals.value += hops

    # ------------------------------------------------------------------ #
    # Figure 9 views
    # ------------------------------------------------------------------ #
    def switch_bytes(self, category: MsgCategory | None = None) -> int:
        """Total switch-bytes, optionally restricted to one category."""
        self._sync()
        if category is None:
            return self.counters.total("noc.switch_bytes.")
        return self.counters[f"noc.switch_bytes.{category.value}"]

    def breakdown(self) -> Dict[str, int]:
        """Switch-bytes per category (the Figure 9 stacked bar)."""
        return {c.value: self.switch_bytes(c) for c in MsgCategory}

    @property
    def byte_hops(self) -> int:
        """Bytes x link-hops (input to the link energy model)."""
        self._sync()
        return self.counters["noc.byte_hops"]

    @property
    def total_messages(self) -> int:
        """Total delivered message count."""
        self._sync()
        return self.counters.total("noc.msgs.")
