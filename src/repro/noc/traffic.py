"""Traffic accounting for the main data network.

The paper measures "the total number of bytes transmitted by all the switches
of the interconnect".  A message that crosses ``h`` links traverses ``h + 1``
switches (the injection router plus one per hop), so we account
``size_bytes * (hops + 1)`` into the message's category.  Byte-hops and
flit-hops are tracked separately for the Orion-style energy model.
"""

from __future__ import annotations

from typing import Dict

from repro.noc.messages import Message, MsgCategory
from repro.sim.stats import CounterSet

__all__ = ["TrafficMeter"]


class TrafficMeter:
    """Accumulates per-category NoC traffic statistics."""

    def __init__(self) -> None:
        self.counters = CounterSet()

    def record(self, msg: Message, hops: int) -> None:
        """Account one delivered message that crossed ``hops`` links."""
        switches = hops + 1
        cat = msg.category.value
        self.counters.add(f"noc.switch_bytes.{cat}", msg.size_bytes * switches)
        self.counters.add(f"noc.msgs.{cat}", 1)
        self.counters.add("noc.byte_hops", msg.size_bytes * hops)
        self.counters.add("noc.link_traversals", hops)

    # ------------------------------------------------------------------ #
    # Figure 9 views
    # ------------------------------------------------------------------ #
    def switch_bytes(self, category: MsgCategory | None = None) -> int:
        """Total switch-bytes, optionally restricted to one category."""
        if category is None:
            return self.counters.total("noc.switch_bytes.")
        return self.counters[f"noc.switch_bytes.{category.value}"]

    def breakdown(self) -> Dict[str, int]:
        """Switch-bytes per category (the Figure 9 stacked bar)."""
        return {c.value: self.switch_bytes(c) for c in MsgCategory}

    @property
    def byte_hops(self) -> int:
        """Bytes x link-hops (input to the link energy model)."""
        return self.counters["noc.byte_hops"]

    @property
    def total_messages(self) -> int:
        """Total delivered message count."""
        return self.counters.total("noc.msgs.")
