"""2D-mesh network-on-chip model.

This is the *main data network* of the paper's CMP: all coherence protocol
messages (requests, replies, invalidations...) travel over it, and its byte
counts are what Figure 9 reports.  The GLocks G-line network is a separate,
dedicated fabric modelled in :mod:`repro.core`.
"""

from repro.noc.messages import Message, MsgCategory
from repro.noc.topology import Mesh
from repro.noc.traffic import TrafficMeter
from repro.noc.hotspots import hotspot_report, link_loads, utilization

__all__ = ["Message", "MsgCategory", "Mesh", "TrafficMeter",
           "hotspot_report", "link_loads", "utilization"]
