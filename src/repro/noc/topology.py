"""2D-mesh topology with XY routing and FIFO link occupancy.

Timing model per hop::

    depart  = max(now_at_hop, link.next_free)
    arrive  = depart + router_latency + serialization
    link.next_free = depart + serialization

with ``serialization = ceil(size_bytes / link_width_bytes)``.  This captures
head-of-line blocking on hot links (e.g. invalidation bursts converging on a
directory tile) without per-flit detail; with the paper's 75-byte links most
messages serialize in a single cycle.

Deliveries to the local tile (``src == dst``) bypass the network entirely —
they model same-tile L2-slice accesses, which the paper notes generate no
NoC traffic.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.mem import protocol as _protocol
from repro.noc.messages import Message
from repro.noc.traffic import TrafficMeter
from repro.sim.config import CMPConfig
from repro.sim.kernel import Simulator, compiled_impl

__all__ = ["Link", "Mesh"]

LOCAL_DELIVERY_LATENCY = 1


class Link:
    """A unidirectional mesh link with FIFO occupancy."""

    __slots__ = ("u", "v", "next_free", "carried_bytes")

    def __init__(self, u: Tuple[int, int], v: Tuple[int, int]) -> None:
        self.u = u
        self.v = v
        self.next_free = 0
        #: total bytes this link has carried (hotspot analysis)
        self.carried_bytes = 0

    def reserve(self, now: int, ser_cycles: int) -> int:
        """Reserve the link starting no earlier than ``now``.

        Returns the departure time; the link stays busy for ``ser_cycles``.
        """
        next_free = self.next_free
        depart = now if now >= next_free else next_free
        self.next_free = depart + ser_cycles
        return depart

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Link({self.u}->{self.v}, free@{self.next_free})"


class Mesh:
    """The chip's main data network."""

    def __init__(self, sim: Simulator, config: CMPConfig) -> None:
        self.sim = sim
        self.config = config
        self.traffic = TrafficMeter()
        self._links: Dict[Tuple[Tuple[int, int], Tuple[int, int]], Link] = {}
        self._handlers: Dict[int, Callable[[Message], None]] = {}
        # XY routes are static (the link set never changes after
        # construction), so each (src, dst) pair is walked exactly once
        self._route_cache: Dict[Tuple[int, int], List[Link]] = {}
        # serialization cycles per message size (a handful of sizes exist)
        self._ser_cache: Dict[int, int] = {}
        self._router_latency = config.noc.router_latency
        self._build_links()
        # Compiled fast path: when the simulator is the compiled backend,
        # routing, link reservation and traffic accounting all run inside
        # the C MeshCore and ``send`` is rebound to it wholesale.  The
        # Link objects above stay authoritative for route() geometry; the
        # core's link state is read back through the shared index formula
        # (see link_bytes).
        self._core = None
        impl = compiled_impl()
        if impl is not None and type(sim) is impl.Simulator:
            traffic = self.traffic
            self._core = impl.MeshCore(
                sim, config.mesh_width, config.mesh_height,
                config.noc.router_latency, config.noc.link_width_bytes,
                traffic._per_cat, traffic._byte_hops,
                traffic._link_traversals)
            self.send = self._core.send
            self.send_proto = self._core.send_proto
            traffic._core = self._core

    def _build_links(self) -> None:
        w, h = self.config.mesh_width, self.config.mesh_height
        for y in range(h):
            for x in range(w):
                for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                    nx, ny = x + dx, y + dy
                    if 0 <= nx < w and 0 <= ny < h:
                        self._links[((x, y), (nx, ny))] = Link((x, y), (nx, ny))

    # ------------------------------------------------------------------ #
    # endpoint registration
    # ------------------------------------------------------------------ #
    def register(self, tile: int, handler: Callable[[Message], None],
                 route: Optional[Dict[str, Callable[[Message], None]]] = None,
                 ) -> None:
        """Attach the message handler for ``tile`` (one per tile).

        ``route`` optionally exposes the handler's internal kind->callback
        table; the compiled mesh core uses it to deliver straight to the
        per-kind callback, skipping the Python dispatcher frame.
        """
        if tile in self._handlers:
            raise ValueError(f"tile {tile} already has a handler")
        self._handlers[tile] = handler
        if self._core is not None:
            self._core.register(tile, handler if route is None else route)

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def route(self, src: int, dst: int) -> List[Link]:
        """Deterministic XY route (X first, then Y)."""
        sx, sy = self.config.tile_coords(src)
        dx, dy = self.config.tile_coords(dst)
        hops: List[Link] = []
        x, y = sx, sy
        while x != dx:
            nx = x + (1 if dx > x else -1)
            hops.append(self._links[((x, y), (nx, y))])
            x = nx
        while y != dy:
            ny = y + (1 if dy > y else -1)
            hops.append(self._links[((x, y), (x, ny))])
            y = ny
        return hops

    def send(self, msg: Message) -> int:
        """Inject ``msg``; returns the (predicted) delivery cycle.

        The destination's registered handler is invoked at delivery time.
        """
        sim = self.sim
        handler = self._handlers[msg.dst]
        now = sim.now
        if sim.tracer is not None:
            sim.tracer.record(now, "noc", f"tile{msg.src}",
                              f"{msg.kind} -> tile{msg.dst} "
                              f"({msg.size_bytes}B {msg.category.value})")
        if msg.src == msg.dst:
            arrival = now + LOCAL_DELIVERY_LATENCY
            sim.schedule_at(arrival, handler, msg)
            return arrival
        size = msg.size_bytes
        ser = self._ser_cache.get(size)
        if ser is None:
            noc = self.config.noc
            ser = -(-size // noc.link_width_bytes)  # ceil division
            self._ser_cache[size] = ser
        route_key = (msg.src, msg.dst)
        hops = self._route_cache.get(route_key)
        if hops is None:
            hops = self._route_cache[route_key] = self.route(*route_key)
        per_hop = self._router_latency + ser
        t = now
        for link in hops:
            # inlined Link.reserve: this loop runs once per hop per message
            next_free = link.next_free
            depart = t if t >= next_free else next_free
            link.next_free = depart + ser
            t = depart + per_hop
            link.carried_bytes += size
        self.traffic.record(msg, len(hops))
        sim.schedule_at(t, handler, msg)
        return t

    def send_proto(self, noc, src: int, dst: int, kind: str, line: int,
                   extra: object = None) -> int:
        """Build a protocol message and inject it (fused make_msg + send).

        The memory controllers issue every transaction hop through this
        entry point; the compiled mesh core folds both steps into one C
        call (the instance attribute is rebound in ``__init__``).
        """
        return self.send(_protocol.make_msg(noc, src, dst, kind, line, extra))

    @property
    def link_bytes(self) -> Dict[Tuple[Tuple[int, int], Tuple[int, int]], int]:
        """Bytes carried per directional link (hotspot analysis view)."""
        if self._core is not None:
            carried = self._core.carried_list()
            w, h = self.config.mesh_width, self.config.mesh_height
            wh = w * h
            direction = {(1, 0): 0, (-1, 0): 1, (0, 1): 2, (0, -1): 3}
            out: Dict[Tuple[Tuple[int, int], Tuple[int, int]], int] = {}
            for (u, v) in self._links:
                d = direction[(v[0] - u[0], v[1] - u[1])]
                c = carried[d * wh + u[1] * w + u[0]]
                if c:
                    out[(u, v)] = c
            return out
        return {key: link.carried_bytes
                for key, link in self._links.items() if link.carried_bytes}

    @property
    def n_links(self) -> int:
        """Number of unidirectional links in the mesh."""
        return len(self._links)
