"""Per-link load analysis for the main data network.

Highly-contended lock lines concentrate traffic on the links around the
lock's home tile; this module exposes that structure.  The mesh counts
byte-traversals per directional link (always on — the mesh has at most a
few hundred links); :func:`hotspot_report` ranks them and
:func:`utilization` normalizes by runtime and link bandwidth, quantifying
how a shared-memory lock turns a corner of the mesh into a hotspot that
GLocks simply remove.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.noc.topology import Mesh

__all__ = ["link_loads", "hotspot_report", "utilization"]

LinkKey = Tuple[Tuple[int, int], Tuple[int, int]]


def link_loads(mesh: Mesh) -> Dict[LinkKey, int]:
    """Bytes carried per directional link."""
    return dict(mesh.link_bytes)


def hotspot_report(mesh: Mesh, top_n: int = 5) -> List[Tuple[LinkKey, int]]:
    """The ``top_n`` busiest links as ((src_xy, dst_xy), bytes), descending."""
    loads = sorted(mesh.link_bytes.items(), key=lambda kv: -kv[1])
    return loads[:top_n]


def utilization(mesh: Mesh, elapsed_cycles: int) -> Dict[LinkKey, float]:
    """Fraction of each link's capacity used over ``elapsed_cycles``.

    Capacity is ``link_width_bytes`` per cycle (Table II: 75B links).
    """
    if elapsed_cycles <= 0:
        raise ValueError("elapsed cycles must be positive")
    cap = mesh.config.noc.link_width_bytes * elapsed_cycles
    return {key: bytes_ / cap for key, bytes_ in mesh.link_bytes.items()}
