"""NoC message types and the Figure 9 category taxonomy.

The paper breaks network traffic into three categories:

- **Request** — messages generated when loads/stores miss in cache and must
  access a remote directory (GetS / GetM / Upgrade).
- **Reply** — messages that carry data (directory data responses,
  cache-to-cache transfer data, memory fills).
- **Coherence** — everything the coherence protocol generates beyond that:
  invalidations, acknowledgements, forwards/recalls, writebacks, and
  dataless grants.
"""

from __future__ import annotations

import enum
import itertools
import sys
from dataclasses import dataclass, field
from typing import Any

__all__ = ["MsgCategory", "Message"]

_msg_ids = itertools.count()


class MsgCategory(str, enum.Enum):
    """Figure 9 traffic categories."""

    REQUEST = "request"
    REPLY = "reply"
    COHERENCE = "coherence"


@dataclass(slots=True)
class Message:
    """A single NoC message.

    Attributes:
        src: tile id of the sender.
        dst: tile id of the receiver.
        kind: protocol-level opcode (e.g. ``"GetM"``, ``"Inv"``, ``"Data"``).
        category: Figure 9 accounting category.
        size_bytes: wire size, header plus optional cache-line payload.
        payload: protocol-defined freight (addresses, values, ack counts...).
    """

    src: int
    dst: int
    kind: str
    category: MsgCategory
    size_bytes: int
    payload: Any = None
    msg_id: int = field(default_factory=lambda: next(_msg_ids))

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("message size must be positive")
        # protocol opcodes come from a tiny fixed vocabulary; interning
        # makes every downstream kind comparison a pointer check
        self.kind = sys.intern(self.kind)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Message({self.kind} {self.src}->{self.dst} "
            f"{self.size_bytes}B {self.category.value})"
        )


# --------------------------------------------------------------------- #
# compiled backend
# --------------------------------------------------------------------- #
_PURE_MESSAGE = Message


def _bind_backend(backend: str) -> None:
    # swap Message for its compiled twin (same fields, same validation,
    # same repr) whenever the compiled kernel backend is active
    global Message
    impl = _kernel.compiled_impl()
    Message = (impl.Message if backend == "compiled" and impl is not None
               else _PURE_MESSAGE)


from repro.sim import kernel as _kernel  # noqa: E402

_kernel.on_backend_change(_bind_backend)
