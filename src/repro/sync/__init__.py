"""Barrier synchronization primitives (the simulator's application library).

The paper's applications use an efficient tree barrier whose internal flags
see at most two waiters each, so barriers are deliberately *not* accelerated
by GLocks; we reproduce that with a shared-memory combining-tree barrier.
"""

from repro.sync.barrier import TreeBarrier

__all__ = ["TreeBarrier"]
