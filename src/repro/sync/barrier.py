"""Combining-tree barrier over shared memory.

A static binary tree over the participating cores.  Arrival flows leaf to
root through per-core *arrival* words; wake-up flows root to leaf through
per-core *wakeup* words.  Every word lives in its own cache line and is
spun on by exactly one parent (arrival) or one child (wakeup), matching the
paper's library barrier in which every internal flag sees at most two
threads.

Reusability across episodes uses monotonically increasing epochs instead of
sense reversal — a thread waits for ``flag >= epoch``, which is immune to
the reset races of boolean-flag schemes.
"""

from __future__ import annotations

from typing import Dict, List

from repro.mem.hierarchy import MemorySystem

__all__ = ["TreeBarrier"]


class TreeBarrier:
    """Reusable tree barrier for a fixed set of ``n_threads`` cores."""

    def __init__(self, mem: MemorySystem, n_threads: int, name: str = "barrier") -> None:
        if n_threads < 1:
            raise ValueError("need at least one participant")
        self.name = name
        self.n_threads = n_threads
        self.arrival: List[int] = mem.address_space.alloc_words_padded(n_threads)
        self.wakeup: List[int] = mem.address_space.alloc_words_padded(n_threads)
        self._epoch: Dict[int, int] = {}
        self.episodes = 0

    def _children(self, pos: int) -> List[int]:
        return [c for c in (2 * pos + 1, 2 * pos + 2) if c < self.n_threads]

    def wait(self, ctx):
        """Coroutine: block until all ``n_threads`` threads have arrived.

        Thread position in the tree is the calling core's id; workloads must
        run threads on cores ``0..n_threads-1``.
        """
        pos = ctx.core_id
        if pos >= self.n_threads:
            raise ValueError(
                f"{self.name}: core {pos} outside the {self.n_threads}-thread tree"
            )
        epoch = self._epoch.get(pos, 0) + 1
        self._epoch[pos] = epoch
        # gather phase: wait for both subtrees, then report up
        for child in self._children(pos):
            yield from ctx.spin_until(self.arrival[child], lambda v: v >= epoch)
        if pos == 0:
            self.episodes += 1
        else:
            yield from ctx.store(self.arrival[pos], epoch)
            yield from ctx.spin_until(self.wakeup[pos], lambda v: v >= epoch)
        # release phase: wake the subtrees
        for child in self._children(pos):
            yield from ctx.store(self.wakeup[child], epoch)
