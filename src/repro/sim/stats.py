"""Statistics plumbing: counters, histograms, interval recording.

Every subsystem (NoC, caches, energy, locks) accounts into one of these
structures; the analysis layer (:mod:`repro.analysis`) post-processes them
into the paper's figures.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

__all__ = ["BoundCounter", "CounterSet", "Histogram", "IntervalRecorder",
           "sweep_concurrency"]


class BoundCounter:
    """A single counter pre-resolved out of a :class:`CounterSet`.

    Hot paths that bump the same counter millions of times (L1 accesses,
    NoC traffic) hash the counter name on every ``add``; binding once and
    incrementing :attr:`value` directly turns that into a plain integer
    add.  The owning set folds the buffered value back into the named
    counters on every read (:meth:`CounterSet._flush`), so observers
    never see stale numbers.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Increment by ``amount`` (equivalent to ``CounterSet.add``)."""
        self.value += amount


class CounterSet:
    """A named bag of integer counters with dict-like access."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = defaultdict(int)
        self._bound: Dict[str, BoundCounter] = {}

    def bind(self, name: str) -> BoundCounter:
        """A :class:`BoundCounter` accumulating into ``name``.

        Binding the same name twice returns the same counter, so sharers
        of one :class:`CounterSet` (e.g. all L1s of a machine) compose.
        """
        counter = self._bound.get(name)
        if counter is None:
            counter = self._bound[name] = BoundCounter()
        return counter

    def _flush(self) -> None:
        """Fold buffered bound-counter values into the named counts."""
        for name, counter in self._bound.items():
            if counter.value:
                self._counts[name] += counter.value
                counter.value = 0

    def add(self, name: str, amount: int = 1) -> None:
        """Increment ``name`` by ``amount``."""
        self._counts[name] += amount

    def __getitem__(self, name: str) -> int:
        self._flush()
        return self._counts.get(name, 0)

    def __contains__(self, name: str) -> bool:
        self._flush()
        return name in self._counts

    def total(self, prefix: str = "") -> int:
        """Sum of all counters whose name starts with ``prefix``."""
        self._flush()
        return sum(v for k, v in self._counts.items() if k.startswith(prefix))

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of all counters."""
        self._flush()
        return dict(self._counts)

    def merge(self, other: "CounterSet") -> None:
        """Add every counter from ``other`` into this set."""
        self._flush()
        other._flush()
        for k, v in other._counts.items():
            self._counts[k] += v

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        self._flush()
        return f"CounterSet({dict(self._counts)!r})"


class Histogram:
    """Fixed-bin integer histogram (bins ``1..n_bins`` plus overflow)."""

    def __init__(self, n_bins: int) -> None:
        if n_bins < 1:
            raise ValueError("need at least one bin")
        self.n_bins = n_bins
        self.counts = np.zeros(n_bins + 1, dtype=np.int64)  # [0] unused, 1..n

    def add(self, bin_index: int, weight: int = 1) -> None:
        """Add ``weight`` to ``bin_index`` (clamped into ``[1, n_bins]``)."""
        idx = min(max(bin_index, 1), self.n_bins)
        self.counts[idx] += weight

    @property
    def total(self) -> int:
        """Sum of all bin weights."""
        return int(self.counts.sum())

    def normalized(self) -> np.ndarray:
        """Bin weights as fractions of the total (zeros if empty)."""
        t = self.total
        if t == 0:
            return np.zeros(self.n_bins + 1)
        return self.counts / t


@dataclass
class Interval:
    """A half-open time interval ``[start, end)`` tagged with an owner."""

    start: int
    end: int
    owner: int
    key: int = 0  # grouping key (e.g. the lock uid the wait was for)

    @property
    def length(self) -> int:
        return self.end - self.start


class IntervalRecorder:
    """Records intervals (e.g. "core 3 was waiting for lock L from t0 to t1").

    Used by the contention analysis (paper Eq. 1-3): the set of intervals for
    one lock is swept to produce, for each cycle, the number of concurrent
    requesters (grAC).
    """

    def __init__(self) -> None:
        self.intervals: List[Interval] = []
        self._open: Dict[Tuple[int, int], int] = {}

    def open(self, key: int, owner: int, time: int) -> None:
        """Mark the start of an interval for (key, owner)."""
        self._open[(key, owner)] = time

    def close(self, key: int, owner: int, time: int) -> None:
        """Close the matching open interval; zero-length intervals are kept."""
        start = self._open.pop((key, owner))
        self.intervals.append(Interval(start, time, owner, key))

    def by_key(self) -> Dict[int, List[Interval]]:
        """Closed intervals grouped by their key (e.g. per lock uid)."""
        groups: Dict[int, List[Interval]] = {}
        for iv in self.intervals:
            groups.setdefault(iv.key, []).append(iv)
        return groups

    @property
    def n_open(self) -> int:
        """Number of intervals currently open."""
        return len(self._open)


def sweep_concurrency(intervals: Iterable[Interval], n_bins: int) -> Histogram:
    """Cycle-weighted concurrency histogram from a set of intervals.

    For every cycle covered by at least one interval, counts how many
    intervals overlap that cycle, and accumulates cycles into the histogram
    bin for that concurrency level.  This is exactly the paper's grAC
    measurement: ``Cycles(lock, grAC=i)``.

    Implemented as an O(n log n) sweep over interval endpoints.
    """
    events: List[Tuple[int, int]] = []
    for iv in intervals:
        if iv.end > iv.start:
            events.append((iv.start, +1))
            events.append((iv.end, -1))
    hist = Histogram(n_bins)
    if not events:
        return hist
    events.sort()
    depth = 0
    prev_t = events[0][0]
    i = 0
    n = len(events)
    while i < n:
        t = events[i][0]
        if depth > 0 and t > prev_t:
            hist.add(depth, t - prev_t)
        while i < n and events[i][0] == t:
            depth += events[i][1]
            i += 1
        prev_t = t
    return hist
