"""CMP configuration dataclasses.

:func:`CMPConfig.baseline` reproduces the paper's Table II:

=====================  =============================
Number of cores        32
Core                   3GHz, in-order 2-way model
Cache line size        64 Bytes
L1 I/D-Cache           32KB, 4-way, 2 cycles
L2 Cache (per core)    256KB, 4-way, 12+4 cycles
Memory access time     400 cycles
Network configuration  2D-mesh
Network bandwidth      75 GB/s
Link width             75 bytes
=====================  =============================

Tiles are laid out row-major on a near-square 2D mesh of width
``ceil(sqrt(C))``; for the paper's 32-core chip this yields a 6x6 grid with
32 populated tiles, which keeps every mesh dimension within the 7-drop
G-line limit the paper assumes (Section III-F).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import Any, Dict, Tuple

__all__ = ["CacheConfig", "NoCConfig", "GLineConfig", "CMPConfig"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    ways: int
    line_bytes: int
    latency: int  # cycles for a hit (tag+data)

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes):
            raise ValueError(
                f"cache size {self.size_bytes} not divisible by "
                f"ways*line ({self.ways}*{self.line_bytes})"
            )
        if self.n_sets & (self.n_sets - 1):
            raise ValueError(f"number of sets must be a power of two, got {self.n_sets}")

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.ways * self.line_bytes)

    @property
    def n_lines(self) -> int:
        """Total line capacity."""
        return self.size_bytes // self.line_bytes

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic plain-dict form (stable key order, JSON-safe)."""
        return {
            "size_bytes": self.size_bytes,
            "ways": self.ways,
            "line_bytes": self.line_bytes,
            "latency": self.latency,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CacheConfig":
        """Inverse of :meth:`to_dict`."""
        return cls(size_bytes=data["size_bytes"], ways=data["ways"],
                   line_bytes=data["line_bytes"], latency=data["latency"])


@dataclass(frozen=True)
class NoCConfig:
    """2D-mesh interconnect parameters.

    ``router_latency`` is the per-hop pipeline delay; messages additionally
    pay a serialization delay of ``ceil(size/link_width_bytes)`` cycles on
    every link, and links are modelled as FIFO resources (a busy link delays
    the next message), which captures burst contention from invalidation
    storms without modelling wormhole flits individually.
    """

    link_width_bytes: int = 75
    router_latency: int = 3
    control_msg_bytes: int = 8
    data_msg_bytes: int = 8 + 64  # header + one cache line

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic plain-dict form (stable key order, JSON-safe)."""
        return {
            "link_width_bytes": self.link_width_bytes,
            "router_latency": self.router_latency,
            "control_msg_bytes": self.control_msg_bytes,
            "data_msg_bytes": self.data_msg_bytes,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "NoCConfig":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


@dataclass(frozen=True)
class GLineConfig:
    """G-line lock-network parameters (Section III)."""

    n_glocks: int = 2  # hardware GLocks provided (paper Section IV-C)
    gline_latency: int = 1  # cycles for a 1-bit signal to cross one G-line
    max_drops: int = 7  # transmitters+receiver supported per G-line
    hierarchical: bool = False  # enable the future-work multi-level tree

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic plain-dict form (stable key order, JSON-safe)."""
        return {
            "n_glocks": self.n_glocks,
            "gline_latency": self.gline_latency,
            "max_drops": self.max_drops,
            "hierarchical": self.hierarchical,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GLineConfig":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


@dataclass(frozen=True)
class CMPConfig:
    """Full chip configuration (Table II baseline by default)."""

    n_cores: int = 32
    clock_ghz: float = 3.0
    line_bytes: int = 64
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 4, 64, 2)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(256 * 1024, 4, 64, 12 + 4)
    )
    memory_latency: int = 400
    noc: NoCConfig = field(default_factory=NoCConfig)
    gline: GLineConfig = field(default_factory=GLineConfig)
    #: "mesi" (the paper's protocol) or "msi" (ablation: no exclusive-clean
    #: state, so private read-then-write pays an Upgrade transaction)
    coherence: str = "mesi"

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError("need at least one core")
        if self.coherence not in ("mesi", "msi"):
            raise ValueError(f"unknown coherence protocol {self.coherence!r}")
        if self.l1.line_bytes != self.line_bytes or self.l2.line_bytes != self.line_bytes:
            raise ValueError("L1/L2 line size must match chip line size")

    # ------------------------------------------------------------------ #
    # mesh geometry
    # ------------------------------------------------------------------ #
    # cached_property works on a frozen dataclass (it writes straight to
    # __dict__, sidestepping the frozen __setattr__) and the cached value
    # never reaches __eq__/__hash__/to_dict, which are field-driven —
    # tile_coords() is called per routed message, so the sqrt must not be
    @cached_property
    def mesh_width(self) -> int:
        """Columns in the tile grid (near-square, row-major layout)."""
        return math.ceil(math.sqrt(self.n_cores))

    @cached_property
    def mesh_height(self) -> int:
        """Rows in the tile grid."""
        return math.ceil(self.n_cores / self.mesh_width)

    def tile_coords(self, core_id: int) -> Tuple[int, int]:
        """(x, y) mesh coordinates of ``core_id``."""
        if not 0 <= core_id < self.n_cores:
            raise ValueError(f"core id {core_id} out of range")
        return core_id % self.mesh_width, core_id // self.mesh_width

    def hop_distance(self, a: int, b: int) -> int:
        """Manhattan hop count between two tiles."""
        ax, ay = self.tile_coords(a)
        bx, by = self.tile_coords(b)
        return abs(ax - bx) + abs(ay - by)

    def with_cores(self, n_cores: int) -> "CMPConfig":
        """Copy of this config with a different core count (Table IV sweeps)."""
        return replace(self, n_cores=n_cores)

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Deterministic plain-dict form.

        Stable key order, only JSON-native value types, and an exact
        :meth:`from_dict` round-trip — the properties the experiment
        engine's content-addressed result cache relies on for spec
        hashing (``repro.runner``).
        """
        return {
            "n_cores": self.n_cores,
            "clock_ghz": self.clock_ghz,
            "line_bytes": self.line_bytes,
            "l1": self.l1.to_dict(),
            "l2": self.l2.to_dict(),
            "memory_latency": self.memory_latency,
            "noc": self.noc.to_dict(),
            "gline": self.gline.to_dict(),
            "coherence": self.coherence,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CMPConfig":
        """Inverse of :meth:`to_dict` (validates like the constructor)."""
        return cls(
            n_cores=data["n_cores"],
            clock_ghz=data["clock_ghz"],
            line_bytes=data["line_bytes"],
            l1=CacheConfig.from_dict(data["l1"]),
            l2=CacheConfig.from_dict(data["l2"]),
            memory_latency=data["memory_latency"],
            noc=NoCConfig.from_dict(data["noc"]),
            gline=GLineConfig.from_dict(data["gline"]),
            coherence=data["coherence"],
        )

    @classmethod
    def baseline(cls, n_cores: int = 32) -> "CMPConfig":
        """The paper's Table II configuration."""
        return cls(n_cores=n_cores)

    @classmethod
    def small(cls, n_cores: int = 4) -> "CMPConfig":
        """A small configuration for fast unit tests (same latencies)."""
        return cls(n_cores=n_cores)

    def describe(self) -> str:
        """Human-readable Table II style summary."""
        rows = [
            ("Number of cores", str(self.n_cores)),
            ("Core", f"{self.clock_ghz}GHz, in-order model"),
            ("Cache line size", f"{self.line_bytes} Bytes"),
            ("L1 D-Cache", f"{self.l1.size_bytes // 1024}KB, {self.l1.ways}-way, "
                           f"{self.l1.latency} cycles"),
            ("L2 Cache (per core)", f"{self.l2.size_bytes // 1024}KB, {self.l2.ways}-way, "
                                    f"{self.l2.latency} cycles"),
            ("Memory access time", f"{self.memory_latency} cycles"),
            ("Network configuration", f"2D-mesh {self.mesh_width}x{self.mesh_height}"),
            ("Link width", f"{self.noc.link_width_bytes} bytes"),
            ("Hardware GLocks", str(self.gline.n_glocks)),
        ]
        width = max(len(k) for k, _ in rows)
        return "\n".join(f"{k:<{width}}  {v}" for k, v in rows)
