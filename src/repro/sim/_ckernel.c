/* Compiled backend for the deterministic event kernel.
 *
 * A CPython C extension mirroring repro.sim._kernel_pure exactly:
 * events execute in (time, seq) order out of a dual queue (binary heap
 * of future events + FIFO ring of same-cycle events), processes are
 * generator coroutines stepped with PyIter_Send, and Signal wakeups are
 * zero-delay events appended in waiter order.  Every error message,
 * ordering rule and diagnostic surface (signal registry, blocked
 * reports, the deadlock watchdog) matches the pure kernel so the two
 * backends are bit-for-bit interchangeable — held to the determinism
 * goldens in tests/test_kernel_determinism.py.
 *
 * Also hosts the component-level accelerators named in the performance
 * notes: the protocol Message record + make_msg, the set-associative
 * TagArray, and MeshCore (XY routing, link reservation and traffic
 * accounting for repro.noc.topology.Mesh).
 *
 * Events here are plain C structs recycled in place inside the queue
 * arrays, so the pure kernel's pooled-_Event free list has no analogue:
 * steady state allocates nothing per event.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include "structmember.h"

/* ------------------------------------------------------------------ */
/* shared state fetched from pure-python modules at init               */
/* ------------------------------------------------------------------ */
static PyObject *SimulationError;     /* repro.sim._kernel_pure */
static PyObject *SimDeadlockError;
static PyObject *chain_hooks_fn;      /* _kernel_pure._chain_hooks */
static PyObject *blocked_report_fn;   /* pure Simulator._blocked_report */
static PyObject *blocked_snapshot_fn; /* pure Simulator._blocked_snapshot */
static PyObject *join_fn;             /* pure Process.join (unbound) */
static PyObject *perf_counter_fn;     /* time.perf_counter */
static PyObject *str__step;           /* "_step" */
static PyObject *str_value;           /* "value" */
static PyObject *str_record;          /* "record" */
static PyObject *str_noc;             /* "noc" */
/* protocol tables installed by repro.mem.protocol via configure_protocol */
static PyObject *proto_category;      /* dict kind -> MsgCategory */
static PyObject *proto_carries;       /* set of data-carrying kinds */

typedef struct CSimulator CSimulator;
typedef struct CSignal CSignal;
typedef struct CProcess CProcess;

static PyTypeObject Simulator_Type;
static PyTypeObject Signal_Type;
static PyTypeObject Process_Type;
static PyTypeObject Message_Type;
static PyTypeObject TagArray_Type;
static PyTypeObject MeshCore_Type;

/* ------------------------------------------------------------------ */
/* events                                                              */
/* ------------------------------------------------------------------ */
#define EV_CALL0 0   /* fn() */
#define EV_CALL1 1   /* fn(arg) */
#define EV_CALLN 2   /* fn(*arg) — arg is a tuple */
#define EV_STEP  3   /* step the Process in fn with arg (NULL = None) */

typedef struct {
    long long time;
    long long seq;
    PyObject *fn;    /* owned */
    PyObject *arg;   /* owned or NULL */
    int kind;
} CEvent;

struct CSimulator {
    PyObject_HEAD
    PyObject *weaklist;
    CEvent *heap;               /* binary heap by (time, seq) */
    Py_ssize_t heap_len, heap_cap;
    CEvent *ready;              /* FIFO ring, (time, seq)-sorted by constr. */
    Py_ssize_t ready_head, ready_len, ready_cap;  /* cap is a power of 2 */
    long long seq;
    long long now;
    long long events_executed;
    long long finish_stamp;
    PyObject *processes;        /* list of Process */
    PyObject *tracer;           /* None or Tracer */
    PyObject *profiler;         /* None or Profiler */
    PyObject *on_event;         /* None or callable(sim) */
    PyObject *signal_registry;  /* NULL (disabled) or list of weakrefs */
    Py_ssize_t registry_compact_at;
    int retain_values;
};

struct CSignal {
    PyObject_HEAD
    PyObject *weaklist;
    CSimulator *sim;            /* owned */
    PyObject *name;             /* str */
    PyObject *waiters;          /* list of Process | callable */
    long long fire_count;
    PyObject *last_value;
};

struct CProcess {
    PyObject_HEAD
    PyObject *weaklist;
    CSimulator *sim;            /* owned */
    PyObject *name;             /* str */
    PyObject *gen;
    PyObject *result;
    CSignal *done;              /* owned */
    PyObject *waiting_on;       /* None or Signal */
    int finished;
};

/* event-queue plumbing ---------------------------------------------- */

static int
heap_grow(CSimulator *s)
{
    Py_ssize_t cap = s->heap_cap ? s->heap_cap * 2 : 64;
    CEvent *mem = PyMem_Realloc(s->heap, (size_t)cap * sizeof(CEvent));
    if (mem == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    s->heap = mem;
    s->heap_cap = cap;
    return 0;
}

static int
ready_grow(CSimulator *s)
{
    Py_ssize_t cap = s->ready_cap ? s->ready_cap * 2 : 64;
    CEvent *mem = PyMem_Malloc((size_t)cap * sizeof(CEvent));
    if (mem == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    /* unwrap the ring into the new array */
    for (Py_ssize_t i = 0; i < s->ready_len; i++)
        mem[i] = s->ready[(s->ready_head + i) & (s->ready_cap - 1)];
    PyMem_Free(s->ready);
    s->ready = mem;
    s->ready_cap = cap;
    s->ready_head = 0;
    return 0;
}

#define EV_BEFORE(a, b) \
    ((a).time < (b).time || ((a).time == (b).time && (a).seq < (b).seq))

/* push an event; steals no references (caller passes borrowed fn/arg,
 * this function increfs).  time == sim->now goes to the ready ring
 * (matching the pure kernel's delay-0 path), future times to the heap. */
static int
csim_push(CSimulator *s, long long time, PyObject *fn, PyObject *arg,
          int kind)
{
    CEvent ev;
    ev.time = time;
    ev.seq = ++s->seq;
    ev.fn = Py_NewRef(fn);
    ev.arg = arg ? Py_NewRef(arg) : NULL;
    ev.kind = kind;
    if (time == s->now) {
        if (s->ready_len == s->ready_cap && ready_grow(s) < 0)
            goto fail;
        s->ready[(s->ready_head + s->ready_len) & (s->ready_cap - 1)] = ev;
        s->ready_len++;
        return 0;
    }
    if (s->heap_len == s->heap_cap && heap_grow(s) < 0)
        goto fail;
    {
        Py_ssize_t i = s->heap_len++;
        while (i > 0) {
            Py_ssize_t parent = (i - 1) / 2;
            if (EV_BEFORE(ev, s->heap[parent])) {
                s->heap[i] = s->heap[parent];
                i = parent;
            }
            else
                break;
        }
        s->heap[i] = ev;
    }
    return 0;
fail:
    Py_DECREF(ev.fn);
    Py_XDECREF(ev.arg);
    return -1;
}

/* pop the heap minimum into *out (caller owns the refs in *out) */
static void
heap_pop(CSimulator *s, CEvent *out)
{
    *out = s->heap[0];
    s->heap_len--;
    if (s->heap_len > 0) {
        CEvent last = s->heap[s->heap_len];
        Py_ssize_t i = 0, n = s->heap_len;
        for (;;) {
            Py_ssize_t child = 2 * i + 1;
            if (child >= n)
                break;
            if (child + 1 < n && EV_BEFORE(s->heap[child + 1], s->heap[child]))
                child++;
            if (EV_BEFORE(s->heap[child], last)) {
                s->heap[i] = s->heap[child];
                i = child;
            }
            else
                break;
        }
        s->heap[i] = last;
    }
}

static void
ready_pop(CSimulator *s, CEvent *out)
{
    *out = s->ready[s->ready_head];
    s->ready_head = (s->ready_head + 1) & (s->ready_cap - 1);
    s->ready_len--;
}

/* ------------------------------------------------------------------ */
/* Signal                                                              */
/* ------------------------------------------------------------------ */

static void
registry_compact(CSimulator *sim)
{
    /* registry[:] = [ref for ref in registry if ref() is not None] */
    PyObject *registry = sim->signal_registry;
    Py_ssize_t n = PyList_GET_SIZE(registry);
    PyObject *keep = PyList_New(0);
    if (keep == NULL)
        return;  /* best-effort housekeeping; the caller's op still worked */
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *ref = PyList_GET_ITEM(registry, i);
        if (PyWeakref_GetObject(ref) != Py_None
                && PyList_Append(keep, ref) < 0) {
            Py_DECREF(keep);
            return;
        }
    }
    if (PyList_SetSlice(registry, 0, PY_SSIZE_T_MAX, keep) == 0) {
        Py_ssize_t kept = PyList_GET_SIZE(keep);
        sim->registry_compact_at = kept * 2 > 256 ? kept * 2 : 256;
    }
    Py_DECREF(keep);
}

/* internal constructor: Signal(sim, name) on the fast path */
static CSignal *
csignal_make(CSimulator *sim, PyObject *name)
{
    CSignal *sig = (CSignal *)Signal_Type.tp_alloc(&Signal_Type, 0);
    if (sig == NULL) {
        Py_DECREF(name);
        return NULL;
    }
    sig->sim = (CSimulator *)Py_NewRef((PyObject *)sim);
    sig->name = name;                     /* steals the reference */
    sig->waiters = PyList_New(0);
    sig->fire_count = 0;
    sig->last_value = Py_NewRef(Py_None);
    if (sig->waiters == NULL) {
        Py_DECREF(sig);
        return NULL;
    }
    if (sim->signal_registry != NULL) {
        PyObject *ref = PyWeakref_NewRef((PyObject *)sig, NULL);
        if (ref == NULL || PyList_Append(sim->signal_registry, ref) < 0) {
            Py_XDECREF(ref);
            Py_DECREF(sig);
            return NULL;
        }
        Py_DECREF(ref);
        if (PyList_GET_SIZE(sim->signal_registry) > sim->registry_compact_at)
            registry_compact(sim);
    }
    return sig;
}

static int
csignal_init(CSignal *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"sim", "name", NULL};
    PyObject *simobj, *name = NULL;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O!|U:Signal", kwlist,
                                     &Simulator_Type, &simobj, &name))
        return -1;
    CSimulator *sim = (CSimulator *)simobj;
    if (name == NULL) {
        name = PyUnicode_New(0, 0);
        if (name == NULL)
            return -1;
    }
    else
        Py_INCREF(name);
    PyObject *waiters = PyList_New(0);
    if (waiters == NULL) {
        Py_DECREF(name);
        return -1;
    }
    Py_XSETREF(self->sim, (CSimulator *)Py_NewRef(simobj));
    Py_XSETREF(self->name, name);
    Py_XSETREF(self->waiters, waiters);
    self->fire_count = 0;
    Py_XSETREF(self->last_value, Py_NewRef(Py_None));
    if (sim->signal_registry != NULL) {
        PyObject *ref = PyWeakref_NewRef((PyObject *)self, NULL);
        if (ref == NULL || PyList_Append(sim->signal_registry, ref) < 0) {
            Py_XDECREF(ref);
            return -1;
        }
        Py_DECREF(ref);
        if (PyList_GET_SIZE(sim->signal_registry) > sim->registry_compact_at)
            registry_compact(sim);
    }
    return 0;
}

/* fire the signal: wake every currently-registered waiter with `value`
 * as zero-delay events, in registration order. */
static int
csignal_fire_impl(CSignal *sig, PyObject *value)
{
    sig->fire_count++;
    CSimulator *sim = sig->sim;
    if (sim->retain_values || sim->tracer != Py_None)
        Py_XSETREF(sig->last_value, Py_NewRef(value));
    PyObject *waiters = sig->waiters;
    Py_ssize_t n = PyList_GET_SIZE(waiters);
    if (n == 0)
        return 0;
    PyObject *fresh = PyList_New(0);
    if (fresh == NULL)
        return -1;
    sig->waiters = fresh;           /* steal: we own the old list now */
    int rc = 0;
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *w = PyList_GET_ITEM(waiters, i);
        int kind = Py_IS_TYPE(w, &Process_Type) ? EV_STEP : EV_CALL1;
        if (csim_push(sim, sim->now, w, value, kind) < 0) {
            rc = -1;
            break;
        }
    }
    Py_DECREF(waiters);
    return rc;
}

static PyObject *
csignal_fire(CSignal *self, PyObject *args)
{
    PyObject *value = Py_None;
    if (!PyArg_ParseTuple(args, "|O:fire", &value))
        return NULL;
    if (csignal_fire_impl(self, value) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
csignal_add_callback(CSignal *self, PyObject *fn)
{
    if (PyList_Append(self->waiters, fn) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
csignal_repr(CSignal *self)
{
    return PyUnicode_FromFormat("Signal(%R, waiters=%zd)", self->name,
                                PyList_GET_SIZE(self->waiters));
}

static PyObject *
csignal_get_n_waiters(CSignal *self, void *closure)
{
    return PyLong_FromSsize_t(PyList_GET_SIZE(self->waiters));
}

static PyObject *
csignal_get_fire_count(CSignal *self, void *closure)
{
    return PyLong_FromLongLong(self->fire_count);
}

static int
csignal_traverse(CSignal *self, visitproc visit, void *arg)
{
    Py_VISIT(self->sim);
    Py_VISIT(self->waiters);
    Py_VISIT(self->last_value);
    return 0;
}

static int
csignal_clear(CSignal *self)
{
    Py_CLEAR(self->sim);
    Py_CLEAR(self->name);
    Py_CLEAR(self->waiters);
    Py_CLEAR(self->last_value);
    return 0;
}

static void
csignal_dealloc(CSignal *self)
{
    PyObject_GC_UnTrack(self);
    if (self->weaklist != NULL)
        PyObject_ClearWeakRefs((PyObject *)self);
    csignal_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyMethodDef csignal_methods[] = {
    {"fire", (PyCFunction)csignal_fire, METH_VARARGS,
     "Wake all registered waiters with ``value`` at the current cycle."},
    {"add_callback", (PyCFunction)csignal_add_callback, METH_O,
     "Register ``fn(value)`` to run (once) the next time the signal fires."},
    {NULL}
};

static PyMemberDef csignal_members[] = {
    {"sim", T_OBJECT, offsetof(CSignal, sim), READONLY, NULL},
    {"name", T_OBJECT, offsetof(CSignal, name), READONLY, NULL},
    {"_waiters", T_OBJECT, offsetof(CSignal, waiters), READONLY, NULL},
    {"last_value", T_OBJECT, offsetof(CSignal, last_value), READONLY, NULL},
    {NULL}
};

static PyGetSetDef csignal_getsets[] = {
    {"n_waiters", (getter)csignal_get_n_waiters, NULL,
     "Number of waiters currently registered.", NULL},
    {"fire_count", (getter)csignal_get_fire_count, NULL, NULL, NULL},
    {NULL}
};

static PyTypeObject Signal_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ckernel.Signal",
    .tp_basicsize = sizeof(CSignal),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC
                | Py_TPFLAGS_BASETYPE,
    .tp_doc = "A one-to-many wake-up point (compiled backend).",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)csignal_init,
    .tp_dealloc = (destructor)csignal_dealloc,
    .tp_traverse = (traverseproc)csignal_traverse,
    .tp_clear = (inquiry)csignal_clear,
    .tp_repr = (reprfunc)csignal_repr,
    .tp_weaklistoffset = offsetof(CSignal, weaklist),
    .tp_methods = csignal_methods,
    .tp_members = csignal_members,
    .tp_getset = csignal_getsets,
};

/* ------------------------------------------------------------------ */
/* Process                                                             */
/* ------------------------------------------------------------------ */

/* Advance the generator one step; `value` may be NULL (= send None).
 * Mirrors pure Process._step including every error message. */
static int
process_step(CProcess *p, PyObject *value)
{
    if (p->finished)
        return 0;
    Py_XSETREF(p->waiting_on, Py_NewRef(Py_None));
    PyObject *item;
    PySendResult sr = PyIter_Send(p->gen, value ? value : Py_None, &item);
    if (sr == PYGEN_ERROR)
        return -1;
    if (sr == PYGEN_RETURN) {
        p->finished = 1;
        Py_XSETREF(p->result, item);   /* steals the returned reference */
        p->sim->finish_stamp++;
        return csignal_fire_impl(p->done, item);
    }
    /* PYGEN_NEXT: dispatch the yielded item (exact types first — this
     * is also how bool is excluded on the fast path) */
    if (PyLong_CheckExact(item)) {
        long long delay = PyLong_AsLongLong(item);
        if (delay == -1 && PyErr_Occurred()) {
            Py_DECREF(item);
            return -1;
        }
        if (delay < 0) {
            PyObject *msg = PyUnicode_FromFormat(
                "process %R yielded negative delay %lld", p->name, delay);
            if (msg != NULL) {
                PyErr_SetObject(SimulationError, msg);
                Py_DECREF(msg);
            }
            Py_DECREF(item);
            return -1;
        }
        Py_DECREF(item);
        return csim_push(p->sim, p->sim->now + delay, (PyObject *)p, NULL,
                         EV_STEP);
    }
    if (Py_IS_TYPE(item, &Signal_Type)) {
        Py_XSETREF(p->waiting_on, item);          /* steals item */
        return PyList_Append(((CSignal *)item)->waiters, (PyObject *)p);
    }
    /* slow path: subclasses and type errors */
    if (PyBool_Check(item)) {
        PyObject *msg = PyUnicode_FromFormat(
            "process %R yielded a bool (%S); yield an int delay or a Signal",
            p->name, item);
        if (msg != NULL) {
            PyErr_SetObject(SimulationError, msg);
            Py_DECREF(msg);
        }
        Py_DECREF(item);
        return -1;
    }
    if (PyLong_Check(item)) {
        long long delay = PyLong_AsLongLong(item);
        if (delay == -1 && PyErr_Occurred()) {
            Py_DECREF(item);
            return -1;
        }
        if (delay < 0) {
            PyObject *msg = PyUnicode_FromFormat(
                "process %R yielded negative delay %lld", p->name, delay);
            if (msg != NULL) {
                PyErr_SetObject(SimulationError, msg);
                Py_DECREF(msg);
            }
            Py_DECREF(item);
            return -1;
        }
        Py_DECREF(item);
        return csim_push(p->sim, p->sim->now + delay, (PyObject *)p, NULL,
                         EV_STEP);
    }
    if (PyObject_TypeCheck(item, &Signal_Type)) {
        Py_XSETREF(p->waiting_on, item);
        return PyList_Append(((CSignal *)item)->waiters, (PyObject *)p);
    }
    PyObject *msg = PyUnicode_FromFormat(
        "process %R yielded unsupported item %R; "
        "yield an int delay or a Signal", p->name, item);
    if (msg != NULL) {
        PyErr_SetObject(SimulationError, msg);
        Py_DECREF(msg);
    }
    Py_DECREF(item);
    return -1;
}

static int
cprocess_init(CProcess *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"sim", "gen", "name", NULL};
    PyObject *simobj, *gen, *name = NULL;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O!O|U:Process", kwlist,
                                     &Simulator_Type, &simobj, &gen, &name))
        return -1;
    if (name == NULL) {
        name = PyUnicode_New(0, 0);
        if (name == NULL)
            return -1;
    }
    else
        Py_INCREF(name);
    PyObject *done_name = PyUnicode_FromFormat("%U.done", name);
    if (done_name == NULL) {
        Py_DECREF(name);
        return -1;
    }
    CSignal *done = csignal_make((CSimulator *)simobj, done_name);
    if (done == NULL) {
        Py_DECREF(name);
        return -1;
    }
    Py_XSETREF(self->sim, (CSimulator *)Py_NewRef(simobj));
    Py_XSETREF(self->name, name);
    Py_XSETREF(self->gen, Py_NewRef(gen));
    self->finished = 0;
    Py_XSETREF(self->result, Py_NewRef(Py_None));
    Py_XSETREF(self->done, done);
    Py_XSETREF(self->waiting_on, Py_NewRef(Py_None));
    return 0;
}

static PyObject *
cprocess__step(CProcess *self, PyObject *args)
{
    PyObject *value = Py_None;
    if (!PyArg_ParseTuple(args, "|O:_step", &value))
        return NULL;
    if (process_step(self, value) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
cprocess_join(CProcess *self, PyObject *Py_UNUSED(ignored))
{
    /* the pure kernel's Process.join generator is duck-typed over
     * (finished, done, result) — reuse it verbatim */
    return PyObject_CallOneArg(join_fn, (PyObject *)self);
}

static PyObject *
cprocess_repr(CProcess *self)
{
    return PyUnicode_FromFormat("Process(%R, %s)", self->name,
                                self->finished ? "finished" : "running");
}

static PyObject *
cprocess_get_finished(CProcess *self, void *closure)
{
    return PyBool_FromLong(self->finished);
}

static int
cprocess_traverse(CProcess *self, visitproc visit, void *arg)
{
    Py_VISIT(self->sim);
    Py_VISIT(self->gen);
    Py_VISIT(self->result);
    Py_VISIT(self->done);
    Py_VISIT(self->waiting_on);
    return 0;
}

static int
cprocess_clear(CProcess *self)
{
    Py_CLEAR(self->sim);
    Py_CLEAR(self->name);
    Py_CLEAR(self->gen);
    Py_CLEAR(self->result);
    Py_CLEAR(self->done);
    Py_CLEAR(self->waiting_on);
    return 0;
}

static void
cprocess_dealloc(CProcess *self)
{
    PyObject_GC_UnTrack(self);
    if (self->weaklist != NULL)
        PyObject_ClearWeakRefs((PyObject *)self);
    cprocess_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyMethodDef cprocess_methods[] = {
    {"_step", (PyCFunction)cprocess__step, METH_VARARGS, NULL},
    {"join", (PyCFunction)cprocess_join, METH_NOARGS,
     "Generator usable as ``result = yield from proc.join()``."},
    {NULL}
};

static PyMemberDef cprocess_members[] = {
    {"sim", T_OBJECT, offsetof(CProcess, sim), READONLY, NULL},
    {"name", T_OBJECT, offsetof(CProcess, name), READONLY, NULL},
    {"result", T_OBJECT, offsetof(CProcess, result), READONLY, NULL},
    {"done", T_OBJECT, offsetof(CProcess, done), READONLY, NULL},
    {"waiting_on", T_OBJECT, offsetof(CProcess, waiting_on), READONLY, NULL},
    {NULL}
};

static PyGetSetDef cprocess_getsets[] = {
    {"finished", (getter)cprocess_get_finished, NULL, NULL, NULL},
    {NULL}
};

static PyTypeObject Process_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    /* __name__ must be "Process": the profiler attributes events whose
     * callback owner's type is literally named Process */
    .tp_name = "repro.sim._ckernel.Process",
    .tp_basicsize = sizeof(CProcess),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC
                | Py_TPFLAGS_BASETYPE,
    .tp_doc = "Drives a generator coroutine (compiled backend).",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)cprocess_init,
    .tp_dealloc = (destructor)cprocess_dealloc,
    .tp_traverse = (traverseproc)cprocess_traverse,
    .tp_clear = (inquiry)cprocess_clear,
    .tp_repr = (reprfunc)cprocess_repr,
    .tp_weaklistoffset = offsetof(CProcess, weaklist),
    .tp_methods = cprocess_methods,
    .tp_members = cprocess_members,
    .tp_getset = cprocess_getsets,
};

/* ------------------------------------------------------------------ */
/* Simulator                                                           */
/* ------------------------------------------------------------------ */

static int
csim_init(CSimulator *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"profile", NULL};
    PyObject *profile = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|O:Simulator", kwlist,
                                     &profile))
        return -1;
    self->heap = NULL;
    self->heap_len = self->heap_cap = 0;
    self->ready = NULL;
    self->ready_head = self->ready_len = self->ready_cap = 0;
    self->seq = 0;
    self->now = 0;
    self->events_executed = 0;
    self->finish_stamp = 0;
    Py_XSETREF(self->processes, PyList_New(0));
    Py_XSETREF(self->tracer, Py_NewRef(Py_None));
    Py_XSETREF(self->profiler,
               Py_NewRef(profile == NULL ? Py_None : profile));
    Py_XSETREF(self->on_event, Py_NewRef(Py_None));
    Py_CLEAR(self->signal_registry);
    self->registry_compact_at = 256;
    self->retain_values = 0;
    return self->processes == NULL ? -1 : 0;
}

/* parse (delay_or_time, fn, *args) into an event push */
static PyObject *
csim_schedule_common(CSimulator *self, PyObject *args, int absolute)
{
    Py_ssize_t n = PyTuple_GET_SIZE(args);
    if (n < 2) {
        PyErr_Format(PyExc_TypeError, "%s expected at least 2 arguments",
                     absolute ? "schedule_at" : "schedule");
        return NULL;
    }
    long long t = PyLong_AsLongLong(PyTuple_GET_ITEM(args, 0));
    if (t == -1 && PyErr_Occurred())
        return NULL;
    long long time;
    if (absolute) {
        if (t < self->now) {
            PyObject *msg = PyUnicode_FromFormat(
                "cannot schedule in the past (%lld < %lld)", t, self->now);
            if (msg != NULL) {
                PyErr_SetObject(SimulationError, msg);
                Py_DECREF(msg);
            }
            return NULL;
        }
        time = t;
    }
    else {
        if (t < 0) {
            PyObject *msg = PyUnicode_FromFormat("negative delay %lld", t);
            if (msg != NULL) {
                PyErr_SetObject(SimulationError, msg);
                Py_DECREF(msg);
            }
            return NULL;
        }
        time = self->now + t;
    }
    PyObject *fn = PyTuple_GET_ITEM(args, 1);
    int rc;
    if (n == 2)
        rc = csim_push(self, time, fn, NULL, EV_CALL0);
    else if (n == 3)
        rc = csim_push(self, time, fn, PyTuple_GET_ITEM(args, 2), EV_CALL1);
    else {
        PyObject *rest = PyTuple_GetSlice(args, 2, n);
        if (rest == NULL)
            return NULL;
        rc = csim_push(self, time, fn, rest, EV_CALLN);
        Py_DECREF(rest);
    }
    if (rc < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
csim_schedule(CSimulator *self, PyObject *args)
{
    return csim_schedule_common(self, args, 0);
}

static PyObject *
csim_schedule_at(CSimulator *self, PyObject *args)
{
    return csim_schedule_common(self, args, 1);
}

static PyObject *
csim_signal(CSimulator *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"name", NULL};
    PyObject *name = NULL;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|U:signal", kwlist, &name))
        return NULL;
    if (name == NULL) {
        name = PyUnicode_New(0, 0);
        if (name == NULL)
            return NULL;
    }
    else
        Py_INCREF(name);
    return (PyObject *)csignal_make(self, name);
}

static PyObject *
csim_spawn(CSimulator *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"gen", "name", NULL};
    PyObject *gen, *name = NULL;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O|U:spawn", kwlist,
                                     &gen, &name))
        return NULL;
    if (name == NULL || PyUnicode_GET_LENGTH(name) == 0)
        name = PyUnicode_FromFormat("proc%zd",
                                    PyList_GET_SIZE(self->processes));
    else
        Py_INCREF(name);
    if (name == NULL)
        return NULL;
    CProcess *proc = (CProcess *)Process_Type.tp_alloc(&Process_Type, 0);
    if (proc == NULL) {
        Py_DECREF(name);
        return NULL;
    }
    PyObject *done_name = PyUnicode_FromFormat("%U.done", name);
    if (done_name == NULL)
        goto fail;
    CSignal *done = csignal_make(self, done_name);
    if (done == NULL)
        goto fail;
    proc->sim = (CSimulator *)Py_NewRef((PyObject *)self);
    proc->name = name;
    proc->gen = Py_NewRef(gen);
    proc->finished = 0;
    proc->result = Py_NewRef(Py_None);
    proc->done = done;
    proc->waiting_on = Py_NewRef(Py_None);
    if (PyList_Append(self->processes, (PyObject *)proc) < 0
            || csim_push(self, self->now, (PyObject *)proc, NULL,
                         EV_STEP) < 0) {
        Py_DECREF(proc);
        return NULL;
    }
    return (PyObject *)proc;
fail:
    Py_DECREF(name);
    Py_DECREF(proc);
    return NULL;
}

/* run one popped event; consumes cur's references.  Returns -1 with an
 * exception set on failure. */
static int
csim_exec(CSimulator *s, CEvent *cur)
{
    int rc = 0;
    PyObject *res = NULL;
    if (s->profiler == Py_None) {
        switch (cur->kind) {
        case EV_STEP:
            rc = process_step((CProcess *)cur->fn, cur->arg);
            break;
        case EV_CALL0:
            res = PyObject_CallNoArgs(cur->fn);
            break;
        case EV_CALL1:
            res = PyObject_CallOneArg(cur->fn, cur->arg);
            break;
        default:
            res = PyObject_Call(cur->fn, cur->arg, NULL);
            break;
        }
        if (res == NULL && cur->kind != EV_STEP)
            rc = -1;
        Py_XDECREF(res);
    }
    else {
        /* profiled path: wall-time the callback and attribute it by the
         * same key the pure kernel uses (the callable; for process
         * steps, the bound _step method whose __self__ is the Process) */
        PyObject *fnobj;
        if (cur->kind == EV_STEP)
            fnobj = PyObject_GetAttr(cur->fn, str__step);
        else
            fnobj = Py_NewRef(cur->fn);
        if (fnobj == NULL)
            rc = -1;
        else {
            PyObject *t0 = PyObject_CallNoArgs(perf_counter_fn);
            if (t0 == NULL)
                rc = -1;
            else {
                switch (cur->kind) {
                case EV_STEP:
                    rc = process_step((CProcess *)cur->fn, cur->arg);
                    break;
                case EV_CALL0:
                    res = PyObject_CallNoArgs(cur->fn);
                    break;
                case EV_CALL1:
                    res = PyObject_CallOneArg(cur->fn, cur->arg);
                    break;
                default:
                    res = PyObject_Call(cur->fn, cur->arg, NULL);
                    break;
                }
                if (res == NULL && cur->kind != EV_STEP)
                    rc = -1;
                Py_XDECREF(res);
                if (rc == 0) {
                    PyObject *t1 = PyObject_CallNoArgs(perf_counter_fn);
                    if (t1 == NULL)
                        rc = -1;
                    else {
                        double dt = PyFloat_AsDouble(t1)
                                    - PyFloat_AsDouble(t0);
                        Py_DECREF(t1);
                        PyObject *tm = PyLong_FromLongLong(cur->time);
                        PyObject *wl = PyFloat_FromDouble(dt);
                        if (tm == NULL || wl == NULL)
                            rc = -1;
                        else {
                            PyObject *r = PyObject_CallMethodObjArgs(
                                s->profiler, str_record, fnobj, tm, wl,
                                NULL);
                            if (r == NULL)
                                rc = -1;
                            Py_XDECREF(r);
                        }
                        Py_XDECREF(tm);
                        Py_XDECREF(wl);
                    }
                }
                Py_DECREF(t0);
            }
            Py_DECREF(fnobj);
        }
    }
    Py_DECREF(cur->fn);
    Py_XDECREF(cur->arg);
    return rc;
}

/* peek the globally next event without popping.  Returns 0 when both
 * queues are empty; otherwise sets *from_heap and *time_out. */
static inline int
csim_peek(CSimulator *s, int *from_heap, long long *time_out)
{
    if (s->ready_len > 0) {
        CEvent *ev = &s->ready[s->ready_head];
        *from_heap = 0;
        if (s->heap_len > 0) {
            CEvent *h = &s->heap[0];
            if (h->time < ev->time
                    || (h->time == ev->time && h->seq < ev->seq)) {
                *from_heap = 1;
                *time_out = h->time;
                return 1;
            }
        }
        *time_out = ev->time;
        return 1;
    }
    if (s->heap_len > 0) {
        *from_heap = 1;
        *time_out = s->heap[0].time;
        return 1;
    }
    return 0;
}

static PyObject *
csim_run(CSimulator *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"until", "max_events", NULL};
    PyObject *until_obj = Py_None, *max_events_obj = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|OO:run", kwlist,
                                     &until_obj, &max_events_obj))
        return NULL;
    int has_until = until_obj != Py_None;
    int has_max = max_events_obj != Py_None;
    long long until = 0, max_events = 0;
    if (has_until) {
        until = PyLong_AsLongLong(until_obj);
        if (until == -1 && PyErr_Occurred())
            return NULL;
    }
    if (has_max) {
        max_events = PyLong_AsLongLong(max_events_obj);
        if (max_events == -1 && PyErr_Occurred())
            return NULL;
    }
    /* the checkpoint hook attaches/detaches only between runs */
    PyObject *on_event = Py_NewRef(self->on_event);
    long long executed = 0;
    for (;;) {
        int from_heap;
        long long time;
        if (!csim_peek(self, &from_heap, &time))
            break;
        if (has_until && time > until) {
            self->now = until;
            break;
        }
        CEvent cur;
        if (from_heap)
            heap_pop(self, &cur);
        else
            ready_pop(self, &cur);
        self->now = time;
        if (csim_exec(self, &cur) < 0) {
            Py_DECREF(on_event);
            return NULL;
        }
        executed++;
        if (on_event != Py_None) {
            PyObject *r = PyObject_CallOneArg(on_event, (PyObject *)self);
            if (r == NULL) {
                Py_DECREF(on_event);
                return NULL;
            }
            Py_DECREF(r);
        }
        if (has_max && executed >= max_events) {
            self->events_executed += executed;
            Py_DECREF(on_event);
            PyObject *msg = PyUnicode_FromFormat(
                "exceeded max_events=%lld at cycle %lld", max_events,
                self->now);
            if (msg != NULL) {
                PyErr_SetObject(SimulationError, msg);
                Py_DECREF(msg);
            }
            return NULL;
        }
    }
    Py_DECREF(on_event);
    self->events_executed += executed;
    return PyLong_FromLongLong(self->now);
}

/* raise SimDeadlockError with the pure kernel's message and structured
 * blocked snapshot; `prefix_fmt` must contain exactly one %U (report). */
static void
raise_deadlock_watchdog(PyObject *procs, long long max_cycles)
{
    PyObject *report = PyObject_CallOneArg(blocked_report_fn, procs);
    PyObject *snapshot = PyObject_CallOneArg(blocked_snapshot_fn, procs);
    if (report == NULL || snapshot == NULL)
        goto done;
    PyObject *msg = PyUnicode_FromFormat(
        "deadlock watchdog: exceeded max_cycles=%lld "
        "with blocked processes: %U", max_cycles, report);
    if (msg == NULL)
        goto done;
    PyObject *exc = PyObject_CallFunctionObjArgs(SimDeadlockError, msg,
                                                 snapshot, NULL);
    Py_DECREF(msg);
    if (exc != NULL) {
        PyErr_SetObject(SimDeadlockError, exc);
        Py_DECREF(exc);
    }
done:
    Py_XDECREF(report);
    Py_XDECREF(snapshot);
}

static void
raise_deadlock_drained(PyObject *procs)
{
    PyObject *report = PyObject_CallOneArg(blocked_report_fn, procs);
    PyObject *snapshot = PyObject_CallOneArg(blocked_snapshot_fn, procs);
    if (report == NULL || snapshot == NULL)
        goto done;
    PyObject *msg = PyUnicode_FromFormat(
        "event queue drained with unfinished processes: %U", report);
    if (msg == NULL)
        goto done;
    PyObject *exc = PyObject_CallFunctionObjArgs(SimDeadlockError, msg,
                                                 snapshot, NULL);
    Py_DECREF(msg);
    if (exc != NULL) {
        PyErr_SetObject(SimDeadlockError, exc);
        Py_DECREF(exc);
    }
done:
    Py_XDECREF(report);
    Py_XDECREF(snapshot);
}

static int
proc_is_finished(PyObject *p)
{
    if (Py_IS_TYPE(p, &Process_Type))
        return ((CProcess *)p)->finished;
    PyObject *f = PyObject_GetAttrString(p, "finished");
    if (f == NULL)
        return -1;
    int rc = PyObject_IsTrue(f);
    Py_DECREF(f);
    return rc;
}

static PyObject *
csim_run_until_processes_finish(CSimulator *self, PyObject *args,
                                PyObject *kwds)
{
    static char *kwlist[] = {"procs", "max_events", "max_cycles", NULL};
    PyObject *procs_in, *max_events_obj = Py_None, *max_cycles_obj = Py_None;
    if (!PyArg_ParseTupleAndKeywords(
            args, kwds, "O|OO:run_until_processes_finish", kwlist,
            &procs_in, &max_events_obj, &max_cycles_obj))
        return NULL;
    int has_max = max_events_obj != Py_None;
    int has_cycles = max_cycles_obj != Py_None;
    long long max_events = 0, max_cycles = 0;
    if (has_max) {
        max_events = PyLong_AsLongLong(max_events_obj);
        if (max_events == -1 && PyErr_Occurred())
            return NULL;
    }
    if (has_cycles) {
        max_cycles = PyLong_AsLongLong(max_cycles_obj);
        if (max_cycles == -1 && PyErr_Occurred())
            return NULL;
    }
    PyObject *procs = PySequence_List(procs_in);
    if (procs == NULL)
        return NULL;
    PyObject *on_event = Py_NewRef(self->on_event);
    PyObject *result = NULL;
    long long executed = 0;
    /* re-evaluate the all-finished predicate only when some process
     * completed (the kernel's finish stamp moved) */
    long long stamp = self->finish_stamp - 1;
    for (;;) {
        if (stamp != self->finish_stamp) {
            stamp = self->finish_stamp;
            int all_done = 1;
            Py_ssize_t n = PyList_GET_SIZE(procs);
            for (Py_ssize_t i = 0; i < n; i++) {
                int f = proc_is_finished(PyList_GET_ITEM(procs, i));
                if (f < 0)
                    goto finally;
                if (!f) {
                    all_done = 0;
                    break;
                }
            }
            if (all_done) {
                result = PyLong_FromLongLong(self->now);
                goto finally;
            }
        }
        int from_heap;
        long long time;
        if (!csim_peek(self, &from_heap, &time))
            break;
        if (has_cycles && time > max_cycles) {
            self->now = max_cycles;
            raise_deadlock_watchdog(procs, max_cycles);
            goto finally;
        }
        CEvent cur;
        if (from_heap)
            heap_pop(self, &cur);
        else
            ready_pop(self, &cur);
        self->now = time;
        if (csim_exec(self, &cur) < 0)
            goto finally;
        executed++;
        if (on_event != Py_None) {
            PyObject *r = PyObject_CallOneArg(on_event, (PyObject *)self);
            if (r == NULL)
                goto finally;
            Py_DECREF(r);
        }
        if (has_max && executed >= max_events) {
            PyObject *msg = PyUnicode_FromFormat(
                "exceeded max_events=%lld at cycle %lld", max_events,
                self->now);
            if (msg != NULL) {
                PyErr_SetObject(SimulationError, msg);
                Py_DECREF(msg);
            }
            goto finally;
        }
    }
    /* queue drained: every proc must have finished */
    {
        int any_unfinished = 0;
        Py_ssize_t n = PyList_GET_SIZE(procs);
        for (Py_ssize_t i = 0; i < n; i++) {
            int f = proc_is_finished(PyList_GET_ITEM(procs, i));
            if (f < 0)
                goto finally;
            if (!f) {
                any_unfinished = 1;
                break;
            }
        }
        if (any_unfinished)
            raise_deadlock_drained(procs);
        else
            result = PyLong_FromLongLong(self->now);
    }
finally:
    self->events_executed += executed;
    Py_DECREF(on_event);
    Py_DECREF(procs);
    return result;
}

static PyObject *
csim_enable_signal_registry(CSimulator *self, PyObject *Py_UNUSED(ignored))
{
    if (self->signal_registry == NULL) {
        self->signal_registry = PyList_New(0);
        if (self->signal_registry == NULL)
            return NULL;
    }
    self->retain_values = 1;
    Py_RETURN_NONE;
}

static PyObject *
csim_live_signals(CSimulator *self, PyObject *Py_UNUSED(ignored))
{
    if (self->signal_registry == NULL)
        return PyList_New(0);
    PyObject *alive = PyList_New(0);
    PyObject *refs = PyList_New(0);
    if (alive == NULL || refs == NULL)
        goto fail;
    Py_ssize_t n = PyList_GET_SIZE(self->signal_registry);
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *ref = PyList_GET_ITEM(self->signal_registry, i);
        PyObject *sig = PyWeakref_GetObject(ref);
        if (sig != Py_None) {
            if (PyList_Append(alive, sig) < 0
                    || PyList_Append(refs, ref) < 0)
                goto fail;
        }
    }
    Py_SETREF(self->signal_registry, refs);
    {
        Py_ssize_t kept = PyList_GET_SIZE(self->signal_registry);
        self->registry_compact_at = kept * 2 > 256 ? kept * 2 : 256;
    }
    return alive;
fail:
    Py_XDECREF(alive);
    Py_XDECREF(refs);
    return NULL;
}

static PyObject *
csim_add_on_event(CSimulator *self, PyObject *fn)
{
    /* same composition logic as the pure kernel (shared _chain_hooks) */
    if (self->on_event == Py_None) {
        Py_SETREF(self->on_event, Py_NewRef(fn));
        Py_RETURN_NONE;
    }
    PyObject *hooks = PyObject_GetAttrString(self->on_event, "_hooks");
    PyObject *lst;
    if (hooks == NULL) {
        PyErr_Clear();
        lst = PyList_New(0);
        if (lst == NULL || PyList_Append(lst, self->on_event) < 0) {
            Py_XDECREF(lst);
            return NULL;
        }
    }
    else {
        lst = PySequence_List(hooks);
        Py_DECREF(hooks);
        if (lst == NULL)
            return NULL;
    }
    if (PyList_Append(lst, fn) < 0) {
        Py_DECREF(lst);
        return NULL;
    }
    PyObject *chain = PyObject_CallOneArg(chain_hooks_fn, lst);
    Py_DECREF(lst);
    if (chain == NULL)
        return NULL;
    Py_SETREF(self->on_event, chain);
    Py_RETURN_NONE;
}

static PyObject *
csim_remove_on_event(CSimulator *self, PyObject *fn)
{
    if (self->on_event == Py_None)
        Py_RETURN_NONE;
    PyObject *hooks = PyObject_GetAttrString(self->on_event, "_hooks");
    PyObject *lst;
    if (hooks == NULL) {
        PyErr_Clear();
        lst = PyList_New(0);
        if (lst == NULL || PyList_Append(lst, self->on_event) < 0) {
            Py_XDECREF(lst);
            return NULL;
        }
    }
    else {
        lst = PySequence_List(hooks);
        Py_DECREF(hooks);
        if (lst == NULL)
            return NULL;
    }
    PyObject *kept = PyList_New(0);
    if (kept == NULL) {
        Py_DECREF(lst);
        return NULL;
    }
    Py_ssize_t n = PyList_GET_SIZE(lst);
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *h = PyList_GET_ITEM(lst, i);
        int eq = PyObject_RichCompareBool(h, fn, Py_EQ);
        if (eq < 0) {
            Py_DECREF(lst);
            Py_DECREF(kept);
            return NULL;
        }
        if (!eq && PyList_Append(kept, h) < 0) {
            Py_DECREF(lst);
            Py_DECREF(kept);
            return NULL;
        }
    }
    Py_DECREF(lst);
    Py_ssize_t kn = PyList_GET_SIZE(kept);
    if (kn == 0)
        Py_SETREF(self->on_event, Py_NewRef(Py_None));
    else if (kn == 1)
        Py_SETREF(self->on_event, Py_NewRef(PyList_GET_ITEM(kept, 0)));
    else {
        PyObject *chain = PyObject_CallOneArg(chain_hooks_fn, kept);
        if (chain == NULL) {
            Py_DECREF(kept);
            return NULL;
        }
        Py_SETREF(self->on_event, chain);
    }
    Py_DECREF(kept);
    Py_RETURN_NONE;
}

static PyObject *
csim_repr(CSimulator *self)
{
    return PyUnicode_FromFormat("Simulator(now=%lld, pending=%zd)",
                                self->now, self->heap_len + self->ready_len);
}

static PyObject *
csim_get_now(CSimulator *self, void *closure)
{
    return PyLong_FromLongLong(self->now);
}

static PyObject *
csim_get_events_executed(CSimulator *self, void *closure)
{
    return PyLong_FromLongLong(self->events_executed);
}

static PyObject *
csim_get_pending(CSimulator *self, void *closure)
{
    return PyLong_FromSsize_t(self->heap_len + self->ready_len);
}

static PyObject *
csim_get_registry(CSimulator *self, void *closure)
{
    if (self->signal_registry == NULL)
        Py_RETURN_NONE;
    return Py_NewRef(self->signal_registry);
}

static int
csim_traverse(CSimulator *self, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < self->heap_len; i++) {
        Py_VISIT(self->heap[i].fn);
        Py_VISIT(self->heap[i].arg);
    }
    for (Py_ssize_t i = 0; i < self->ready_len; i++) {
        CEvent *ev = &self->ready[(self->ready_head + i)
                                  & (self->ready_cap - 1)];
        Py_VISIT(ev->fn);
        Py_VISIT(ev->arg);
    }
    Py_VISIT(self->processes);
    Py_VISIT(self->tracer);
    Py_VISIT(self->profiler);
    Py_VISIT(self->on_event);
    Py_VISIT(self->signal_registry);
    return 0;
}

static int
csim_clear(CSimulator *self)
{
    for (Py_ssize_t i = 0; i < self->heap_len; i++) {
        Py_CLEAR(self->heap[i].fn);
        Py_CLEAR(self->heap[i].arg);
    }
    self->heap_len = 0;
    for (Py_ssize_t i = 0; i < self->ready_len; i++) {
        CEvent *ev = &self->ready[(self->ready_head + i)
                                  & (self->ready_cap - 1)];
        Py_CLEAR(ev->fn);
        Py_CLEAR(ev->arg);
    }
    self->ready_len = 0;
    Py_CLEAR(self->processes);
    Py_CLEAR(self->tracer);
    Py_CLEAR(self->profiler);
    Py_CLEAR(self->on_event);
    Py_CLEAR(self->signal_registry);
    return 0;
}

static void
csim_dealloc(CSimulator *self)
{
    PyObject_GC_UnTrack(self);
    if (self->weaklist != NULL)
        PyObject_ClearWeakRefs((PyObject *)self);
    csim_clear(self);
    PyMem_Free(self->heap);
    PyMem_Free(self->ready);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyMethodDef csim_methods[] = {
    {"schedule", (PyCFunction)csim_schedule, METH_VARARGS,
     "Run ``fn(*args)`` after ``delay`` cycles (0 = later this cycle)."},
    {"schedule_at", (PyCFunction)csim_schedule_at, METH_VARARGS,
     "Run ``fn(*args)`` at absolute cycle ``time`` (>= now)."},
    {"signal", (PyCFunction)csim_signal, METH_VARARGS | METH_KEYWORDS,
     "Create a new Signal bound to this simulator."},
    {"spawn", (PyCFunction)csim_spawn, METH_VARARGS | METH_KEYWORDS,
     "Start a generator as a process on the next zero-delay slot."},
    {"run", (PyCFunction)csim_run, METH_VARARGS | METH_KEYWORDS,
     "Drain the event queue."},
    {"run_until_processes_finish",
     (PyCFunction)csim_run_until_processes_finish,
     METH_VARARGS | METH_KEYWORDS,
     "Run until every process in ``procs`` has finished."},
    {"enable_signal_registry", (PyCFunction)csim_enable_signal_registry,
     METH_NOARGS, "Track every Signal created from now on (weakly)."},
    {"live_signals", (PyCFunction)csim_live_signals, METH_NOARGS,
     "Signals created since enable_signal_registry and still alive."},
    {"add_on_event", (PyCFunction)csim_add_on_event, METH_O,
     "Add ``fn`` to the per-event checkpoint chain."},
    {"remove_on_event", (PyCFunction)csim_remove_on_event, METH_O,
     "Remove ``fn`` from the checkpoint chain (no-op if absent)."},
    {NULL}
};

static PyMemberDef csim_members[] = {
    {"tracer", T_OBJECT, offsetof(CSimulator, tracer), 0, NULL},
    {"profiler", T_OBJECT, offsetof(CSimulator, profiler), 0, NULL},
    {"on_event", T_OBJECT, offsetof(CSimulator, on_event), 0, NULL},
    {NULL}
};

static PyGetSetDef csim_getsets[] = {
    {"now", (getter)csim_get_now, NULL,
     "Current simulated cycle.", NULL},
    {"events_executed", (getter)csim_get_events_executed, NULL,
     "Total events executed so far.", NULL},
    {"pending_events", (getter)csim_get_pending, NULL,
     "Number of events currently queued.", NULL},
    {"_signal_registry", (getter)csim_get_registry, NULL, NULL, NULL},
    {NULL}
};

static PyTypeObject Simulator_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ckernel.Simulator",
    .tp_basicsize = sizeof(CSimulator),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC
                | Py_TPFLAGS_BASETYPE,
    .tp_doc = "Deterministic (time, seq)-ordered event engine (compiled).",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)csim_init,
    .tp_dealloc = (destructor)csim_dealloc,
    .tp_traverse = (traverseproc)csim_traverse,
    .tp_clear = (inquiry)csim_clear,
    .tp_repr = (reprfunc)csim_repr,
    .tp_weaklistoffset = offsetof(CSimulator, weaklist),
    .tp_methods = csim_methods,
    .tp_members = csim_members,
    .tp_getset = csim_getsets,
};

/* ------------------------------------------------------------------ */
/* Message + make_msg (repro.noc.messages / repro.mem.protocol)        */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    long src;
    long dst;
    PyObject *kind;       /* interned str */
    PyObject *category;   /* MsgCategory member */
    long size_bytes;
    PyObject *payload;
    long long msg_id;
} CMessage;

static long long message_counter = 0;

static int
cmessage_init(CMessage *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"src", "dst", "kind", "category", "size_bytes",
                             "payload", "msg_id", NULL};
    long src, dst, size_bytes;
    PyObject *kind, *category, *payload = Py_None, *msg_id_obj = NULL;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "llUOl|OO:Message", kwlist,
                                     &src, &dst, &kind, &category,
                                     &size_bytes, &payload, &msg_id_obj))
        return -1;
    if (size_bytes <= 0) {
        PyErr_SetString(PyExc_ValueError, "message size must be positive");
        return -1;
    }
    Py_INCREF(kind);
    PyUnicode_InternInPlace(&kind);
    self->src = src;
    self->dst = dst;
    Py_XSETREF(self->kind, kind);
    Py_XSETREF(self->category, Py_NewRef(category));
    self->size_bytes = size_bytes;
    Py_XSETREF(self->payload, Py_NewRef(payload));
    if (msg_id_obj != NULL && msg_id_obj != Py_None) {
        long long mid = PyLong_AsLongLong(msg_id_obj);
        if (mid == -1 && PyErr_Occurred())
            return -1;
        self->msg_id = mid;
    }
    else
        self->msg_id = message_counter++;
    return 0;
}

static PyObject *
cmessage_repr(CMessage *self)
{
    PyObject *catval = PyObject_GetAttr(self->category, str_value);
    if (catval == NULL)
        return NULL;
    PyObject *r = PyUnicode_FromFormat("Message(%U %ld->%ld %ldB %S)",
                                       self->kind, self->src, self->dst,
                                       self->size_bytes, catval);
    Py_DECREF(catval);
    return r;
}

static int
cmessage_traverse(CMessage *self, visitproc visit, void *arg)
{
    Py_VISIT(self->category);
    Py_VISIT(self->payload);
    return 0;
}

static int
cmessage_clear(CMessage *self)
{
    Py_CLEAR(self->kind);
    Py_CLEAR(self->category);
    Py_CLEAR(self->payload);
    return 0;
}

static void
cmessage_dealloc(CMessage *self)
{
    PyObject_GC_UnTrack(self);
    cmessage_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyMemberDef cmessage_members[] = {
    {"src", T_LONG, offsetof(CMessage, src), 0, NULL},
    {"dst", T_LONG, offsetof(CMessage, dst), 0, NULL},
    {"kind", T_OBJECT, offsetof(CMessage, kind), 0, NULL},
    {"category", T_OBJECT, offsetof(CMessage, category), 0, NULL},
    {"size_bytes", T_LONG, offsetof(CMessage, size_bytes), 0, NULL},
    {"payload", T_OBJECT, offsetof(CMessage, payload), 0, NULL},
    {"msg_id", T_LONGLONG, offsetof(CMessage, msg_id), 0, NULL},
    {NULL}
};

static PyTypeObject Message_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ckernel.Message",
    .tp_basicsize = sizeof(CMessage),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC
                | Py_TPFLAGS_BASETYPE,
    .tp_doc = "A single NoC message (compiled record).",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)cmessage_init,
    .tp_dealloc = (destructor)cmessage_dealloc,
    .tp_traverse = (traverseproc)cmessage_traverse,
    .tp_clear = (inquiry)cmessage_clear,
    .tp_repr = (reprfunc)cmessage_repr,
    .tp_members = cmessage_members,
};

static PyObject *
ck_configure_protocol(PyObject *mod, PyObject *args)
{
    /* install the kind -> category map, the data-carrying kind set and
     * the two wire sizes (repro.mem.protocol calls this at import so the
     * C module never has to import protocol/messages itself) */
    PyObject *category, *carries;
    if (!PyArg_ParseTuple(args, "OO:configure_protocol", &category,
                          &carries))
        return NULL;
    Py_XSETREF(proto_category, Py_NewRef(category));
    Py_XSETREF(proto_carries, Py_NewRef(carries));
    Py_RETURN_NONE;
}

static PyObject *str_line;          /* "line" */
static PyObject *str_extra;         /* "extra" */
static PyObject *str_data_bytes;    /* "data_msg_bytes" */
static PyObject *str_control_bytes; /* "control_msg_bytes" */

static PyObject *
ck_build_msg(PyObject *noc, long src, long dst, PyObject *kind,
             PyObject *line, PyObject *payload)
{
    if (proto_category == NULL) {
        PyErr_SetString(PyExc_RuntimeError,
                        "configure_protocol was never called");
        return NULL;
    }
    PyObject *category = PyDict_GetItemWithError(proto_category, kind);
    if (category == NULL) {
        if (!PyErr_Occurred())
            PyErr_SetObject(PyExc_KeyError, kind);
        return NULL;
    }
    int carries = PySet_Contains(proto_carries, kind);
    if (carries < 0)
        return NULL;
    PyObject *size_obj = PyObject_GetAttr(
        noc, carries ? str_data_bytes : str_control_bytes);
    if (size_obj == NULL)
        return NULL;
    long size = PyLong_AsLong(size_obj);
    Py_DECREF(size_obj);
    if (size == -1 && PyErr_Occurred())
        return NULL;
    PyObject *pd = PyDict_New();
    if (pd == NULL)
        return NULL;
    if (PyDict_SetItem(pd, str_line, line) < 0
            || PyDict_SetItem(pd, str_extra, payload) < 0) {
        Py_DECREF(pd);
        return NULL;
    }
    CMessage *msg = (CMessage *)Message_Type.tp_alloc(&Message_Type, 0);
    if (msg == NULL) {
        Py_DECREF(pd);
        return NULL;
    }
    msg->src = src;
    msg->dst = dst;
    msg->kind = Py_NewRef(kind);   /* protocol constants are interned */
    msg->category = Py_NewRef(category);
    msg->size_bytes = size;
    msg->payload = pd;
    msg->msg_id = message_counter++;
    return (PyObject *)msg;
}

static PyObject *
ck_make_msg(PyObject *mod, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"noc", "src", "dst", "kind", "line", "payload",
                             NULL};
    PyObject *noc, *kind, *line, *payload = Py_None;
    long src, dst;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OllUO|O:make_msg", kwlist,
                                     &noc, &src, &dst, &kind, &line,
                                     &payload))
        return NULL;
    return ck_build_msg(noc, src, dst, kind, line, payload);
}

/* ------------------------------------------------------------------ */
/* TagArray (repro.mem.cache)                                          */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    PyObject *config;
    long long line_bytes;
    long long n_sets;
    long long ways;
    PyObject **sets;       /* n_sets entries, each NULL or a dict
                              {line_addr: state}; dict order == LRU */
} CTagArray;

static int
ctag_init(CTagArray *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"config", NULL};
    PyObject *config;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O:TagArray", kwlist,
                                     &config))
        return -1;
    PyObject *lb = PyObject_GetAttrString(config, "line_bytes");
    PyObject *ns = lb ? PyObject_GetAttrString(config, "n_sets") : NULL;
    PyObject *wy = ns ? PyObject_GetAttrString(config, "ways") : NULL;
    if (wy == NULL) {
        Py_XDECREF(lb);
        Py_XDECREF(ns);
        return -1;
    }
    long long line_bytes = PyLong_AsLongLong(lb);
    long long n_sets = PyLong_AsLongLong(ns);
    long long ways = PyLong_AsLongLong(wy);
    Py_DECREF(lb);
    Py_DECREF(ns);
    Py_DECREF(wy);
    if (PyErr_Occurred())
        return -1;
    if (line_bytes <= 0 || n_sets <= 0 || ways <= 0) {
        PyErr_SetString(PyExc_ValueError, "invalid cache geometry");
        return -1;
    }
    PyObject **sets = PyMem_Calloc((size_t)n_sets, sizeof(PyObject *));
    if (sets == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    if (self->sets != NULL) {      /* re-init */
        for (long long i = 0; i < self->n_sets; i++)
            Py_XDECREF(self->sets[i]);
        PyMem_Free(self->sets);
    }
    Py_XSETREF(self->config, Py_NewRef(config));
    self->line_bytes = line_bytes;
    self->n_sets = n_sets;
    self->ways = ways;
    self->sets = sets;
    return 0;
}

static inline long long
ctag_set_index(CTagArray *self, long long line_addr)
{
    long long idx = (line_addr / self->line_bytes) % self->n_sets;
    return idx < 0 ? idx + self->n_sets : idx;
}

/* parse the line-address argument; -1 with error set on failure */
static inline long long
ctag_parse_line(PyObject *arg)
{
    long long v = PyLong_AsLongLong(arg);
    if (v == -1 && PyErr_Occurred())
        return -1;
    return v;
}

static PyObject *
ctag_lookup(CTagArray *self, PyObject *arg)
{
    long long line = ctag_parse_line(arg);
    if (line == -1 && PyErr_Occurred())
        return NULL;
    PyObject *s = self->sets[ctag_set_index(self, line)];
    if (s == NULL)
        Py_RETURN_NONE;
    PyObject *state = PyDict_GetItemWithError(s, arg);
    if (state == NULL) {
        if (PyErr_Occurred())
            return NULL;
        Py_RETURN_NONE;
    }
    return Py_NewRef(state);
}

static PyObject *
ctag_touch(CTagArray *self, PyObject *arg)
{
    long long line = ctag_parse_line(arg);
    if (line == -1 && PyErr_Occurred())
        return NULL;
    long long idx = ctag_set_index(self, line);
    PyObject *s = self->sets[idx];
    if (s == NULL) {
        PyErr_SetObject(PyExc_KeyError, PyLong_FromLongLong(idx));
        return NULL;
    }
    PyObject *state = PyDict_GetItemWithError(s, arg);
    if (state == NULL) {
        if (!PyErr_Occurred())
            PyErr_SetObject(PyExc_KeyError, arg);
        return NULL;
    }
    Py_INCREF(state);
    /* pop + reinsert moves the line to MRU (dict insertion order) */
    if (PyDict_DelItem(s, arg) < 0 || PyDict_SetItem(s, arg, state) < 0) {
        Py_DECREF(state);
        return NULL;
    }
    Py_DECREF(state);
    Py_RETURN_NONE;
}

static PyObject *
ctag_set_state(CTagArray *self, PyObject *args)
{
    PyObject *arg, *state;
    if (!PyArg_ParseTuple(args, "OO:set_state", &arg, &state))
        return NULL;
    long long line = ctag_parse_line(arg);
    if (line == -1 && PyErr_Occurred())
        return NULL;
    long long idx = ctag_set_index(self, line);
    PyObject *s = self->sets[idx];
    int present = s == NULL ? 0 : PyDict_Contains(s, arg);
    if (present < 0)
        return NULL;
    if (!present) {
        PyObject *msg = PyUnicode_FromFormat("line 0x%llx not resident",
                                             (unsigned long long)line);
        if (msg != NULL) {
            PyErr_SetObject(PyExc_KeyError, msg);
            Py_DECREF(msg);
        }
        return NULL;
    }
    /* plain assignment keeps the existing LRU position */
    if (PyDict_SetItem(s, arg, state) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
ctag_insert(CTagArray *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"line_addr", "state", "may_evict", NULL};
    PyObject *arg, *state, *may_evict = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OO|O:insert", kwlist,
                                     &arg, &state, &may_evict))
        return NULL;
    long long line = ctag_parse_line(arg);
    if (line == -1 && PyErr_Occurred())
        return NULL;
    long long idx = ctag_set_index(self, line);
    PyObject *s = self->sets[idx];
    if (s == NULL) {
        s = PyDict_New();
        if (s == NULL)
            return NULL;
        self->sets[idx] = s;
    }
    int present = PyDict_Contains(s, arg);
    if (present < 0)
        return NULL;
    if (present) {
        PyObject *msg = PyUnicode_FromFormat("line 0x%llx already resident",
                                             (unsigned long long)line);
        if (msg != NULL) {
            PyErr_SetObject(PyExc_KeyError, msg);
            Py_DECREF(msg);
        }
        return NULL;
    }
    PyObject *victim = NULL;
    if (PyDict_GET_SIZE(s) >= self->ways) {
        /* snapshot the keys so an arbitrary may_evict callback cannot
         * invalidate the iteration (dict order == LRU, first = LRU) */
        PyObject *cands = PyDict_Keys(s);
        if (cands == NULL)
            return NULL;
        Py_ssize_t n = PyList_GET_SIZE(cands);
        for (Py_ssize_t i = 0; i < n; i++) {
            PyObject *cand = PyList_GET_ITEM(cands, i);
            int ok;
            if (may_evict == Py_None)
                ok = 1;
            else {
                PyObject *r = PyObject_CallOneArg(may_evict, cand);
                if (r == NULL) {
                    Py_DECREF(cands);
                    return NULL;
                }
                ok = PyObject_IsTrue(r);
                Py_DECREF(r);
                if (ok < 0) {
                    Py_DECREF(cands);
                    return NULL;
                }
            }
            if (ok) {
                PyObject *vstate = PyDict_GetItemWithError(s, cand);
                if (vstate == NULL) {
                    Py_DECREF(cands);
                    if (!PyErr_Occurred())
                        PyErr_SetObject(PyExc_KeyError, cand);
                    return NULL;
                }
                victim = PyTuple_Pack(2, cand, vstate);
                if (victim == NULL || PyDict_DelItem(s, cand) < 0) {
                    Py_XDECREF(victim);
                    Py_DECREF(cands);
                    return NULL;
                }
                break;
            }
        }
        Py_DECREF(cands);
    }
    if (PyDict_SetItem(s, arg, state) < 0) {
        Py_XDECREF(victim);
        return NULL;
    }
    if (victim == NULL)
        Py_RETURN_NONE;
    return victim;
}

static PyObject *
ctag_invalidate(CTagArray *self, PyObject *arg)
{
    long long line = ctag_parse_line(arg);
    if (line == -1 && PyErr_Occurred())
        return NULL;
    PyObject *s = self->sets[ctag_set_index(self, line)];
    if (s == NULL)
        Py_RETURN_NONE;
    PyObject *state = PyDict_GetItemWithError(s, arg);
    if (state == NULL) {
        if (PyErr_Occurred())
            return NULL;
        Py_RETURN_NONE;
    }
    Py_INCREF(state);
    if (PyDict_DelItem(s, arg) < 0) {
        Py_DECREF(state);
        return NULL;
    }
    return state;
}

static PyObject *
ctag_resident_lines(CTagArray *self, PyObject *Py_UNUSED(ignored))
{
    PyObject *lines = PyList_New(0);
    if (lines == NULL)
        return NULL;
    for (long long i = 0; i < self->n_sets; i++) {
        PyObject *s = self->sets[i];
        if (s == NULL)
            continue;
        PyObject *key;
        PyObject *value;
        Py_ssize_t pos = 0;
        while (PyDict_Next(s, &pos, &key, &value)) {
            if (PyList_Append(lines, key) < 0) {
                Py_DECREF(lines);
                return NULL;
            }
        }
    }
    PyObject *it = PyObject_GetIter(lines);
    Py_DECREF(lines);
    return it;
}

static PyObject *
ctag_occupancy(CTagArray *self, PyObject *Py_UNUSED(ignored))
{
    Py_ssize_t total = 0;
    for (long long i = 0; i < self->n_sets; i++)
        if (self->sets[i] != NULL)
            total += PyDict_GET_SIZE(self->sets[i]);
    return PyLong_FromSsize_t(total);
}

static int
ctag_traverse(CTagArray *self, visitproc visit, void *arg)
{
    Py_VISIT(self->config);
    if (self->sets != NULL)
        for (long long i = 0; i < self->n_sets; i++)
            Py_VISIT(self->sets[i]);
    return 0;
}

static int
ctag_clear_gc(CTagArray *self)
{
    Py_CLEAR(self->config);
    if (self->sets != NULL)
        for (long long i = 0; i < self->n_sets; i++)
            Py_CLEAR(self->sets[i]);
    return 0;
}

static void
ctag_dealloc(CTagArray *self)
{
    PyObject_GC_UnTrack(self);
    ctag_clear_gc(self);
    PyMem_Free(self->sets);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyMethodDef ctag_methods[] = {
    {"lookup", (PyCFunction)ctag_lookup, METH_O,
     "State of ``line_addr`` or None; does not touch LRU order."},
    {"touch", (PyCFunction)ctag_touch, METH_O,
     "Mark ``line_addr`` most-recently used."},
    {"set_state", (PyCFunction)ctag_set_state, METH_VARARGS,
     "Update the state of a resident line (keeps LRU position)."},
    {"insert", (PyCFunction)ctag_insert, METH_VARARGS | METH_KEYWORDS,
     "Insert a line as MRU; returns the evicted ``(line, state)`` if any."},
    {"invalidate", (PyCFunction)ctag_invalidate, METH_O,
     "Drop a line; returns its prior state (None if absent)."},
    {"resident_lines", (PyCFunction)ctag_resident_lines, METH_NOARGS,
     "All resident line addresses (diagnostics/tests)."},
    {"occupancy", (PyCFunction)ctag_occupancy, METH_NOARGS,
     "Total resident lines."},
    {NULL}
};

static PyMemberDef ctag_members[] = {
    {"config", T_OBJECT, offsetof(CTagArray, config), READONLY, NULL},
    {NULL}
};

static PyTypeObject TagArray_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ckernel.TagArray",
    .tp_basicsize = sizeof(CTagArray),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC
                | Py_TPFLAGS_BASETYPE,
    .tp_doc = "Set-associative tag array with true-LRU replacement.",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)ctag_init,
    .tp_dealloc = (destructor)ctag_dealloc,
    .tp_traverse = (traverseproc)ctag_traverse,
    .tp_clear = (inquiry)ctag_clear_gc,
    .tp_methods = ctag_methods,
    .tp_members = ctag_members,
};

/* ------------------------------------------------------------------ */
/* MeshCore (repro.noc.topology hot path)                              */
/* ------------------------------------------------------------------ */

/* Link state lives in two flat C arrays indexed
 *     dir * (w*h) + y*w + x          (dir: 0=E, 1=W, 2=S, 3=N)
 * where (x, y) is the link's *source* tile; the Python Mesh keeps its
 * Link objects only for route() geometry and reads carried bytes back
 * through carried_list() with the same index formula. */

typedef struct {
    PyObject_HEAD
    CSimulator *sim;            /* owned; guaranteed a compiled Simulator */
    long w, h, ntiles;
    long router_latency;
    long link_width;
    long long *next_free;       /* 4*w*h */
    long long *carried;         /* 4*w*h */
    PyObject **handlers;        /* ntiles entries, NULL = unregistered */
    int32_t **routes;           /* ntiles*ntiles, each NULL or [n, i0..] */
    PyObject *per_cat;          /* dict MsgCategory -> (switch_c, msgs_c) */
    PyObject *byte_hops;        /* BoundCounter */
    PyObject *link_traversals;  /* BoundCounter */
    /* C-side traffic accumulators: send() adds into plain integers and
     * TrafficMeter reads call flush_traffic() to fold them into the
     * BoundCounters above (mirroring the BoundCounter/CounterSet._flush
     * buffering one level deeper) */
    long n_cats;
    PyObject **cat_objs;        /* n_cats MsgCategory members (strong) */
    long long *cat_sw;          /* switch-bytes per category */
    long long *cat_msgs;        /* delivered messages per category */
    long long acc_byte_hops;
    long long acc_traversals;
} CMeshCore;

static int
cmesh_init(CMeshCore *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"sim", "width", "height", "router_latency",
                             "link_width_bytes", "per_cat", "byte_hops",
                             "link_traversals", NULL};
    PyObject *sim, *per_cat, *byte_hops, *link_traversals;
    long w, h, router_latency, link_width;
    if (!PyArg_ParseTupleAndKeywords(
            args, kwds, "OllllOOO:MeshCore", kwlist, &sim, &w, &h,
            &router_latency, &link_width, &per_cat, &byte_hops,
            &link_traversals))
        return -1;
    if (!Py_IS_TYPE(sim, &Simulator_Type)) {
        PyErr_SetString(PyExc_TypeError,
                        "MeshCore requires a compiled Simulator");
        return -1;
    }
    if (w <= 0 || h <= 0 || link_width <= 0 || router_latency < 0) {
        PyErr_SetString(PyExc_ValueError, "invalid mesh geometry");
        return -1;
    }
    if (!PyDict_CheckExact(per_cat)) {
        PyErr_SetString(PyExc_TypeError, "per_cat must be a dict");
        return -1;
    }
    long ntiles = w * h;
    long n_cats = (long)PyDict_Size(per_cat);
    long long *next_free = PyMem_Calloc((size_t)(4 * ntiles),
                                        sizeof(long long));
    long long *carried = PyMem_Calloc((size_t)(4 * ntiles),
                                      sizeof(long long));
    PyObject **handlers = PyMem_Calloc((size_t)ntiles, sizeof(PyObject *));
    int32_t **routes = PyMem_Calloc((size_t)ntiles * (size_t)ntiles,
                                    sizeof(int32_t *));
    PyObject **cat_objs = PyMem_Calloc((size_t)(n_cats ? n_cats : 1),
                                       sizeof(PyObject *));
    long long *cat_sw = PyMem_Calloc((size_t)(n_cats ? n_cats : 1),
                                     sizeof(long long));
    long long *cat_msgs = PyMem_Calloc((size_t)(n_cats ? n_cats : 1),
                                       sizeof(long long));
    if (!next_free || !carried || !handlers || !routes
            || !cat_objs || !cat_sw || !cat_msgs) {
        PyMem_Free(next_free);
        PyMem_Free(carried);
        PyMem_Free(handlers);
        PyMem_Free(routes);
        PyMem_Free(cat_objs);
        PyMem_Free(cat_sw);
        PyMem_Free(cat_msgs);
        PyErr_NoMemory();
        return -1;
    }
    {
        Py_ssize_t pos = 0, i = 0;
        PyObject *key, *val;
        while (PyDict_Next(per_cat, &pos, &key, &val))
            cat_objs[i++] = Py_NewRef(key);
    }
    /* re-init support: drop any prior state */
    if (self->handlers != NULL)
        for (long i = 0; i < self->ntiles; i++)
            Py_XDECREF(self->handlers[i]);
    PyMem_Free(self->handlers);
    if (self->cat_objs != NULL)
        for (long i = 0; i < self->n_cats; i++)
            Py_XDECREF(self->cat_objs[i]);
    PyMem_Free(self->cat_objs);
    PyMem_Free(self->cat_sw);
    PyMem_Free(self->cat_msgs);
    if (self->routes != NULL)
        for (long long i = 0;
             i < (long long)self->ntiles * self->ntiles; i++)
            PyMem_Free(self->routes[i]);
    PyMem_Free(self->routes);
    PyMem_Free(self->next_free);
    PyMem_Free(self->carried);

    Py_INCREF(sim);
    Py_XSETREF(self->sim, (CSimulator *)sim);
    self->w = w;
    self->h = h;
    self->ntiles = ntiles;
    self->router_latency = router_latency;
    self->link_width = link_width;
    self->next_free = next_free;
    self->carried = carried;
    self->handlers = handlers;
    self->routes = routes;
    self->n_cats = n_cats;
    self->cat_objs = cat_objs;
    self->cat_sw = cat_sw;
    self->cat_msgs = cat_msgs;
    self->acc_byte_hops = 0;
    self->acc_traversals = 0;
    Py_XSETREF(self->per_cat, Py_NewRef(per_cat));
    Py_XSETREF(self->byte_hops, Py_NewRef(byte_hops));
    Py_XSETREF(self->link_traversals, Py_NewRef(link_traversals));
    return 0;
}

static PyObject *
cmesh_register(CMeshCore *self, PyObject *args)
{
    long tile;
    PyObject *handler;
    if (!PyArg_ParseTuple(args, "lO:register", &tile, &handler))
        return NULL;
    if (tile < 0 || tile >= self->ntiles) {
        PyErr_Format(PyExc_ValueError, "tile %ld outside the mesh", tile);
        return NULL;
    }
    if (self->handlers[tile] != NULL) {
        PyErr_Format(PyExc_ValueError, "tile %ld already has a handler",
                     tile);
        return NULL;
    }
    self->handlers[tile] = Py_NewRef(handler);
    Py_RETURN_NONE;
}

/* XY route as link indices; cached per (src, dst).  Layout: [n, i0..in-1] */
static int32_t *
cmesh_route_idx(CMeshCore *self, long src, long dst)
{
    int32_t **slot = &self->routes[(long long)src * self->ntiles + dst];
    if (*slot != NULL)
        return *slot;
    long w = self->w, wh = self->ntiles;
    long x = src % w, y = src / w;
    long dx = dst % w, dy = dst / w;
    int32_t *buf = PyMem_Malloc((size_t)(self->w + self->h + 1)
                                * sizeof(int32_t));
    if (buf == NULL) {
        PyErr_NoMemory();
        return NULL;
    }
    int32_t n = 0;
    while (x != dx) {
        if (dx > x) {
            buf[++n] = (int32_t)(0 * wh + y * w + x);   /* east */
            x++;
        }
        else {
            buf[++n] = (int32_t)(1 * wh + y * w + x);   /* west */
            x--;
        }
    }
    while (y != dy) {
        if (dy > y) {
            buf[++n] = (int32_t)(2 * wh + y * w + x);   /* south */
            y++;
        }
        else {
            buf[++n] = (int32_t)(3 * wh + y * w + x);   /* north */
            y--;
        }
    }
    buf[0] = n;
    *slot = buf;
    return buf;
}

/* counter.value += amount on a BoundCounter (or anything with .value) */
static int
counter_iadd(PyObject *counter, long long amount)
{
    PyObject *old = PyObject_GetAttr(counter, str_value);
    if (old == NULL)
        return -1;
    long long v = PyLong_AsLongLong(old);
    Py_DECREF(old);
    if (v == -1 && PyErr_Occurred())
        return -1;
    PyObject *new = PyLong_FromLongLong(v + amount);
    if (new == NULL)
        return -1;
    int rc = PyObject_SetAttr(counter, str_value, new);
    Py_DECREF(new);
    return rc;
}

static PyObject *
cmesh_send(CMeshCore *self, PyObject *msg)
{
    long src, dst, size;
    PyObject *kind, *category;
    if (Py_IS_TYPE(msg, &Message_Type)) {
        CMessage *m = (CMessage *)msg;
        src = m->src;
        dst = m->dst;
        size = m->size_bytes;
        kind = m->kind;
        category = m->category;
    }
    else {
        /* a pure-Python Message constructed before the backend rebind;
         * rare, but must route identically */
        PyObject *o;
        if ((o = PyObject_GetAttrString(msg, "src")) == NULL)
            return NULL;
        src = PyLong_AsLong(o);
        Py_DECREF(o);
        if ((o = PyObject_GetAttrString(msg, "dst")) == NULL)
            return NULL;
        dst = PyLong_AsLong(o);
        Py_DECREF(o);
        if ((o = PyObject_GetAttrString(msg, "size_bytes")) == NULL)
            return NULL;
        size = PyLong_AsLong(o);
        Py_DECREF(o);
        if (PyErr_Occurred())
            return NULL;
        kind = PyObject_GetAttrString(msg, "kind");
        if (kind == NULL)
            return NULL;
        Py_DECREF(kind);                     /* msg keeps it alive */
        category = PyObject_GetAttrString(msg, "category");
        if (category == NULL)
            return NULL;
        Py_DECREF(category);
    }
    if (dst < 0 || dst >= self->ntiles || self->handlers[dst] == NULL) {
        PyObject *key = PyLong_FromLong(dst);
        if (key != NULL) {
            PyErr_SetObject(PyExc_KeyError, key);
            Py_DECREF(key);
        }
        return NULL;
    }
    PyObject *handler = self->handlers[dst];
    if (PyDict_CheckExact(handler)) {
        /* per-kind route table (the tile dispatcher, folded into C) */
        PyObject *h = PyDict_GetItemWithError(handler, kind);
        if (h == NULL) {
            if (!PyErr_Occurred())
                PyErr_Format(PyExc_RuntimeError,
                             "tile %ld: unroutable message %R", dst, msg);
            return NULL;
        }
        handler = h;
    }
    CSimulator *sim = self->sim;
    long long now = sim->now;

    if (sim->tracer != Py_None) {
        PyObject *catval = PyObject_GetAttr(category, str_value);
        if (catval == NULL)
            return NULL;
        PyObject *who = PyUnicode_FromFormat("tile%ld", src);
        PyObject *what = who == NULL ? NULL : PyUnicode_FromFormat(
            "%U -> tile%ld (%ldB %S)", kind, dst, size, catval);
        PyObject *nowobj = what == NULL ? NULL : PyLong_FromLongLong(now);
        Py_DECREF(catval);
        PyObject *r = nowobj == NULL ? NULL : PyObject_CallMethodObjArgs(
            sim->tracer, str_record, nowobj, str_noc, who, what, NULL);
        Py_XDECREF(nowobj);
        Py_XDECREF(who);
        Py_XDECREF(what);
        if (r == NULL)
            return NULL;
        Py_DECREF(r);
    }

    if (src == dst) {
        long long arrival = now + 1;        /* LOCAL_DELIVERY_LATENCY */
        if (csim_push(sim, arrival, handler, msg, EV_CALL1) < 0)
            return NULL;
        return PyLong_FromLongLong(arrival);
    }

    long ser = (size + self->link_width - 1) / self->link_width;
    int32_t *route = cmesh_route_idx(self, src, dst);
    if (route == NULL)
        return NULL;
    int32_t hops = route[0];
    long long per_hop = self->router_latency + ser;
    long long t = now;
    for (int32_t i = 1; i <= hops; i++) {
        int32_t li = route[i];
        long long next_free = self->next_free[li];
        long long depart = t >= next_free ? t : next_free;
        self->next_free[li] = depart + ser;
        t = depart + per_hop;
        self->carried[li] += size;
    }

    /* TrafficMeter.record: switch-bytes count the h+1 traversed routers.
     * Categories are the handful of MsgCategory members (the per_cat
     * keys), so a pointer scan beats a dict probe; the sums live in C
     * integers until TrafficMeter reads trigger flush_traffic(). */
    long ci = -1;
    for (long i = 0; i < self->n_cats; i++)
        if (self->cat_objs[i] == category) {
            ci = i;
            break;
        }
    if (ci < 0) {
        PyErr_SetObject(PyExc_KeyError, category);
        return NULL;
    }
    self->cat_sw[ci] += (long long)size * (hops + 1);
    self->cat_msgs[ci] += 1;
    self->acc_byte_hops += (long long)size * hops;
    self->acc_traversals += hops;

    if (csim_push(sim, t, handler, msg, EV_CALL1) < 0)
        return NULL;
    return PyLong_FromLongLong(t);
}

static PyObject *
cmesh_send_proto(CMeshCore *self, PyObject *const *args, Py_ssize_t nargs)
{
    /* send_proto(noc, src, dst, kind, line, extra=None): build the
     * protocol message and inject it in one call -- the fused form of
     * ``mesh.send(make_msg(...))`` the memory controllers use on every
     * transaction hop */
    if (nargs < 5 || nargs > 6) {
        PyErr_Format(PyExc_TypeError,
                     "send_proto expected 5 or 6 arguments, got %zd", nargs);
        return NULL;
    }
    long src = PyLong_AsLong(args[1]);
    long dst = PyLong_AsLong(args[2]);
    if ((src == -1 || dst == -1) && PyErr_Occurred())
        return NULL;
    if (!PyUnicode_Check(args[3])) {
        PyErr_SetString(PyExc_TypeError, "send_proto kind must be a str");
        return NULL;
    }
    PyObject *extra = nargs == 6 ? args[5] : Py_None;
    PyObject *msg = ck_build_msg(args[0], src, dst, args[3], args[4], extra);
    if (msg == NULL)
        return NULL;
    PyObject *r = cmesh_send(self, msg);
    Py_DECREF(msg);
    return r;
}

static PyObject *
cmesh_flush_traffic(CMeshCore *self, PyObject *Py_UNUSED(ignored))
{
    /* fold the C-side traffic sums into the TrafficMeter BoundCounters */
    for (long i = 0; i < self->n_cats; i++) {
        if (self->cat_sw[i] == 0 && self->cat_msgs[i] == 0)
            continue;
        PyObject *pair = PyDict_GetItemWithError(self->per_cat,
                                                 self->cat_objs[i]);
        if (pair == NULL) {
            if (!PyErr_Occurred())
                PyErr_SetObject(PyExc_KeyError, self->cat_objs[i]);
            return NULL;
        }
        if (counter_iadd(PyTuple_GET_ITEM(pair, 0), self->cat_sw[i]) < 0
                || counter_iadd(PyTuple_GET_ITEM(pair, 1),
                                self->cat_msgs[i]) < 0)
            return NULL;
        self->cat_sw[i] = 0;
        self->cat_msgs[i] = 0;
    }
    if (self->acc_byte_hops != 0) {
        if (counter_iadd(self->byte_hops, self->acc_byte_hops) < 0)
            return NULL;
        self->acc_byte_hops = 0;
    }
    if (self->acc_traversals != 0) {
        if (counter_iadd(self->link_traversals, self->acc_traversals) < 0)
            return NULL;
        self->acc_traversals = 0;
    }
    Py_RETURN_NONE;
}

static PyObject *
cmesh_carried_list(CMeshCore *self, PyObject *Py_UNUSED(ignored))
{
    long n = 4 * self->ntiles;
    PyObject *lst = PyList_New(n);
    if (lst == NULL)
        return NULL;
    for (long i = 0; i < n; i++) {
        PyObject *v = PyLong_FromLongLong(self->carried[i]);
        if (v == NULL) {
            Py_DECREF(lst);
            return NULL;
        }
        PyList_SET_ITEM(lst, i, v);
    }
    return lst;
}

static int
cmesh_traverse(CMeshCore *self, visitproc visit, void *arg)
{
    Py_VISIT(self->sim);
    Py_VISIT(self->per_cat);
    Py_VISIT(self->byte_hops);
    Py_VISIT(self->link_traversals);
    if (self->handlers != NULL)
        for (long i = 0; i < self->ntiles; i++)
            Py_VISIT(self->handlers[i]);
    if (self->cat_objs != NULL)
        for (long i = 0; i < self->n_cats; i++)
            Py_VISIT(self->cat_objs[i]);
    return 0;
}

static int
cmesh_clear_gc(CMeshCore *self)
{
    Py_CLEAR(self->sim);
    Py_CLEAR(self->per_cat);
    Py_CLEAR(self->byte_hops);
    Py_CLEAR(self->link_traversals);
    if (self->handlers != NULL)
        for (long i = 0; i < self->ntiles; i++)
            Py_CLEAR(self->handlers[i]);
    if (self->cat_objs != NULL)
        for (long i = 0; i < self->n_cats; i++)
            Py_CLEAR(self->cat_objs[i]);
    return 0;
}

static void
cmesh_dealloc(CMeshCore *self)
{
    PyObject_GC_UnTrack(self);
    cmesh_clear_gc(self);
    if (self->routes != NULL)
        for (long long i = 0;
             i < (long long)self->ntiles * self->ntiles; i++)
            PyMem_Free(self->routes[i]);
    PyMem_Free(self->routes);
    PyMem_Free(self->handlers);
    PyMem_Free(self->next_free);
    PyMem_Free(self->carried);
    PyMem_Free(self->cat_objs);
    PyMem_Free(self->cat_sw);
    PyMem_Free(self->cat_msgs);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyMethodDef cmesh_methods[] = {
    {"register", (PyCFunction)cmesh_register, METH_VARARGS,
     "Attach the message handler for a tile (one per tile)."},
    {"send", (PyCFunction)cmesh_send, METH_O,
     "Inject a message; returns the delivery cycle."},
    {"send_proto", (PyCFunction)cmesh_send_proto, METH_FASTCALL,
     "Build a protocol message and inject it (fused make_msg + send)."},
    {"carried_list", (PyCFunction)cmesh_carried_list, METH_NOARGS,
     "Bytes carried per link, indexed dir*(w*h) + y*w + x."},
    {"flush_traffic", (PyCFunction)cmesh_flush_traffic, METH_NOARGS,
     "Fold the C-side traffic sums into the TrafficMeter counters."},
    {NULL}
};

static PyTypeObject MeshCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ckernel.MeshCore",
    .tp_basicsize = sizeof(CMeshCore),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled XY-routing/link-reservation core for Mesh.",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)cmesh_init,
    .tp_dealloc = (destructor)cmesh_dealloc,
    .tp_traverse = (traverseproc)cmesh_traverse,
    .tp_clear = (inquiry)cmesh_clear_gc,
    .tp_methods = cmesh_methods,
};

/* ------------------------------------------------------------------ */
/* L1Hit: the whole L1 cache-hit fast path in one C call               */
/* ------------------------------------------------------------------ */

/* Fuses L1Cache.try_hit — tag lookup, permission check, silent E->M
 * upgrade, LRU touch, BackingStore word op and access-counter bump —
 * into a single method call.  This is the single hottest path of the
 * simulator (every load/store/rmw that hits starts here).  Semantics
 * mirror the pure-Python try_hit exactly, including the unaligned-word
 * ValueError text and returning None for plain stores. */

typedef struct {
    PyObject_HEAD
    CTagArray *tags;       /* the owning L1's compiled tag array */
    PyObject *words;       /* BackingStore._words dict */
    PyObject *counter;     /* l1.accesses BoundCounter */
    PyObject *miss;        /* sentinel returned on insufficient permission */
    PyObject *st_m;        /* the "M" state object (l1 module constant) */
    PyObject *st_e;        /* the "E" state object */
    long long word_bytes;
} CL1Hit;

static PyObject *long_zero;    /* cached int(0), created in module init */

static int
cl1hit_init(CL1Hit *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"tags", "words", "counter", "miss",
                             "st_m", "st_e", "word_bytes", NULL};
    PyObject *tags, *words, *counter, *miss, *st_m, *st_e;
    long long word_bytes;
    if (!PyArg_ParseTupleAndKeywords(
            args, kwds, "O!O!OOOOL:L1Hit", kwlist,
            &TagArray_Type, &tags, &PyDict_Type, &words,
            &counter, &miss, &st_m, &st_e, &word_bytes))
        return -1;
    if (word_bytes <= 0) {
        PyErr_SetString(PyExc_ValueError, "word_bytes must be positive");
        return -1;
    }
    Py_XSETREF(self->tags, (CTagArray *)Py_NewRef(tags));
    Py_XSETREF(self->words, Py_NewRef(words));
    Py_XSETREF(self->counter, Py_NewRef(counter));
    Py_XSETREF(self->miss, Py_NewRef(miss));
    Py_XSETREF(self->st_m, Py_NewRef(st_m));
    Py_XSETREF(self->st_e, Py_NewRef(st_e));
    self->word_bytes = word_bytes;
    return 0;
}

static int
cl1hit_traverse(CL1Hit *self, visitproc visit, void *arg)
{
    Py_VISIT(self->tags);
    Py_VISIT(self->words);
    Py_VISIT(self->counter);
    Py_VISIT(self->miss);
    Py_VISIT(self->st_m);
    Py_VISIT(self->st_e);
    return 0;
}

static int
cl1hit_clear_gc(CL1Hit *self)
{
    Py_CLEAR(self->tags);
    Py_CLEAR(self->words);
    Py_CLEAR(self->counter);
    Py_CLEAR(self->miss);
    Py_CLEAR(self->st_m);
    Py_CLEAR(self->st_e);
    return 0;
}

static void
cl1hit_dealloc(CL1Hit *self)
{
    PyObject_GC_UnTrack(self);
    cl1hit_clear_gc(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* try_hit(line, want_m, addr, value, fn) -> result | MISS sentinel */
static PyObject *
cl1hit_try_hit(CL1Hit *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 5) {
        PyErr_Format(PyExc_TypeError,
                     "try_hit expects 5 arguments, got %zd", nargs);
        return NULL;
    }
    PyObject *line = args[0];
    PyObject *addr = args[2];
    PyObject *value = args[3];
    PyObject *fn = args[4];
    int want_m = args[1] == Py_True
        ? 1 : (args[1] == Py_False ? 0 : PyObject_IsTrue(args[1]));
    if (want_m < 0)
        return NULL;
    CTagArray *tags = self->tags;
    long long l = PyLong_AsLongLong(line);
    if (l == -1 && PyErr_Occurred())
        return NULL;
    PyObject *set = tags->sets[ctag_set_index(tags, l)];
    PyObject *state = NULL;
    if (set != NULL) {
        state = PyDict_GetItemWithError(set, line);  /* borrowed */
        if (state == NULL && PyErr_Occurred())
            return NULL;
    }
    if (state == NULL)
        return Py_NewRef(self->miss);
    int is_m = 0, is_e = 0;
    if (want_m) {
        /* states come from the l1 module constants, so pointer compares
         * normally decide; fall back to equality for foreign strings */
        is_m = state == self->st_m;
        if (!is_m && (is_m = PyObject_RichCompareBool(
                state, self->st_m, Py_EQ)) < 0)
            return NULL;
        if (!is_m) {
            is_e = state == self->st_e;
            if (!is_e && (is_e = PyObject_RichCompareBool(
                    state, self->st_e, Py_EQ)) < 0)
                return NULL;
        }
        if (!is_m && !is_e)
            return Py_NewRef(self->miss);
        if (is_e) {
            /* silent E->M upgrade; plain assignment keeps LRU position */
            if (PyDict_SetItem(set, line, self->st_m) < 0)
                return NULL;
            state = self->st_m;
        }
    }
    /* LRU touch: pop + reinsert moves the line to MRU */
    Py_INCREF(state);
    if (PyDict_DelItem(set, line) < 0
            || PyDict_SetItem(set, line, state) < 0) {
        Py_DECREF(state);
        return NULL;
    }
    Py_DECREF(state);
    /* the backing-store word op (positional encoding, see try_hit) */
    long long a = PyLong_AsLongLong(addr);
    if (a == -1 && PyErr_Occurred())
        return NULL;
    if (a % self->word_bytes) {
        PyErr_Format(PyExc_ValueError, "unaligned word address %#llx",
                     (unsigned long long)a);
        return NULL;
    }
    PyObject *result;
    if (fn != Py_None) {
        /* rmw: old = words.get(addr, 0); words[addr] = fn(old) */
        PyObject *old = PyDict_GetItemWithError(self->words, addr);
        if (old == NULL) {
            if (PyErr_Occurred())
                return NULL;
            old = long_zero;
        }
        Py_INCREF(old);
        PyObject *new_val = PyObject_CallOneArg(fn, old);
        if (new_val == NULL) {
            Py_DECREF(old);
            return NULL;
        }
        if (PyDict_SetItem(self->words, addr, new_val) < 0) {
            Py_DECREF(new_val);
            Py_DECREF(old);
            return NULL;
        }
        Py_DECREF(new_val);
        result = old;
    } else if (want_m) {
        /* store: pure BackingStore.write returns None */
        if (PyDict_SetItem(self->words, addr, value) < 0)
            return NULL;
        result = Py_NewRef(Py_None);
    } else {
        /* load */
        PyObject *v = PyDict_GetItemWithError(self->words, addr);
        if (v == NULL) {
            if (PyErr_Occurred())
                return NULL;
            v = long_zero;
        }
        result = Py_NewRef(v);
    }
    if (counter_iadd(self->counter, 1) < 0) {
        Py_DECREF(result);
        return NULL;
    }
    return result;
}

static PyMethodDef cl1hit_methods[] = {
    {"try_hit", (PyCFunction)cl1hit_try_hit, METH_FASTCALL,
     "Fused L1 hit path: lookup + touch + word op + counter in one call."},
    {NULL}
};

static PyTypeObject L1Hit_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ckernel.L1Hit",
    .tp_basicsize = sizeof(CL1Hit),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled L1 cache-hit fast path (see repro.mem.l1).",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)cl1hit_init,
    .tp_dealloc = (destructor)cl1hit_dealloc,
    .tp_traverse = (traverseproc)cl1hit_traverse,
    .tp_clear = (inquiry)cl1hit_clear_gc,
    .tp_methods = cl1hit_methods,
};

/* ------------------------------------------------------------------ */
/* module init                                                         */
/* ------------------------------------------------------------------ */

static PyMethodDef ckernel_module_methods[] = {
    {"configure_protocol", (PyCFunction)ck_configure_protocol, METH_VARARGS,
     "Install the protocol kind->category map and data-carrying set."},
    {"make_msg", (PyCFunction)ck_make_msg, METH_VARARGS | METH_KEYWORDS,
     "Build a protocol Message (compiled repro.mem.protocol.make_msg)."},
    {NULL}
};

static struct PyModuleDef ckernel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._ckernel",
    .m_doc = "Compiled event-kernel backend (see repro.sim.kernel).",
    .m_size = -1,
    .m_methods = ckernel_module_methods,
};

PyMODINIT_FUNC
PyInit__ckernel(void)
{
    /* the pure kernel is the behavioural reference: error classes and
     * the cold-path helpers (hook chaining, deadlock reports, join) are
     * borrowed from it so the two backends cannot drift apart there */
    PyObject *pure = PyImport_ImportModule("repro.sim._kernel_pure");
    if (pure == NULL)
        return NULL;
    SimulationError = PyObject_GetAttrString(pure, "SimulationError");
    SimDeadlockError = PyObject_GetAttrString(pure, "SimDeadlockError");
    chain_hooks_fn = PyObject_GetAttrString(pure, "_chain_hooks");
    PyObject *pure_sim = PyObject_GetAttrString(pure, "Simulator");
    PyObject *pure_proc = PyObject_GetAttrString(pure, "Process");
    Py_DECREF(pure);
    if (SimulationError == NULL || SimDeadlockError == NULL
            || chain_hooks_fn == NULL || pure_sim == NULL
            || pure_proc == NULL)
        goto fail;
    blocked_report_fn = PyObject_GetAttrString(pure_sim, "_blocked_report");
    blocked_snapshot_fn = PyObject_GetAttrString(pure_sim,
                                                 "_blocked_snapshot");
    join_fn = PyObject_GetAttrString(pure_proc, "join");
    Py_CLEAR(pure_sim);
    Py_CLEAR(pure_proc);
    if (blocked_report_fn == NULL || blocked_snapshot_fn == NULL
            || join_fn == NULL)
        goto fail;

    PyObject *time_mod = PyImport_ImportModule("time");
    if (time_mod == NULL)
        goto fail;
    perf_counter_fn = PyObject_GetAttrString(time_mod, "perf_counter");
    Py_DECREF(time_mod);
    if (perf_counter_fn == NULL)
        goto fail;

    if ((str__step = PyUnicode_InternFromString("_step")) == NULL
            || (str_value = PyUnicode_InternFromString("value")) == NULL
            || (str_record = PyUnicode_InternFromString("record")) == NULL
            || (str_noc = PyUnicode_InternFromString("noc")) == NULL
            || (str_line = PyUnicode_InternFromString("line")) == NULL
            || (str_extra = PyUnicode_InternFromString("extra")) == NULL
            || (str_data_bytes =
                    PyUnicode_InternFromString("data_msg_bytes")) == NULL
            || (str_control_bytes =
                    PyUnicode_InternFromString("control_msg_bytes")) == NULL)
        goto fail;

    if (PyType_Ready(&Simulator_Type) < 0
            || PyType_Ready(&Signal_Type) < 0
            || PyType_Ready(&Process_Type) < 0
            || PyType_Ready(&Message_Type) < 0
            || PyType_Ready(&TagArray_Type) < 0
            || PyType_Ready(&MeshCore_Type) < 0
            || PyType_Ready(&L1Hit_Type) < 0)
        goto fail;

    if ((long_zero = PyLong_FromLong(0)) == NULL)
        goto fail;

    PyObject *mod = PyModule_Create(&ckernel_module);
    if (mod == NULL)
        goto fail;
    if (PyModule_AddObjectRef(mod, "Simulator",
                              (PyObject *)&Simulator_Type) < 0
            || PyModule_AddObjectRef(mod, "Signal",
                                     (PyObject *)&Signal_Type) < 0
            || PyModule_AddObjectRef(mod, "Process",
                                     (PyObject *)&Process_Type) < 0
            || PyModule_AddObjectRef(mod, "Message",
                                     (PyObject *)&Message_Type) < 0
            || PyModule_AddObjectRef(mod, "TagArray",
                                     (PyObject *)&TagArray_Type) < 0
            || PyModule_AddObjectRef(mod, "MeshCore",
                                     (PyObject *)&MeshCore_Type) < 0
            || PyModule_AddObjectRef(mod, "L1Hit",
                                     (PyObject *)&L1Hit_Type) < 0
            || PyModule_AddObjectRef(mod, "SimulationError",
                                     SimulationError) < 0
            || PyModule_AddObjectRef(mod, "SimDeadlockError",
                                     SimDeadlockError) < 0) {
        Py_DECREF(mod);
        goto fail;
    }
    return mod;

fail:
    Py_CLEAR(SimulationError);
    Py_CLEAR(SimDeadlockError);
    Py_CLEAR(chain_hooks_fn);
    Py_CLEAR(blocked_report_fn);
    Py_CLEAR(blocked_snapshot_fn);
    Py_CLEAR(join_fn);
    Py_CLEAR(perf_counter_fn);
    Py_XDECREF(pure_sim);
    Py_XDECREF(pure_proc);
    return NULL;
}
