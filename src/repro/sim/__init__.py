"""Discrete-event simulation kernel for the GLocks CMP simulator.

This package provides the deterministic event engine every other subsystem
is built on:

- :mod:`repro.sim.kernel` — the event heap, generator-coroutine processes
  and one-to-many :class:`~repro.sim.kernel.Signal` synchronization.
- :mod:`repro.sim.config` — the CMP configuration dataclasses mirroring the
  paper's Table II baseline.
- :mod:`repro.sim.stats` — counters, histograms and interval recorders used
  for traffic, energy and contention accounting.
- :mod:`repro.sim.profile` — opt-in per-component cycle/event attribution
  (``repro-sim ... --profile``).
"""

from repro.sim.kernel import (Process, Signal, SimDeadlockError, Simulator,
                              SimulationError)
from repro.sim.profile import Profiler, active_profiler, profiling
from repro.sim.trace import TraceEvent, Tracer
from repro.sim.config import CacheConfig, CMPConfig, GLineConfig, NoCConfig

__all__ = [
    "Process",
    "Signal",
    "Simulator",
    "SimulationError",
    "SimDeadlockError",
    "CacheConfig",
    "CMPConfig",
    "GLineConfig",
    "NoCConfig",
    "Profiler",
    "profiling",
    "active_profiler",
    "TraceEvent",
    "Tracer",
]
