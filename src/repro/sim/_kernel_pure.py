"""Deterministic discrete-event simulation kernel.

Events execute in ``(time, sequence)`` order — two events scheduled for
the same cycle always run in the order they were scheduled — making every
simulation bit-reproducible.  Internally the kernel keeps **two** queues
that together realize that total order:

* a binary heap for future-time events, and
* a plain FIFO ``deque`` for *same-cycle* (zero-delay) events — the
  dominant class, since every :meth:`Signal.fire` wakeup is scheduled at
  the current cycle.  Same-cycle events are appended with strictly
  increasing sequence numbers at the current time, so the deque is always
  sorted by ``(time, seq)`` and a single head-to-head comparison against
  the heap top picks the globally next event without any heap traffic.

Events are pooled ``__slots__`` records recycled through a free list, so
steady-state simulation allocates no per-event garbage, and
:meth:`Simulator.schedule` skips heap discipline entirely when the heap
is empty (the monotonic fast path).

Model components come in two flavours:

* **Callback state machines** (caches, directories, routers) register plain
  functions with :meth:`Simulator.schedule`.
* **Processes** (cores, lock-manager drivers, workload threads) are Python
  generators driven by :class:`Process`.  A process generator may yield:

  - a non-negative ``int`` — suspend for that many cycles;
  - a :class:`Signal` — suspend until the signal fires; the value passed to
    :meth:`Signal.fire` becomes the value of the ``yield`` expression;
  - another generator is composed with ``yield from`` as usual.

This mirrors the structure of simulators such as SimPy but is intentionally
minimal: the hot path is a deque rotation plus a generator ``send`` (see
``docs/performance.md`` for the design and measured numbers).
"""

from __future__ import annotations

import weakref
from collections import deque
from heapq import heappop, heappush
from time import perf_counter
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = ["Simulator", "Process", "Signal", "SimulationError",
           "SimDeadlockError"]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (negative delays, running a finished sim...)."""


class SimDeadlockError(SimulationError):
    """Processes can no longer make progress (watchdog or drained queue).

    Besides the human-readable message, :attr:`blocked` carries a
    structured ``[(process_name, signal_name_or_None), ...]`` snapshot —
    one entry per unfinished process, with the name of the signal it was
    suspended on (``None`` when it was delayed/ready instead) — so chaos
    tests and tooling can diagnose a stall without parsing the string.
    """

    def __init__(self, message: str,
                 blocked: Optional[List[Tuple[str, Optional[str]]]] = None
                 ) -> None:
        super().__init__(message)
        #: ``(process name, awaited signal name or None)`` per stalled process
        self.blocked: List[Tuple[str, Optional[str]]] = blocked or []


class _Event:
    """One scheduled callback; pooled via the simulator's free list.

    Future-time events sit in the heap wrapped as ``(time, seq, event)``
    triples — sequence numbers are unique, so heap ordering resolves on
    the two leading ints with C-speed tuple comparison and never falls
    through to comparing the records themselves.  Same-cycle events go in
    the ready deque bare.
    """

    __slots__ = ("time", "seq", "fn", "args")

    def __init__(self, time: int, seq: int, fn: Callable, args: tuple) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args


class Signal:
    """A one-to-many wake-up point.

    Waiters are generator processes (via ``yield signal``) or plain callbacks
    (via :meth:`add_callback`).  Firing wakes every *currently registered*
    waiter; waiters registered during the fire are not woken until the next
    fire.  Wake-ups are scheduled as zero-delay events so that a fire never
    re-enters a waiter synchronously — this keeps event ordering deterministic
    and stack depth bounded.
    """

    __slots__ = ("sim", "name", "_waiters", "fire_count", "last_value",
                 "__weakref__")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._waiters: List[Callable[[Any], None]] = []
        #: number of times :meth:`fire` has been called (useful in tests).
        self.fire_count = 0
        #: value passed to the most recent :meth:`fire` — retained only
        #: while diagnostics (signal registry or tracer) are attached, so
        #: plain runs never pin workload payloads for the signal's lifetime
        self.last_value: Any = None
        registry = sim._signal_registry
        if registry is not None:
            registry.append(weakref.ref(self))
            if len(registry) > sim._registry_compact_at:
                sim._compact_signal_registry()

    def add_callback(self, fn: Callable[[Any], None]) -> None:
        """Register ``fn(value)`` to run (once) the next time the signal fires."""
        self._waiters.append(fn)

    def fire(self, value: Any = None) -> None:
        """Wake all registered waiters with ``value`` at the current cycle."""
        self.fire_count += 1
        sim = self.sim
        if sim._retain_values or sim.tracer is not None:
            # diagnostics attached (sanitizer/registry or tracing): keep
            # the payload inspectable; otherwise drop it so long campaigns
            # don't pin dead workload objects for the signal's lifetime
            self.last_value = value
        waiters = self._waiters
        if not waiters:
            return
        self._waiters = []
        # inlined zero-delay scheduling (== sim.schedule(0, fn, value) per
        # waiter): wakeups are the hottest allocation site in the kernel
        ready_append = sim._ready.append
        free = sim._free
        now = sim.now
        seq = sim._seq
        for fn in waiters:
            seq += 1
            if free:
                ev = free.pop()
                ev.time = now
                ev.seq = seq
                ev.fn = fn
                ev.args = (value,)
            else:
                ev = _Event(now, seq, fn, (value,))
            ready_append(ev)
        sim._seq = seq

    @property
    def n_waiters(self) -> int:
        """Number of waiters currently registered."""
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"


class Process:
    """Drives a generator coroutine inside a :class:`Simulator`.

    Created through :meth:`Simulator.spawn`.  The generator's ``return``
    value is stored in :attr:`result` and broadcast through :attr:`done`.
    """

    __slots__ = ("sim", "name", "_gen", "finished", "result", "done",
                 "waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._gen = gen
        self.finished = False
        self.result: Any = None
        #: fires (with the return value) when the generator completes.
        self.done = Signal(sim, name=f"{name}.done")
        #: the :class:`Signal` this process is currently suspended on, if any
        #: (diagnostic: the deadlock watchdog names it in its report).
        self.waiting_on: Optional[Signal] = None

    def _step(self, value: Any = None) -> None:
        if self.finished:
            return
        self.waiting_on = None
        try:
            item = self._gen.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            # bump before firing: run_until_processes_finish re-evaluates
            # its finish predicate only when this stamp moves
            self.sim._finish_stamp += 1
            self.done.fire(stop.value)
            return
        # exact-type fast paths first: yielded ints and Signals are the
        # per-event common case (type() is also how bool is excluded —
        # bool is an int subclass, and `yield True` is always a bug)
        cls = type(item)
        if cls is int:
            if item >= 0:
                # inlined sim.schedule(item, self._step): delay yields are
                # the single most frequent scheduling call in a simulation
                sim = self.sim
                sim._seq += 1
                seq = sim._seq
                time = sim.now + item
                free = sim._free
                if free:
                    ev = free.pop()
                    ev.time = time
                    ev.seq = seq
                    ev.fn = self._step
                    ev.args = ()
                else:
                    ev = _Event(time, seq, self._step, ())
                if item == 0:
                    sim._ready.append(ev)
                else:
                    heap = sim._heap
                    if heap:
                        heappush(heap, (time, seq, ev))
                    else:
                        heap.append((time, seq, ev))
                return
            raise SimulationError(
                f"process {self.name!r} yielded negative delay {item}"
            )
        if cls is Signal:
            self.waiting_on = item
            item._waiters.append(self._step)
            return
        self._step_slow(item)

    def _step_slow(self, item: Any) -> None:
        """Uncommon yields: int/Signal subclasses and type errors."""
        if isinstance(item, bool):
            # `yield True` would silently act as a 1-cycle delay, which is
            # always a bug (a forgotten `yield from` around a
            # predicate-returning coroutine, typically)
            raise SimulationError(
                f"process {self.name!r} yielded a bool ({item}); "
                "yield an int delay or a Signal"
            )
        if isinstance(item, int):
            if item < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {item}"
                )
            self.sim.schedule(item, self._step)
        elif isinstance(item, Signal):
            self.waiting_on = item
            item.add_callback(self._step)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported item {item!r}; "
                "yield an int delay or a Signal"
            )

    def join(self) -> Generator[Signal, Any, Any]:
        """Generator usable as ``result = yield from proc.join()``."""
        if not self.finished:
            yield self.done
        return self.result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "finished" if self.finished else "running"
        return f"Process({self.name!r}, {state})"


def _chain_hooks(hooks):
    """One ``on_event`` callable running ``hooks`` in order (see
    :meth:`Simulator.add_on_event`); the list rides along as ``_hooks`` so
    add/remove can rebuild the chain."""
    def chain(sim: "Simulator") -> None:
        for hook in hooks:
            hook(sim)
    chain._hooks = hooks
    return chain


class Simulator:
    """The event engine: a deterministic ``(time, seq)``-ordered dual queue.

    Args:
        profile: optional :class:`repro.sim.profile.Profiler`; when set,
            every executed event is wall-timed and attributed to the model
            component that owns its callback.  ``None`` keeps the hot loop
            free of timing calls.
    """

    def __init__(self, profile=None) -> None:
        # future-time events, heap-ordered by (time, seq)
        self._heap: List[_Event] = []
        # same-cycle events in FIFO (== seq) order; always sorted by
        # (time, seq) because entries are appended at the current time
        self._ready: "deque[_Event]" = deque()
        # recycled _Event records (capped so a burst cannot pin memory)
        self._free: List[_Event] = []
        self._seq = 0
        self.now = 0
        self._events_executed = 0
        self._processes: List[Process] = []
        # incremented whenever any process finishes; lets the run loops
        # re-check their finish predicate in O(1) per event
        self._finish_stamp = 0
        #: optional :class:`repro.sim.trace.Tracer`; instrumented components
        #: emit events here when set (see repro.sim.trace)
        self.tracer = None
        #: optional :class:`repro.sim.profile.Profiler` (cycle attribution)
        self.profiler = profile
        #: optional checkpoint ``fn(sim)`` invoked after every executed event;
        #: the runtime invariant sanitizer (repro.verify.invariants) hooks in
        #: here.  ``None`` keeps the hot path a single falsy check.
        self.on_event: Optional[Callable[["Simulator"], None]] = None
        # weak registry of live Signals, populated only when enabled (see
        # enable_signal_registry) so normal runs pay nothing
        self._signal_registry: Optional[List["weakref.ref[Signal]"]] = None
        # compact the registry when it outgrows this (see Signal.__init__)
        self._registry_compact_at = 256
        # retain Signal.last_value only while diagnostics want it
        self._retain_values = False

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    def enable_signal_registry(self) -> None:
        """Track every Signal created from now on (weakly).

        Used by the invariant sanitizer to detect orphaned waiters at drain;
        off by default so plain simulations allocate nothing extra.
        """
        if self._signal_registry is None:
            self._signal_registry = []
        self._retain_values = True

    def add_on_event(self, fn: Callable[["Simulator"], None]) -> None:
        """Add ``fn`` to the per-event checkpoint, composing with any hook
        already installed.

        ``on_event`` itself stays a single callable (the hot loop pays one
        falsy check when nothing is attached); with several observers —
        e.g. the invariant sanitizer and a future per-event watcher — the
        installed callable is a chain that runs them in attachment order.
        """
        current = self.on_event
        if current is None:
            self.on_event = fn
            return
        hooks = list(getattr(current, "_hooks", (current,)))
        hooks.append(fn)
        self.on_event = _chain_hooks(hooks)

    def remove_on_event(self, fn: Callable[["Simulator"], None]) -> None:
        """Remove ``fn`` from the checkpoint chain (no-op if absent).

        Matches by equality so bound methods — which build a fresh object
        per attribute access — are found.
        """
        current = self.on_event
        if current is None:
            return
        hooks = [h for h in getattr(current, "_hooks", (current,)) if h != fn]
        if not hooks:
            self.on_event = None
        elif len(hooks) == 1:
            self.on_event = hooks[0]
        else:
            self.on_event = _chain_hooks(hooks)

    def _compact_signal_registry(self) -> None:
        """Drop dead weakrefs in place and raise the next compaction bar.

        Long campaigns create and drop millions of short-lived signals
        (fill/watch/done signals); without periodic compaction the
        registry list would grow monotonically with dead references.
        """
        registry = self._signal_registry
        if registry is None:
            return
        registry[:] = [ref for ref in registry if ref() is not None]
        self._registry_compact_at = max(256, 2 * len(registry))

    def live_signals(self) -> List[Signal]:
        """Signals created since :meth:`enable_signal_registry` and still alive."""
        if self._signal_registry is None:
            return []
        alive = []
        refs = []
        for ref in self._signal_registry:
            sig = ref()
            if sig is not None:
                alive.append(sig)
                refs.append(ref)
        self._signal_registry = refs  # drop dead references as we go
        self._registry_compact_at = max(256, 2 * len(refs))
        return alive

    # ------------------------------------------------------------------ #
    # scheduling primitives
    # ------------------------------------------------------------------ #
    def schedule(self, delay: int, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` cycles (0 = later this cycle)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq += 1
        time = self.now + delay
        free = self._free
        if free:
            ev = free.pop()
            ev.time = time
            ev.seq = self._seq
            ev.fn = fn
            ev.args = args
        else:
            ev = _Event(time, self._seq, fn, args)
        if delay == 0:
            self._ready.append(ev)
        else:
            heap = self._heap
            if heap:
                heappush(heap, (time, self._seq, ev))
            else:
                heap.append((time, self._seq, ev))  # nothing to sift against

    def schedule_at(self, time: int, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute cycle ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(f"cannot schedule in the past ({time} < {self.now})")
        self._seq += 1
        free = self._free
        if free:
            ev = free.pop()
            ev.time = time
            ev.seq = self._seq
            ev.fn = fn
            ev.args = args
        else:
            ev = _Event(time, self._seq, fn, args)
        if time == self.now:
            self._ready.append(ev)
        else:
            heap = self._heap
            if heap:
                heappush(heap, (time, self._seq, ev))
            else:
                heap.append((time, self._seq, ev))

    def signal(self, name: str = "") -> Signal:
        """Create a new :class:`Signal` bound to this simulator."""
        return Signal(self, name)

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a generator as a process on the next zero-delay slot."""
        proc = Process(self, gen, name or f"proc{len(self._processes)}")
        self._processes.append(proc)
        self.schedule(0, proc._step)
        return proc

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Args:
            until: stop once simulated time would pass this cycle.
            max_events: safety valve against runaway simulations.

        Returns:
            The final simulated cycle.
        """
        heap = self._heap
        ready = self._ready
        free = self._free
        profiler = self.profiler
        # the checkpoint hook attaches/detaches only between runs (see
        # repro.verify.invariants), so resolve it once
        on_event = self.on_event
        executed = 0
        while True:
            # pick the globally next event: the deque is (time, seq)-sorted
            # and so is the heap, so one head comparison decides
            if ready:
                ev = ready[0]
                from_heap = False
                if heap:
                    head = heap[0]
                    if head[0] < ev.time or (head[0] == ev.time
                                             and head[1] < ev.seq):
                        from_heap = True
                        ev = head[2]
            elif heap:
                from_heap = True
                ev = heap[0][2]
            else:
                break
            time = ev.time
            if until is not None and time > until:
                self.now = until
                break
            if from_heap:
                heappop(heap)
            else:
                ready.popleft()
            self.now = time
            fn = ev.fn
            args = ev.args
            ev.fn = ev.args = None  # release references before recycling
            if len(free) < 4096:
                free.append(ev)
            if profiler is None:
                fn(*args)
            else:
                t0 = perf_counter()
                fn(*args)
                profiler.record(fn, time, perf_counter() - t0)
            executed += 1
            if on_event is not None:
                on_event(self)
            if max_events is not None and executed >= max_events:
                self._events_executed += executed
                raise SimulationError(
                    f"exceeded max_events={max_events} at cycle {self.now}"
                )
        self._events_executed += executed
        return self.now

    def run_until_processes_finish(
        self, procs: Iterable[Process], max_events: Optional[int] = None,
        max_cycles: Optional[int] = None,
    ) -> int:
        """Run until every process in ``procs`` has finished.

        Leftover events (e.g. background pollers) are abandoned, which models
        "the parallel phase ended"; the returned cycle is the completion time
        of the last process.

        Args:
            max_events: safety valve against runaway simulations.
            max_cycles: deadlock watchdog — if simulated time passes this
                cycle with processes still unfinished, raise a
                :class:`SimDeadlockError` naming the blocked processes and
                the signals they wait on (also available structured on the
                exception's ``blocked`` attribute).
        """
        procs = list(procs)
        heap = self._heap
        ready = self._ready
        free = self._free
        profiler = self.profiler
        on_event = self.on_event  # attaches only between runs; see run()
        executed = 0
        # the all-finished predicate is O(n_procs); re-evaluate it only
        # when the kernel's finish stamp moved (some process completed)
        stamp = self._finish_stamp - 1
        try:
            while True:
                if stamp != self._finish_stamp:
                    stamp = self._finish_stamp
                    if all(p.finished for p in procs):
                        return self.now
                if ready:
                    ev = ready[0]
                    from_heap = False
                    if heap:
                        head = heap[0]
                        if head[0] < ev.time or (head[0] == ev.time
                                                 and head[1] < ev.seq):
                            from_heap = True
                            ev = head[2]
                elif heap:
                    from_heap = True
                    ev = heap[0][2]
                else:
                    break
                time = ev.time
                if max_cycles is not None and time > max_cycles:
                    self.now = max_cycles
                    raise SimDeadlockError(
                        f"deadlock watchdog: exceeded max_cycles={max_cycles} "
                        f"with blocked processes: {self._blocked_report(procs)}",
                        blocked=self._blocked_snapshot(procs),
                    )
                if from_heap:
                    heappop(heap)
                else:
                    ready.popleft()
                self.now = time
                fn = ev.fn
                args = ev.args
                ev.fn = ev.args = None
                if len(free) < 4096:
                    free.append(ev)
                if profiler is None:
                    fn(*args)
                else:
                    t0 = perf_counter()
                    fn(*args)
                    profiler.record(fn, time, perf_counter() - t0)
                executed += 1
                if on_event is not None:
                    on_event(self)
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} at cycle {self.now}"
                    )
        finally:
            self._events_executed += executed
        unfinished = [p.name for p in procs if not p.finished]
        if unfinished:
            raise SimDeadlockError(
                "event queue drained with unfinished processes: "
                f"{self._blocked_report(procs)}",
                blocked=self._blocked_snapshot(procs),
            )
        return self.now

    @staticmethod
    def _blocked_snapshot(
        procs: Iterable[Process],
    ) -> List[Tuple[str, Optional[str]]]:
        """Structured form of :meth:`_blocked_report` (SimDeadlockError)."""
        return [
            (p.name, p.waiting_on.name if p.waiting_on is not None else None)
            for p in procs if not p.finished
        ]

    @staticmethod
    def _blocked_report(procs: Iterable[Process]) -> str:
        """``name (waiting on signal)`` for every unfinished process."""
        parts = []
        for p in procs:
            if p.finished:
                continue
            if p.waiting_on is not None:
                parts.append(f"{p.name} (waiting on "
                             f"{p.waiting_on.name or 'unnamed signal'})")
            else:
                parts.append(f"{p.name} (delayed/ready)")
        return "; ".join(parts) or "<none>"

    @property
    def events_executed(self) -> int:
        """Total events executed so far (performance/diagnostic metric)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of events currently queued."""
        return len(self._heap) + len(self._ready)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Simulator(now={self.now}, "
                f"pending={len(self._heap) + len(self._ready)})")
