"""Opt-in per-component attribution of simulator work.

Answers "where do the cycles (and the wall-time) go?" for a simulation:
every executed event is attributed to the model component that owns its
callback — Core/workload processes, L1 controllers, L2/directory slices,
the mesh, lock controllers — and per component the profiler accumulates

* ``events``  — events dispatched,
* ``wall_s``  — host wall-time spent inside those callbacks,
* ``cycles``  — distinct simulated cycles in which the component ran.

Profiling is strictly an observer: it is enabled per
:class:`~repro.sim.kernel.Simulator` (``Simulator(profile=...)``) or
ambiently via :func:`profiling`, never stored in a
:class:`~repro.runner.spec.MachineSpec`, and therefore can never reach a
spec digest or change a :class:`~repro.machine.RunResult` — the
determinism suite asserts profiler-on and profiler-off runs fingerprint
identically.

Usage::

    from repro.sim.profile import profiling

    with profiling() as prof:
        machine = Machine(config)      # picks up the active profiler
        machine.run(programs)
    print(prof.format_table())

or from the CLI: ``repro-sim run --profile ...`` /
``repro-sim experiment fig08 --profile ...``.
"""

from __future__ import annotations

import re
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["ComponentProfile", "Profiler", "profiling", "active_profiler"]


class ComponentProfile:
    """Accumulated work of one model component."""

    __slots__ = ("events", "wall_s", "cycles", "_last_cycle")

    def __init__(self) -> None:
        self.events = 0
        self.wall_s = 0.0
        #: distinct simulated cycles in which this component executed
        self.cycles = 0
        self._last_cycle = -1

    def as_dict(self) -> Dict[str, Any]:
        return {"events": self.events, "wall_s": self.wall_s,
                "cycles": self.cycles}


_INSTANCE_MARKERS = re.compile(r"0x[0-9a-fA-F]+|\d+")


def _role_of(name: str) -> str:
    """A process/signal name with instance markers (ids, addresses) removed,
    so e.g. ``core0..core31`` and ``home3-GetS-0x1f40`` aggregate as the
    roles ``core`` and ``home-GetS``."""
    return _INSTANCE_MARKERS.sub("", name).strip("-_.:") or "unnamed"


def _component_of(fn: Callable) -> str:
    """Attribution key for an event callback.

    Bound methods are attributed to their owner: model components
    (L1Cache, L2DirectorySlice, ...) by class name, kernel Processes by
    their role (see :func:`_role_of`).  Plain functions and closures
    (e.g. the per-tile mesh dispatcher) fall back to their qualified
    name with the ``<locals>`` noise removed.
    """
    owner = getattr(fn, "__self__", None)
    if owner is None:
        qualname = getattr(fn, "__qualname__", None)
        if not qualname:
            return repr(fn)
        return qualname.replace(".<locals>", "")
    cls = type(owner).__name__
    if cls == "Process":
        return f"process:{_role_of(owner.name)}"
    if cls == "Signal":
        return f"signal:{_role_of(owner.name)}"
    return cls


class Profiler:
    """Collects per-component event/wall/cycle attribution.

    Pass it to ``Simulator(profile=...)`` (or enter :func:`profiling`
    before building a Machine); the kernel calls :meth:`record` once per
    executed event.
    """

    def __init__(self) -> None:
        self._components: Dict[str, ComponentProfile] = {}
        # callback -> attribution key; bound methods hash by
        # (instance, function), so this stays one entry per component
        # instance rather than one per event
        self._keys: Dict[Callable, str] = {}
        self.total_events = 0
        self.total_wall_s = 0.0

    # called from the kernel hot loop — keep it lean
    def record(self, fn: Callable, time: int, wall: float) -> None:
        """Attribute one executed event (``fn`` ran at cycle ``time``)."""
        key = self._keys.get(fn)
        if key is None:
            key = self._keys[fn] = _component_of(fn)
        comp = self._components.get(key)
        if comp is None:
            comp = self._components[key] = ComponentProfile()
        comp.events += 1
        comp.wall_s += wall
        if time != comp._last_cycle:
            comp._last_cycle = time
            comp.cycles += 1
        self.total_events += 1
        self.total_wall_s += wall

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def report(self) -> Dict[str, Dict[str, Any]]:
        """Per-component ``{events, wall_s, cycles}``, heaviest first."""
        items = sorted(self._components.items(),
                       key=lambda kv: -kv[1].wall_s)
        return {name: comp.as_dict() for name, comp in items}

    def format_table(self) -> str:
        """Human-readable profile, heaviest component first."""
        rows: List[str] = []
        header = (f"{'component':<28} {'events':>10} {'wall ms':>9} "
                  f"{'wall %':>7} {'sim cycles':>11}")
        rows.append(header)
        rows.append("-" * len(header))
        total_wall = self.total_wall_s or 1.0
        for name, comp in sorted(self._components.items(),
                                 key=lambda kv: -kv[1].wall_s):
            rows.append(f"{name:<28} {comp.events:>10d} "
                        f"{comp.wall_s * 1e3:>9.2f} "
                        f"{comp.wall_s / total_wall:>6.1%} "
                        f"{comp.cycles:>11d}")
        rows.append("-" * len(header))
        rows.append(f"{'total':<28} {self.total_events:>10d} "
                    f"{self.total_wall_s * 1e3:>9.2f} {'100.0%':>7} "
                    f"{'':>11}")
        return "\n".join(rows)


#: the ambient profiler new Machines adopt (see :func:`profiling`)
_ACTIVE: Optional[Profiler] = None


def active_profiler() -> Optional[Profiler]:
    """The profiler installed by the innermost :func:`profiling`, if any."""
    return _ACTIVE


@contextmanager
def profiling(profiler: Optional[Profiler] = None) -> Iterator[Profiler]:
    """Install ``profiler`` (default: a fresh one) as the ambient profiler.

    Machines built inside the ``with`` block hand it to their Simulator;
    this is how the CLI's ``--profile`` reaches simulations constructed
    deep inside experiment modules without threading a parameter through
    every layer (and without touching any spec, keeping digests stable).
    """
    global _ACTIVE
    if profiler is None:
        profiler = Profiler()
    previous = _ACTIVE
    _ACTIVE = profiler
    try:
        yield profiler
    finally:
        _ACTIVE = previous
