"""Deterministic discrete-event simulation kernel.

The kernel is a binary-heap event queue keyed by ``(time, sequence)`` so that
two events scheduled for the same cycle always execute in the order they were
scheduled, making every simulation bit-reproducible.

Model components come in two flavours:

* **Callback state machines** (caches, directories, routers) register plain
  functions with :meth:`Simulator.schedule`.
* **Processes** (cores, lock-manager drivers, workload threads) are Python
  generators driven by :class:`Process`.  A process generator may yield:

  - a non-negative ``int`` — suspend for that many cycles;
  - a :class:`Signal` — suspend until the signal fires; the value passed to
    :meth:`Signal.fire` becomes the value of the ``yield`` expression;
  - another generator is composed with ``yield from`` as usual.

This mirrors the structure of simulators such as SimPy but is intentionally
minimal: the hot path is ``heapq.heappush``/``heappop`` plus a generator
``send``, which keeps full 32-core runs of the paper's workloads in the
seconds range (see the performance notes in ``DESIGN.md``).
"""

from __future__ import annotations

import heapq
import weakref
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = ["Simulator", "Process", "Signal", "SimulationError",
           "SimDeadlockError"]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (negative delays, running a finished sim...)."""


class SimDeadlockError(SimulationError):
    """Processes can no longer make progress (watchdog or drained queue).

    Besides the human-readable message, :attr:`blocked` carries a
    structured ``[(process_name, signal_name_or_None), ...]`` snapshot —
    one entry per unfinished process, with the name of the signal it was
    suspended on (``None`` when it was delayed/ready instead) — so chaos
    tests and tooling can diagnose a stall without parsing the string.
    """

    def __init__(self, message: str,
                 blocked: Optional[List[Tuple[str, Optional[str]]]] = None
                 ) -> None:
        super().__init__(message)
        #: ``(process name, awaited signal name or None)`` per stalled process
        self.blocked: List[Tuple[str, Optional[str]]] = blocked or []


class Signal:
    """A one-to-many wake-up point.

    Waiters are generator processes (via ``yield signal``) or plain callbacks
    (via :meth:`add_callback`).  Firing wakes every *currently registered*
    waiter; waiters registered during the fire are not woken until the next
    fire.  Wake-ups are scheduled as zero-delay events so that a fire never
    re-enters a waiter synchronously — this keeps event ordering deterministic
    and stack depth bounded.
    """

    __slots__ = ("sim", "name", "_waiters", "fire_count", "last_value",
                 "__weakref__")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._waiters: List[Callable[[Any], None]] = []
        #: number of times :meth:`fire` has been called (useful in tests).
        self.fire_count = 0
        #: value passed to the most recent :meth:`fire`.
        self.last_value: Any = None
        if sim._signal_registry is not None:
            sim._signal_registry.append(weakref.ref(self))

    def add_callback(self, fn: Callable[[Any], None]) -> None:
        """Register ``fn(value)`` to run (once) the next time the signal fires."""
        self._waiters.append(fn)

    def fire(self, value: Any = None) -> None:
        """Wake all registered waiters with ``value`` at the current cycle."""
        self.fire_count += 1
        self.last_value = value
        if not self._waiters:
            return
        waiters, self._waiters = self._waiters, []
        for fn in waiters:
            self.sim.schedule(0, fn, value)

    @property
    def n_waiters(self) -> int:
        """Number of waiters currently registered."""
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"


class Process:
    """Drives a generator coroutine inside a :class:`Simulator`.

    Created through :meth:`Simulator.spawn`.  The generator's ``return``
    value is stored in :attr:`result` and broadcast through :attr:`done`.
    """

    __slots__ = ("sim", "name", "_gen", "finished", "result", "done",
                 "waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._gen = gen
        self.finished = False
        self.result: Any = None
        #: fires (with the return value) when the generator completes.
        self.done = Signal(sim, name=f"{name}.done")
        #: the :class:`Signal` this process is currently suspended on, if any
        #: (diagnostic: the deadlock watchdog names it in its report).
        self.waiting_on: Optional[Signal] = None

    def _step(self, value: Any = None) -> None:
        if self.finished:
            return
        self.waiting_on = None
        try:
            item = self._gen.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.done.fire(stop.value)
            return
        if isinstance(item, bool):
            # bool is an int subclass: `yield True` would silently act as a
            # 1-cycle delay, which is always a bug (a forgotten `yield from`
            # around a predicate-returning coroutine, typically)
            raise SimulationError(
                f"process {self.name!r} yielded a bool ({item}); "
                "yield an int delay or a Signal"
            )
        if isinstance(item, int):
            if item < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {item}"
                )
            self.sim.schedule(item, self._step)
        elif isinstance(item, Signal):
            self.waiting_on = item
            item.add_callback(self._step)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported item {item!r}; "
                "yield an int delay or a Signal"
            )

    def join(self) -> Generator[Signal, Any, Any]:
        """Generator usable as ``result = yield from proc.join()``."""
        if not self.finished:
            yield self.done
        return self.result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "finished" if self.finished else "running"
        return f"Process({self.name!r}, {state})"


class Simulator:
    """The event engine: a deterministic ``(time, seq)``-ordered heap."""

    def __init__(self) -> None:
        self._queue: List[Tuple[int, int, Callable, tuple]] = []
        self._seq = 0
        self.now = 0
        self._events_executed = 0
        self._processes: List[Process] = []
        #: optional :class:`repro.sim.trace.Tracer`; instrumented components
        #: emit events here when set (see repro.sim.trace)
        self.tracer = None
        #: optional checkpoint ``fn(sim)`` invoked after every executed event;
        #: the runtime invariant sanitizer (repro.verify.invariants) hooks in
        #: here.  ``None`` keeps the hot path a single falsy check.
        self.on_event: Optional[Callable[["Simulator"], None]] = None
        # weak registry of live Signals, populated only when enabled (see
        # enable_signal_registry) so normal runs pay nothing
        self._signal_registry: Optional[List["weakref.ref[Signal]"]] = None

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    def enable_signal_registry(self) -> None:
        """Track every Signal created from now on (weakly).

        Used by the invariant sanitizer to detect orphaned waiters at drain;
        off by default so plain simulations allocate nothing extra.
        """
        if self._signal_registry is None:
            self._signal_registry = []

    def live_signals(self) -> List[Signal]:
        """Signals created since :meth:`enable_signal_registry` and still alive."""
        if self._signal_registry is None:
            return []
        alive = []
        refs = []
        for ref in self._signal_registry:
            sig = ref()
            if sig is not None:
                alive.append(sig)
                refs.append(ref)
        self._signal_registry = refs  # drop dead references as we go
        return alive

    # ------------------------------------------------------------------ #
    # scheduling primitives
    # ------------------------------------------------------------------ #
    def schedule(self, delay: int, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` cycles (0 = later this cycle)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, fn, args))

    def schedule_at(self, time: int, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute cycle ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(f"cannot schedule in the past ({time} < {self.now})")
        self._seq += 1
        heapq.heappush(self._queue, (time, self._seq, fn, args))

    def signal(self, name: str = "") -> Signal:
        """Create a new :class:`Signal` bound to this simulator."""
        return Signal(self, name)

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a generator as a process on the next zero-delay slot."""
        proc = Process(self, gen, name or f"proc{len(self._processes)}")
        self._processes.append(proc)
        self.schedule(0, proc._step)
        return proc

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Args:
            until: stop once simulated time would pass this cycle.
            max_events: safety valve against runaway simulations.

        Returns:
            The final simulated cycle.
        """
        queue = self._queue
        executed = 0
        while queue:
            time, _seq, fn, args = queue[0]
            if until is not None and time > until:
                self.now = until
                break
            heapq.heappop(queue)
            self.now = time
            fn(*args)
            executed += 1
            if self.on_event is not None:
                self.on_event(self)
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} at cycle {self.now}"
                )
        self._events_executed += executed
        return self.now

    def run_until_processes_finish(
        self, procs: Iterable[Process], max_events: Optional[int] = None,
        max_cycles: Optional[int] = None,
    ) -> int:
        """Run until every process in ``procs`` has finished.

        Leftover events (e.g. background pollers) are abandoned, which models
        "the parallel phase ended"; the returned cycle is the completion time
        of the last process.

        Args:
            max_events: safety valve against runaway simulations.
            max_cycles: deadlock watchdog — if simulated time passes this
                cycle with processes still unfinished, raise a
                :class:`SimDeadlockError` naming the blocked processes and
                the signals they wait on (also available structured on the
                exception's ``blocked`` attribute).
        """
        procs = list(procs)
        queue = self._queue
        executed = 0
        while queue and not all(p.finished for p in procs):
            time, _seq, fn, args = queue[0]
            if max_cycles is not None and time > max_cycles:
                self.now = max_cycles
                raise SimDeadlockError(
                    f"deadlock watchdog: exceeded max_cycles={max_cycles} "
                    f"with blocked processes: {self._blocked_report(procs)}",
                    blocked=self._blocked_snapshot(procs),
                )
            heapq.heappop(queue)
            self.now = time
            fn(*args)
            executed += 1
            if self.on_event is not None:
                self.on_event(self)
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} at cycle {self.now}"
                )
        self._events_executed += executed
        unfinished = [p.name for p in procs if not p.finished]
        if unfinished:
            raise SimDeadlockError(
                "event queue drained with unfinished processes: "
                f"{self._blocked_report(procs)}",
                blocked=self._blocked_snapshot(procs),
            )
        return self.now

    @staticmethod
    def _blocked_snapshot(
        procs: Iterable[Process],
    ) -> List[Tuple[str, Optional[str]]]:
        """Structured form of :meth:`_blocked_report` (SimDeadlockError)."""
        return [
            (p.name, p.waiting_on.name if p.waiting_on is not None else None)
            for p in procs if not p.finished
        ]

    @staticmethod
    def _blocked_report(procs: Iterable[Process]) -> str:
        """``name (waiting on signal)`` for every unfinished process."""
        parts = []
        for p in procs:
            if p.finished:
                continue
            if p.waiting_on is not None:
                parts.append(f"{p.name} (waiting on "
                             f"{p.waiting_on.name or 'unnamed signal'})")
            else:
                parts.append(f"{p.name} (delayed/ready)")
        return "; ".join(parts) or "<none>"

    @property
    def events_executed(self) -> int:
        """Total events executed so far (performance/diagnostic metric)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of events currently queued."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulator(now={self.now}, pending={len(self._queue)})"
