"""Backend-selecting facade over the event kernel.

Two interchangeable implementations of the deterministic event kernel
live behind this module:

* ``pure`` — :mod:`repro.sim._kernel_pure`, the reference pure-Python
  kernel.  Always available.
* ``compiled`` — :mod:`repro.sim._ckernel`, a CPython C extension built
  (optionally) at install time by ``setup.py``.  Present only when a C
  compiler was available at build time; its absence is silent.

Both produce **bit-identical** schedules: events run in ``(time, seq)``
order and every behavioural detail of the pure kernel (error messages,
signal wakeup ordering, the deadlock watchdog, the signal registry) is
replicated by the C backend, which is held to the determinism goldens in
``tests/test_kernel_determinism.py``.

Selection
---------

The active backend is chosen at import time from the
``REPRO_SIM_BACKEND`` environment variable (``pure`` | ``compiled`` |
``auto``, default ``auto`` = compiled when built, else pure) and can be
switched at runtime with :func:`set_backend` — the CLI's
``repro-sim run --backend=...`` knob does exactly that.  Setting
``REPRO_SIM_DISABLE_CEXT=1`` hides a built extension entirely, which is
how the fallback path is exercised in tests without uninstalling it.

Because callers construct kernels via ``Simulator(...)`` /
``Signal(sim, ...)`` imported from this module, those names are exported
as *factories* that late-bind to the active backend; ``isinstance``
checks against processes must use :data:`PROCESS_TYPES`, which covers
both implementations.

Component-level accelerators (the C ``TagArray``, ``Message`` and mesh
core) follow the kernel backend: modules register a callback with
:func:`on_backend_change` and rebind their hot-path helpers whenever the
backend flips, so ``--backend=pure`` measures an honest all-Python
configuration even when the extension is built.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional

from repro.sim import _kernel_pure as _pure
from repro.sim._kernel_pure import SimDeadlockError, SimulationError

__all__ = [
    "Simulator", "Signal", "Process", "SimulationError", "SimDeadlockError",
    "BackendUnavailableError", "PROCESS_TYPES", "SIGNAL_TYPES",
    "active_backend", "available_backends", "set_backend",
    "on_backend_change", "resolve_backend",
]

#: environment knob consulted at import (and exported to worker processes
#: by the CLI so process-pool runs inherit the selection)
BACKEND_ENV = "REPRO_SIM_BACKEND"
#: set to any non-empty value to pretend the C extension was never built
DISABLE_ENV = "REPRO_SIM_DISABLE_CEXT"

_ckernel = None
if not os.environ.get(DISABLE_ENV):
    try:
        from repro.sim import _ckernel  # type: ignore[no-redef]
    except ImportError:
        _ckernel = None


class BackendUnavailableError(RuntimeError):
    """A backend was requested that is not built on this machine."""


_IMPLS = {"pure": _pure}
if _ckernel is not None:
    _IMPLS["compiled"] = _ckernel

#: classes a live process may be an instance of (for ``isinstance`` in
#: verification code — both backends define a type named ``Process``)
PROCESS_TYPES = tuple(impl.Process for impl in _IMPLS.values())
#: same for signals (waiter-list introspection in the sanitizer)
SIGNAL_TYPES = tuple(impl.Signal for impl in _IMPLS.values())

_listeners: List[Callable[[str], None]] = []


def available_backends() -> List[str]:
    """Names of the backends importable on this machine."""
    return list(_IMPLS)


def resolve_backend(name: str) -> str:
    """Map a requested backend name (including ``auto``) to a concrete one.

    Raises :class:`BackendUnavailableError` for an explicit request that
    cannot be satisfied, and ``ValueError`` for an unknown name.
    """
    if name == "auto":
        return "compiled" if "compiled" in _IMPLS else "pure"
    if name not in ("pure", "compiled"):
        raise ValueError(
            f"unknown simulator backend {name!r}; "
            f"choose from pure, compiled, auto")
    if name not in _IMPLS:
        raise BackendUnavailableError(
            "compiled simulator backend is not built on this machine "
            "(build it with `python setup.py build_ext --inplace`, or use "
            "--backend=pure/auto)")
    return name


_active = resolve_backend(os.environ.get(BACKEND_ENV, "auto") or "auto")


def active_backend() -> str:
    """The backend new :func:`Simulator` instances will use."""
    return _active


def on_backend_change(callback: Callable[[str], None]) -> None:
    """Register ``callback(backend_name)``, invoked now and on each switch.

    Used by component modules (messages, caches, mesh) to rebind their
    accelerated helpers so they always match the kernel backend.
    """
    _listeners.append(callback)
    callback(_active)


def set_backend(name: str) -> str:
    """Switch the active backend; returns the concrete backend selected.

    Existing simulators keep their implementation; only subsequently
    constructed ones (and the component helper bindings) change.
    """
    global _active
    concrete = resolve_backend(name)
    if concrete != _active:
        _active = concrete
        for callback in _listeners:
            callback(concrete)
    return concrete


# --------------------------------------------------------------------- #
# late-binding constructors
# --------------------------------------------------------------------- #
def Simulator(profile=None):
    """Construct an event kernel using the active backend."""
    return _IMPLS[_active].Simulator(profile=profile)


def Signal(sim, name: str = ""):
    """Construct a signal on ``sim`` (whatever backend ``sim`` uses)."""
    return sim.signal(name)


def Process(sim, gen, name: Optional[str] = None):
    """Construct a process on ``sim`` (normally via ``sim.spawn``)."""
    return sim.spawn(gen, name=name or "")


def compiled_impl():
    """The compiled backend module, or ``None`` when not built.

    Component modules (e.g. the mesh) use this to reach the C helper
    types (``MeshCore``, ``TagArray``) that have no pure counterpart.
    """
    return _ckernel
