"""Structured event tracing.

A :class:`Tracer` attached to a :class:`~repro.sim.kernel.Simulator`
(``sim.tracer = Tracer()``) receives one record per interesting event from
the instrumented components:

===========  ====================================================
category     emitted by
===========  ====================================================
``noc``      every main-network message injection (kind, src->dst)
``gline``    every 1-bit G-line signal
``lock``     lock acquire start / acquire grant / release
``sync``     barrier arrival / departure
===========  ====================================================

Tracing is off by default and costs one attribute check per event when off.
The tracer keeps a bounded deque (drop-oldest) so tracing a long run cannot
exhaust memory, supports category/source filtering, and renders a plain-
text timeline — ``examples/protocol_trace.py`` uses it to print the paper's
Figure 4 cycle choreography straight from the simulation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One traced event."""

    time: int
    category: str
    source: str
    description: str


class Tracer:
    """Bounded in-memory event trace."""

    def __init__(self, capacity: int = 100_000,
                 categories: Optional[Iterable[str]] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._categories = frozenset(categories) if categories else None
        self.dropped = 0
        self.recorded = 0

    def record(self, time: int, category: str, source: str,
               description: str) -> None:
        """Record one event (filtered by category if a filter was given)."""
        if self._categories is not None and category not in self._categories:
            return
        if len(self._events) == self._events.maxlen:
            self.dropped += 1
        self._events.append(TraceEvent(time, category, source, description))
        self.recorded += 1

    def events(self, category: Optional[str] = None,
               source_prefix: str = "") -> List[TraceEvent]:
        """Events in time order, optionally filtered."""
        return [
            e for e in self._events
            if (category is None or e.category == category)
            and e.source.startswith(source_prefix)
        ]

    def render(self, category: Optional[str] = None,
               source_prefix: str = "", limit: int = 200) -> str:
        """Plain-text timeline, one event per line."""
        lines = []
        for e in self.events(category, source_prefix)[:limit]:
            lines.append(f"cycle {e.time:>8}  [{e.category:5}] "
                         f"{e.source}: {e.description}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._events)
