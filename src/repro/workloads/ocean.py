"""Ocean proxy (SPLASH-2 ``ocean``, 258x258 grid).

Ocean is a barrier-dominated stencil code: per phase every thread relaxes
its block of a *fixed* grid (strong scaling — the paper's 258x258 input is
modelled as 1024 grid lines divided among however many threads run), then
all threads barrier-synchronize and update a global residual accumulator
under the single highly-contended lock; two bookkeeping locks are touched
rarely.  The paper reports 3 locks, 1 highly contended (SCTR pattern),
under 5% of time on locks, and correspondingly the smallest GLocks benefit
of the three applications (-1% traffic, -10% ED²P).

Block-boundary rows are read by the neighbouring thread (real sharing), so
some coherence traffic exists independent of locks; the grid itself starts
warm in the L2 (the untimed init phase wrote it).
"""

from __future__ import annotations

from typing import Sequence

from repro.machine import Machine
from repro.workloads.base import Workload, WorkloadInstance

__all__ = ["OceanProxy"]


class OceanProxy(Workload):
    """Ocean-like kernel: fixed grid, phases + barriers, 3 locks, 1 contended."""

    name = "ocean"
    n_hc = 1
    access_pattern = "SCTR"

    def __init__(self, total_grid_lines: int = 1024, phases: int = 8,
                 compute_per_line: int = 1200, bookkeep_every: int = 4) -> None:
        if total_grid_lines < 2:
            raise ValueError("need at least 2 grid lines")
        self.total_grid_lines = total_grid_lines
        self.phases = phases
        self.compute_per_line = compute_per_line
        self.bookkeep_every = bookkeep_every

    def build(self, machine: Machine, hc_kinds: Sequence[str],
              other_kind: str = "tatas") -> WorkloadInstance:
        mem = machine.mem
        n = machine.config.n_cores
        line_bytes = machine.config.line_bytes
        residual_lock = machine.make_lock(hc_kinds[0], name="ocean-residual")
        io_lock = machine.make_lock(other_kind, name="ocean-io")
        diag_lock = machine.make_lock(other_kind, name="ocean-diag")
        residual = mem.address_space.alloc_line()
        io_counter = mem.address_space.alloc_line()
        diag_counter = mem.address_space.alloc_line()
        barrier = machine.make_barrier(n, name="ocean-barrier")
        # the fixed grid, divided into contiguous row blocks per thread
        grid = mem.address_space.alloc_array(self.total_grid_lines * 8,
                                             label="ocean-grid")
        mem.warm_l2(grid, self.total_grid_lines * line_bytes)
        lines_per = self.split_iterations(self.total_grid_lines, n)
        block_start = [sum(lines_per[:i]) for i in range(n)]
        phases = self.phases
        compute_per_line = self.compute_per_line
        bookkeep_every = self.bookkeep_every

        def make_program(core_id):
            my_first = block_start[core_id]
            my_lines = lines_per[core_id]
            # my right neighbour's first row (boundary sharing)
            neighbour_first = block_start[(core_id + 1) % n]

            def program(ctx):
                for phase in range(phases):
                    # stencil sweep over my block
                    for row in range(my_first, my_first + my_lines):
                        addr = grid + row * line_bytes
                        value = yield from ctx.load(addr)
                        yield from ctx.compute(compute_per_line)
                        yield from ctx.store(addr, value + 1)
                    # read the neighbour's boundary row (real sharing); the
                    # value is discarded and the row re-read next phase, so
                    # racing with the neighbour's same-phase stencil store
                    # is harmless by construction
                    if n > 1:
                        yield from ctx.load(grid + neighbour_first * line_bytes)  # noqa: SIM006 — boundary touch; race: intentional(boundary row read races with the neighbour's stencil store)
                    # global residual reduction: the contended lock
                    yield from ctx.acquire(residual_lock)
                    yield from ctx.rmw(residual, lambda v: v + 1)
                    yield from ctx.release(residual_lock)
                    # rare bookkeeping on the quiet locks
                    if phase % bookkeep_every == 0 and ctx.core_id == 0:
                        yield from ctx.acquire(io_lock)
                        yield from ctx.rmw(io_counter, lambda v: v + 1)
                        yield from ctx.release(io_lock)
                    if phase % bookkeep_every == 1 and ctx.core_id == n - 1:
                        yield from ctx.acquire(diag_lock)
                        yield from ctx.rmw(diag_counter, lambda v: v + 1)
                        yield from ctx.release(diag_lock)
                    yield from ctx.barrier_wait(barrier)

            return program

        def validate(m: Machine) -> None:
            assert m.mem.backing.read(residual) == phases * n
            for row in range(self.total_grid_lines):
                assert m.mem.backing.read(grid + row * line_bytes) == phases

        return WorkloadInstance(
            name=self.name,
            programs=[make_program(c) for c in range(n)],
            locks=[residual_lock, io_lock, diag_lock],
            hc_locks=[residual_lock],
            lock_labels={
                residual_lock.uid: "OCEAN-L1",
                io_lock.uid: "OCEAN-LR",
                diag_lock.uid: "OCEAN-LR",
            },
            validate=validate,
        )
