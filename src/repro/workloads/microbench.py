"""The five microbenchmarks of Section IV-B / Table III.

Each uses the Table III input size (1,000 loop iterations, distributed
across the machine's cores) by default; tests pass smaller sizes.  All
shared state lives in the simulated memory, so critical sections generate
real coherence traffic.
"""

from __future__ import annotations

from typing import Sequence

from repro.machine import Machine
from repro.workloads.base import Workload, WorkloadInstance

__all__ = [
    "SingleCounter", "MultipleCounter", "DoublyLinkedList",
    "ProducerConsumer", "AffinityCounter",
]


class SingleCounter(Workload):
    """SCTR: one cache-line counter protected by one lock."""

    name = "sctr"
    n_hc = 1

    def __init__(self, iterations: int = 1000, think_cycles: int = 12) -> None:
        self.iterations = iterations
        self.think_cycles = think_cycles

    def build(self, machine: Machine, hc_kinds: Sequence[str],
              other_kind: str = "tatas") -> WorkloadInstance:
        lock = machine.make_lock(hc_kinds[0], name="sctr-lock")
        counter = machine.mem.address_space.alloc_line()
        per_thread = self.split_iterations(self.iterations,
                                           machine.config.n_cores)
        think = self.think_cycles

        def make_program(n_iters):
            def program(ctx):
                for _ in range(n_iters):
                    yield from ctx.acquire(lock)
                    value = yield from ctx.load(counter)
                    yield from ctx.store(counter, value + 1)
                    yield from ctx.release(lock)
                    yield from ctx.compute(think)
            return program

        def validate(m: Machine) -> None:
            got = m.mem.backing.read(counter)
            assert got == self.iterations, f"SCTR lost updates: {got}"

        return WorkloadInstance(
            name=self.name,
            programs=[make_program(n) for n in per_thread],
            locks=[lock],
            hc_locks=[lock],
            lock_labels={lock.uid: "SCTR-L1"},
            validate=validate,
        )


class MultipleCounter(Workload):
    """MCTR: per-thread counters (distinct lines) under one shared lock.

    The counter stays resident in its owner's L1 in M state, so essentially
    *all* network traffic is lock traffic — the paper measures a 99% traffic
    reduction here under GLocks.
    """

    name = "mctr"
    n_hc = 1

    # per-iteration think time: the paper's MCTR is only partially
    # lock-saturated (its Figure 8 reduction is 39%, far from the
    # handoff-bound limit), which a local-counter CS only reproduces with
    # real inter-acquire work
    def __init__(self, iterations: int = 1000, think_cycles: int = 1500) -> None:
        self.iterations = iterations
        self.think_cycles = think_cycles

    def build(self, machine: Machine, hc_kinds: Sequence[str],
              other_kind: str = "tatas") -> WorkloadInstance:
        n = machine.config.n_cores
        lock = machine.make_lock(hc_kinds[0], name="mctr-lock")
        counters = machine.mem.address_space.alloc_words_padded(n)
        per_thread = self.split_iterations(self.iterations, n)
        think = self.think_cycles

        def make_program(core_id, n_iters):
            my_counter = counters[core_id]

            def program(ctx):
                for _ in range(n_iters):
                    yield from ctx.acquire(lock)
                    yield from ctx.rmw(my_counter, lambda v: v + 1)
                    yield from ctx.release(lock)
                    yield from ctx.compute(think)
            return program

        def validate(m: Machine) -> None:
            for core_id, expected in enumerate(per_thread):
                got = m.mem.backing.read(counters[core_id])
                assert got == expected, f"MCTR counter {core_id}: {got}"

        return WorkloadInstance(
            name=self.name,
            programs=[make_program(c, n_it) for c, n_it in enumerate(per_thread)],
            locks=[lock],
            hc_locks=[lock],
            lock_labels={lock.uid: "MCTR-L1"},
            validate=validate,
        )


class DoublyLinkedList(Workload):
    """DBLL: threads dequeue from the head and enqueue at the tail.

    A real doubly-linked list in simulated memory: each node is one cache
    line holding ``prev`` / ``next`` / ``value`` words; sentinel head/tail
    pointers live in separate lines.  Each iteration (dequeue+enqueue)
    touches several shared lines inside the critical section.
    """

    name = "dbll"
    n_hc = 1

    # node field offsets (words)
    PREV, NEXT, VALUE = 0, 8, 16

    def __init__(self, iterations: int = 1000, initial_nodes: int = 64,
                 think_cycles: int = 12) -> None:
        if initial_nodes < 2:
            raise ValueError("DBLL needs at least two initial nodes")
        self.iterations = iterations
        self.initial_nodes = initial_nodes
        self.think_cycles = think_cycles

    def build(self, machine: Machine, hc_kinds: Sequence[str],
              other_kind: str = "tatas") -> WorkloadInstance:
        mem = machine.mem
        lock = machine.make_lock(hc_kinds[0], name="dbll-lock")
        # the list descriptor (struct {head; tail}) occupies one line, as a
        # real implementation's would
        desc = mem.address_space.alloc_line()
        head_ptr = desc
        tail_ptr = desc + 8
        nodes = [mem.address_space.alloc_line() for _ in range(self.initial_nodes)]
        # pre-link the list in backing memory (initialization is not timed)
        for i, node in enumerate(nodes):
            mem.backing.write(node + self.PREV, nodes[i - 1] if i > 0 else 0)
            mem.backing.write(node + self.NEXT,
                              nodes[i + 1] if i + 1 < len(nodes) else 0)
            mem.backing.write(node + self.VALUE, i)
        mem.backing.write(head_ptr, nodes[0])
        mem.backing.write(tail_ptr, nodes[-1])
        per_thread = self.split_iterations(self.iterations,
                                           machine.config.n_cores)
        think = self.think_cycles
        PREV, NEXT = self.PREV, self.NEXT

        def make_program(n_iters):
            def program(ctx):
                for _ in range(n_iters):
                    yield from ctx.acquire(lock)
                    # dequeue from head
                    node = yield from ctx.load(head_ptr)
                    nxt = yield from ctx.load(node + NEXT)
                    yield from ctx.store(head_ptr, nxt)
                    yield from ctx.store(nxt + PREV, 0)
                    # enqueue at tail
                    tail = yield from ctx.load(tail_ptr)
                    yield from ctx.store(tail + NEXT, node)
                    yield from ctx.store(node + PREV, tail)
                    yield from ctx.store(node + NEXT, 0)
                    yield from ctx.store(tail_ptr, node)
                    yield from ctx.release(lock)
                    yield from ctx.compute(think)
            return program

        def validate(m: Machine) -> None:
            # walk the list: must still contain all nodes exactly once
            seen = set()
            node = m.mem.backing.read(head_ptr)
            prev = 0
            while node:
                assert node not in seen, "DBLL cycle detected"
                assert m.mem.backing.read(node + PREV) == prev, "DBLL bad prev"
                seen.add(node)
                prev = node
                node = m.mem.backing.read(node + NEXT)
            assert len(seen) == len(nodes), f"DBLL lost nodes: {len(seen)}"
            assert m.mem.backing.read(tail_ptr) == prev

        return WorkloadInstance(
            name=self.name,
            programs=[make_program(n) for n in per_thread],
            locks=[lock],
            hc_locks=[lock],
            lock_labels={lock.uid: "DBLL-L1"},
            validate=validate,
        )


class ProducerConsumer(Workload):
    """PRCO: a bounded FIFO; half the threads produce, half consume.

    Producers wait for free slots and consumers for items by releasing the
    lock and retrying (condition re-check under the lock), the structure the
    paper describes.
    """

    name = "prco"
    n_hc = 1

    def __init__(self, items: int = 1000, fifo_slots: int = 16,
                 think_cycles: int = 12) -> None:
        if fifo_slots < 1:
            raise ValueError("FIFO needs at least one slot")
        self.items = items
        self.fifo_slots = fifo_slots
        self.think_cycles = think_cycles

    def build(self, machine: Machine, hc_kinds: Sequence[str],
              other_kind: str = "tatas") -> WorkloadInstance:
        mem = machine.mem
        n = machine.config.n_cores
        if n < 2:
            raise ValueError("PRCO needs at least two threads")
        lock = machine.make_lock(hc_kinds[0], name="prco-lock")
        slots = mem.address_space.alloc_array(self.fifo_slots)
        head = mem.address_space.alloc_line()    # next slot to consume
        tail = mem.address_space.alloc_line()    # next slot to fill
        count = mem.address_space.alloc_line()   # items in the FIFO
        consumed_total = mem.address_space.alloc_line()
        n_producers = n // 2
        produced = self.split_iterations(self.items, n_producers)
        consumed = self.split_iterations(self.items, n - n_producers)
        think = self.think_cycles
        n_slots = self.fifo_slots

        def producer(quota):
            def program(ctx):
                done = 0
                backoff = think * 2
                while done < quota:
                    yield from ctx.acquire(lock)
                    c = yield from ctx.load(count)
                    if c < n_slots:
                        t = yield from ctx.load(tail)
                        yield from ctx.store(slots + 8 * (t % n_slots), done + 1)
                        yield from ctx.store(tail, t + 1)
                        yield from ctx.store(count, c + 1)
                        done += 1
                        yield from ctx.release(lock)
                        yield from ctx.compute(think)
                        backoff = think * 2
                    else:
                        # FIFO full: exponential pause-loop back-off keeps
                        # fruitless re-acquisitions from flooding the lock
                        yield from ctx.release(lock)
                        yield from ctx.idle(backoff)
                        backoff = min(backoff * 2, 4096)
            return program

        def consumer(quota):
            def program(ctx):
                done = 0
                backoff = think * 2
                while done < quota:
                    yield from ctx.acquire(lock)
                    c = yield from ctx.load(count)
                    if c > 0:
                        h = yield from ctx.load(head)
                        item = yield from ctx.load(slots + 8 * (h % n_slots))
                        assert item != 0, "consumed an empty slot"
                        yield from ctx.store(head, h + 1)
                        yield from ctx.store(count, c - 1)
                        yield from ctx.rmw(consumed_total, lambda v: v + 1)
                        done += 1
                        yield from ctx.release(lock)
                        yield from ctx.compute(think)
                        backoff = think * 2
                    else:
                        yield from ctx.release(lock)   # FIFO empty: back off
                        yield from ctx.idle(backoff)
                        backoff = min(backoff * 2, 4096)
            return program

        programs = [producer(q) for q in produced] + [consumer(q) for q in consumed]

        def validate(m: Machine) -> None:
            got = m.mem.backing.read(consumed_total)
            assert got == self.items, f"PRCO consumed {got} != {self.items}"
            assert m.mem.backing.read(count) == 0

        return WorkloadInstance(
            name=self.name,
            programs=programs,
            locks=[lock],
            hc_locks=[lock],
            lock_labels={lock.uid: "PRCO-L1"},
            validate=validate,
        )


class AffinityCounter(Workload):
    """ACTR: two locks around two counters with a barrier in between.

    Per round every thread increments counter 1 under lock 1, crosses a
    barrier, then increments counter 2 under lock 2 — the barrier spreads
    lock arrivals, giving the moderate contention profile of Figure 7.
    """

    name = "actr"
    n_hc = 2

    def __init__(self, iterations: int = 1000, think_cycles: int = 12) -> None:
        self.iterations = iterations
        self.think_cycles = think_cycles

    def build(self, machine: Machine, hc_kinds: Sequence[str],
              other_kind: str = "tatas") -> WorkloadInstance:
        mem = machine.mem
        n = machine.config.n_cores
        lock1 = machine.make_lock(hc_kinds[0], name="actr-lock1")
        lock2 = machine.make_lock(hc_kinds[1], name="actr-lock2")
        c1 = mem.address_space.alloc_line()
        c2 = mem.address_space.alloc_line()
        barrier = machine.make_barrier(n, name="actr-barrier")
        rounds = max(1, self.iterations // n)
        think = self.think_cycles

        def program(ctx):
            for _ in range(rounds):
                yield from ctx.acquire(lock1)
                yield from ctx.rmw(c1, lambda v: v + 1)
                yield from ctx.release(lock1)
                yield from ctx.barrier_wait(barrier)
                yield from ctx.acquire(lock2)
                yield from ctx.rmw(c2, lambda v: v + 1)
                yield from ctx.release(lock2)
                yield from ctx.compute(think)

        def validate(m: Machine) -> None:
            expected = rounds * n
            assert m.mem.backing.read(c1) == expected
            assert m.mem.backing.read(c2) == expected

        return WorkloadInstance(
            name=self.name,
            programs=[program] * n,
            locks=[lock1, lock2],
            hc_locks=[lock1, lock2],
            lock_labels={lock1.uid: "ACTR-L1", lock2.uid: "ACTR-L2"},
            validate=validate,
        )
