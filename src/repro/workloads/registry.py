"""Workload registry: benchmark-name -> parameterized definition.

``make_workload(name)`` returns a workload with the paper's Table III
defaults; ``make_workload(name, scale=0.1)`` shrinks the input size for
fast tests while keeping the access pattern intact.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.workloads.base import Workload
from repro.workloads.microbench import (
    AffinityCounter,
    DoublyLinkedList,
    MultipleCounter,
    ProducerConsumer,
    SingleCounter,
)
from repro.workloads.ocean import OceanProxy
from repro.workloads.qsort import ParallelQuicksort
from repro.workloads.raytrace import RaytraceProxy
from repro.workloads.serving import SERVING_WORKLOADS
from repro.workloads.synth import (
    MultiHotLockWorkload,
    RacyCounterWorkload,
    SyntheticLockWorkload,
)

__all__ = ["WORKLOADS", "MICROBENCHMARKS", "APPLICATIONS",
           "PARAMETRIC_WORKLOADS", "make_workload"]

MICROBENCHMARKS = ("sctr", "mctr", "dbll", "prco", "actr")
APPLICATIONS = ("raytr", "ocean", "qsort")
WORKLOADS = MICROBENCHMARKS + APPLICATIONS

_CLASSES: Dict[str, Type[Workload]] = {
    "sctr": SingleCounter,
    "mctr": MultipleCounter,
    "dbll": DoublyLinkedList,
    "prco": ProducerConsumer,
    "actr": AffinityCounter,
    "raytr": RaytraceProxy,
    "ocean": OceanProxy,
    "qsort": ParallelQuicksort,
}

#: workloads configured by explicit keyword parameters instead of the
#: Table III ``scale`` knob — the ablation/sensitivity studies.  The
#: experiment engine builds these from ``RunSpec.workload_params``.
PARAMETRIC_WORKLOADS: Dict[str, Type[Workload]] = {
    "synth": SyntheticLockWorkload,
    "hotlocks": MultiHotLockWorkload,
    "racy": RacyCounterWorkload,
    # the open-loop serving family (repro.workloads.serving): offered
    # load, arrival process, deadline etc. come in via workload_params
    **SERVING_WORKLOADS,
}


def make_workload(name: str, scale: float = 1.0) -> Workload:
    """Build a workload with paper-default inputs scaled by ``scale``."""
    if name not in _CLASSES:
        raise ValueError(f"unknown workload {name!r}; choose from {WORKLOADS}")
    if not 0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")

    def s(value: int, minimum: int = 1) -> int:
        return max(int(value * scale), minimum)

    if name == "sctr":
        return SingleCounter(iterations=s(1000))
    if name == "mctr":
        return MultipleCounter(iterations=s(1000))
    if name == "dbll":
        return DoublyLinkedList(iterations=s(1000))
    if name == "prco":
        return ProducerConsumer(items=s(1000))
    if name == "actr":
        return AffinityCounter(iterations=s(1000))
    if name == "raytr":
        return RaytraceProxy(rays=s(600, minimum=32))
    if name == "ocean":
        return OceanProxy(phases=s(8, minimum=2))
    return ParallelQuicksort(elements=s(16384, minimum=2048),
                             serial_threshold=512)
