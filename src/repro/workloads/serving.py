"""Open-loop request-serving workloads (the overload/robustness family).

Where every Table III workload is *closed-loop* — each thread issues its
next operation as soon as the previous one finishes, so offered load
self-throttles to whatever the lock sustains — these three scenarios are
*open-loop*: requests arrive on a seeded arrival process at a configured
``offered_load`` whether or not the system keeps up, which is the only
regime where saturation, queueing collapse and load shedding are
observable at all (the PerfKitBenchmarker service benchmarks ROADMAP
points to all work this way).

Three scenarios, one hot lock each:

- ``kvstore`` — a lock-protected key-value store: seeded GET/PUT mix
  against a padded key table, whole-table lock.
- ``msgqueue`` — producer/consumer message queue: the first half of the
  cores produce on the arrival process, the rest drain a bounded ring
  buffer; latency is end-to-end (arrival to dequeue), and a full ring is
  backpressure (the enqueue is shed).
- ``webserver`` — connection-table sketch: each request claims a
  connection slot from a free stack under the lock, "serves" for a
  seeded service time with the lock released, then reacquires to close.
  A full table is a 503 (shed).

Arrival processes (``arrival="poisson"`` or ``"bursty"``) are integer
cycle lists precomputed per core from ``random.Random`` streams derived
from the workload seed — pure functions of the spec, so fingerprints are
byte-identical across inline/pool/remote backends.

When the chosen lock supports timed acquire (spin family, ``cr:``
wrappers) and ``timed=True``, requests that cannot take the lock before
their deadline are *shed* after seeded backoff-and-retry and recorded as
such; with a non-timed lock (plain ``mcs``) every request blocks to
completion and the deadline can only be observed in hindsight — the
goodput-collapse regime ``repro.experiments.ablate_overload`` plots.

Every request appends ``(arrival, start, end, core, ok, retries)`` to
the machine request log (:meth:`repro.machine.Machine.request_log`);
:mod:`repro.analysis.latency` turns those into throughput/goodput/
percentile summaries.
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence, Tuple

from repro.machine import Machine
from repro.workloads.base import Workload, WorkloadInstance

__all__ = ["ServingWorkload", "KVStoreServing", "MessageQueueServing",
           "WebServerServing", "SERVING_WORKLOADS"]


def _inc(v: int) -> int:
    return v + 1


class ServingWorkload(Workload):
    """Shared machinery: seeded arrivals + timed-acquire request loops.

    Args:
        offered_load: machine-wide arrival rate in requests per kilocycle
            (split evenly across the request-issuing cores).
        duration: length of the arrival window in cycles; the run itself
            lasts until the backlog drains, which is the point.
        deadline: per-request latency budget in cycles — requests beyond
            it count against goodput, and (in timed mode) stop retrying.
        arrival: ``"poisson"`` (memoryless) or ``"bursty"`` (on/off
            modulated Poisson with the same mean rate).
        timed: use timed acquires + shedding when the lock supports it;
            False forces the blocking path even on spin locks.
        acquire_slice: timeout of one timed-acquire attempt, in cycles.
        max_attempts: timed-acquire attempts before a request is shed.
        backoff_base: seeded retry backoff unit (attempt k idles for a
            uniform draw from [base, 2*base) scaled by k).
        burst_on / burst_off: bursty-mode phase lengths in cycles.
        seed: arrival/operation RNG seed; overridden by ``RunSpec.seed``.
    """

    n_hc = 1
    access_pattern = "open-loop arrivals -> one hot lock"

    def __init__(self, offered_load: float = 2.0, duration: int = 20_000,
                 deadline: int = 2_000, arrival: str = "poisson",
                 timed: bool = True, acquire_slice: int = 400,
                 max_attempts: int = 8, backoff_base: int = 40,
                 burst_on: int = 600, burst_off: int = 1_400,
                 seed: int = 1) -> None:
        if offered_load <= 0:
            raise ValueError("offered_load must be positive")
        if duration < 1 or deadline < 1:
            raise ValueError("duration and deadline must be >= 1 cycle")
        if arrival not in ("poisson", "bursty"):
            raise ValueError(f"unknown arrival process {arrival!r}; "
                             f"choose 'poisson' or 'bursty'")
        if acquire_slice < 1 or max_attempts < 1 or backoff_base < 1:
            raise ValueError("acquire_slice, max_attempts and backoff_base "
                             "must be >= 1")
        if burst_on < 1 or burst_off < 0:
            raise ValueError("need burst_on >= 1 and burst_off >= 0")
        self.offered_load = offered_load
        self.duration = duration
        self.deadline = deadline
        self.arrival = arrival
        self.timed = timed
        self.acquire_slice = acquire_slice
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.burst_on = burst_on
        self.burst_off = burst_off
        self.seed = seed

    # ------------------------------------------------------------------ #
    # seeded arrival processes
    # ------------------------------------------------------------------ #
    def _rng(self, core: int, salt: int = 0) -> random.Random:
        # integer-only seed derivation: string seeds would hash
        # PYTHONHASHSEED-dependently and break cross-process determinism
        return random.Random(1_000_003 * (self.seed + 7919 * salt) + core)

    def arrivals_for(self, core: int, n_sources: int) -> List[int]:
        """Integer arrival cycles in [0, duration) for one issuing core."""
        rng = self._rng(core)
        rate = self.offered_load / 1000.0 / n_sources
        out: List[int] = []
        if self.arrival == "poisson":
            t = 0.0
            while True:
                t += rng.expovariate(rate)
                if t >= self.duration:
                    break
                out.append(int(t))
        else:  # bursty: on/off phases, same mean rate as the poisson mode
            phase_len = self.burst_on + self.burst_off
            burst_rate = rate * phase_len / self.burst_on
            phase_start = 0.0
            while phase_start < self.duration:
                t = phase_start + rng.expovariate(burst_rate)
                phase_end = min(phase_start + self.burst_on, self.duration)
                while t < phase_end:
                    out.append(int(t))
                    t += rng.expovariate(burst_rate)
                phase_start += phase_len
        return out

    def use_timed(self, lock) -> bool:
        return self.timed and lock.supports_timed_acquire


class KVStoreServing(ServingWorkload):
    """Lock-protected key-value store under an open-loop GET/PUT mix."""

    name = "kvstore"

    def __init__(self, n_keys: int = 16, put_fraction: float = 0.5,
                 service_cycles: int = 20, **kwargs) -> None:
        super().__init__(**kwargs)
        if n_keys < 1:
            raise ValueError("need at least one key")
        if not 0.0 <= put_fraction <= 1.0:
            raise ValueError("put_fraction outside [0, 1]")
        if service_cycles < 0:
            raise ValueError("negative service_cycles")
        self.n_keys = n_keys
        self.put_fraction = put_fraction
        self.service_cycles = service_cycles

    def build(self, machine: Machine, hc_kinds: Sequence[str],
              other_kind: str = "tatas") -> WorkloadInstance:
        n = machine.config.n_cores
        lock = machine.make_lock(hc_kinds[0], name="kv-lock")
        table = machine.mem.address_space.alloc_words_padded(self.n_keys)
        log = machine.request_log()
        deadline = self.deadline
        slice_ = self.acquire_slice
        max_attempts = self.max_attempts
        backoff_base = self.backoff_base
        service = self.service_cycles
        timed = self.use_timed(lock)
        puts_done = [0] * n
        # per-core precomputed plans: arrivals and the (is_put, key) mix
        plans: List[Tuple[List[int], List[Tuple[bool, int]]]] = []
        for core in range(n):
            arrivals = self.arrivals_for(core, n)
            op_rng = self._rng(core, salt=1)
            ops = [(op_rng.random() < self.put_fraction,
                    op_rng.randrange(self.n_keys)) for _ in arrivals]
            plans.append((arrivals, ops))

        def make_timed_program(core_id: int) -> Callable:
            arrivals, ops = plans[core_id]
            rng = self._rng(core_id, salt=2)

            def program(ctx):
                puts = 0
                for index, arrival in enumerate(arrivals):
                    if arrival > ctx.sim.now:
                        yield from ctx.idle(arrival - ctx.sim.now)
                    start = ctx.sim.now
                    cutoff = arrival + deadline
                    granted = False
                    tries = 0
                    for attempt in range(max_attempts):
                        remaining = cutoff - ctx.sim.now
                        if remaining <= 0:
                            break
                        tries = attempt + 1
                        granted = yield from ctx.acquire(
                            lock, timeout=min(slice_, remaining))
                        if granted:
                            break
                        pause = min(rng.randrange(backoff_base,
                                                  2 * backoff_base)
                                    * (attempt + 1),
                                    cutoff - ctx.sim.now)
                        if pause > 0:
                            yield from ctx.idle(pause)
                    if granted:
                        is_put, key = ops[index]
                        if is_put:
                            yield from ctx.rmw(table[key], _inc)
                            puts += 1
                        else:
                            yield from ctx.load(table[key])  # noqa: SIM006
                        if service:
                            yield from ctx.compute(service)
                        yield from ctx.release(lock)
                        log.append((arrival, start, ctx.sim.now, core_id,
                                    1, tries - 1))
                    else:
                        log.append((arrival, start, ctx.sim.now, core_id,
                                    0, tries))
                puts_done[core_id] = puts
            return program

        def make_blocking_program(core_id: int) -> Callable:
            arrivals, ops = plans[core_id]

            def program(ctx):
                puts = 0
                for index, arrival in enumerate(arrivals):
                    if arrival > ctx.sim.now:
                        yield from ctx.idle(arrival - ctx.sim.now)
                    start = ctx.sim.now
                    yield from ctx.acquire(lock)
                    is_put, key = ops[index]
                    if is_put:
                        yield from ctx.rmw(table[key], _inc)
                        puts += 1
                    else:
                        yield from ctx.load(table[key])  # noqa: SIM006
                    if service:
                        yield from ctx.compute(service)
                    yield from ctx.release(lock)
                    log.append((arrival, start, ctx.sim.now, core_id, 1, 0))
                puts_done[core_id] = puts
            return program

        maker = make_timed_program if timed else make_blocking_program

        def validate(m: Machine) -> None:
            stored = sum(m.mem.backing.read(addr) for addr in table)
            expected = sum(puts_done)
            assert stored == expected, \
                f"kvstore: table sums to {stored}, completed PUTs {expected}"
            completed = sum(1 for rec in log if rec[4])
            shed = sum(1 for rec in log if not rec[4])
            offered = sum(len(p[0]) for p in plans)
            assert completed + shed == offered == len(log), \
                f"kvstore: {completed}+{shed} records vs {offered} arrivals"

        return WorkloadInstance(
            name=self.name,
            programs=[maker(c) for c in range(n)],
            locks=[lock],
            hc_locks=[lock],
            lock_labels={lock.uid: "KV-L1"},
            validate=validate,
        )


class MessageQueueServing(ServingWorkload):
    """Producers enqueue on the arrival process; consumers drain the ring.

    The first ``n_cores // 2`` cores produce, the rest consume.  Latency
    is end-to-end: the arrival cycle rides inside the ring slot and the
    consumer logs the completion when the item leaves the queue.  A full
    ring sheds the enqueue (backpressure), a deadline miss on the lock
    sheds it in timed mode.
    """

    name = "msgqueue"

    def __init__(self, capacity: int = 16, service_cycles: int = 30,
                 poll_cycles: int = 200, **kwargs) -> None:
        super().__init__(**kwargs)
        if capacity < 1:
            raise ValueError("need a ring of at least one slot")
        if service_cycles < 0 or poll_cycles < 1:
            raise ValueError("need service_cycles >= 0 and poll_cycles >= 1")
        self.capacity = capacity
        self.service_cycles = service_cycles
        self.poll_cycles = poll_cycles

    def build(self, machine: Machine, hc_kinds: Sequence[str],
              other_kind: str = "tatas") -> WorkloadInstance:
        n = machine.config.n_cores
        if n < 2:
            raise ValueError("msgqueue needs at least 2 cores "
                             "(one producer, one consumer)")
        n_producers = max(1, n // 2)
        capacity = self.capacity
        lock = machine.make_lock(hc_kinds[0], name="mq-lock")
        slots = machine.mem.address_space.alloc_words_padded(capacity)
        head_addr, tail_addr, count_addr, done_addr = \
            machine.mem.address_space.alloc_words_padded(4)
        log = machine.request_log()
        deadline = self.deadline
        slice_ = self.acquire_slice
        max_attempts = self.max_attempts
        backoff_base = self.backoff_base
        service = self.service_cycles
        poll = self.poll_cycles
        timed = self.use_timed(lock)
        produced = [0] * n
        consumed = [0] * n
        arrival_lists = [self.arrivals_for(core, n_producers)
                         for core in range(n_producers)]

        def make_producer(core_id: int) -> Callable:
            arrivals = arrival_lists[core_id]
            rng = self._rng(core_id, salt=2)

            def program(ctx):
                accepted = 0
                for arrival in arrivals:
                    if arrival > ctx.sim.now:
                        yield from ctx.idle(arrival - ctx.sim.now)
                    start = ctx.sim.now
                    cutoff = arrival + deadline
                    granted = False
                    tries = 0
                    if timed:
                        for attempt in range(max_attempts):
                            remaining = cutoff - ctx.sim.now
                            if remaining <= 0:
                                break
                            tries = attempt + 1
                            granted = yield from ctx.acquire(
                                lock, timeout=min(slice_, remaining))
                            if granted:
                                break
                            pause = min(rng.randrange(backoff_base,
                                                      2 * backoff_base)
                                        * (attempt + 1),
                                        cutoff - ctx.sim.now)
                            if pause > 0:
                                yield from ctx.idle(pause)
                    else:
                        granted = yield from ctx.acquire(lock)
                    enqueued = False
                    if granted:
                        count = yield from ctx.load(count_addr)
                        if count < capacity:
                            tail = yield from ctx.load(tail_addr)
                            # stamp arrival+1 so 0 keeps meaning "empty"
                            yield from ctx.store(slots[tail], arrival + 1)
                            yield from ctx.store(tail_addr,
                                                 (tail + 1) % capacity)
                            yield from ctx.store(count_addr, count + 1)
                            enqueued = True
                        yield from ctx.release(lock)
                    if enqueued:
                        accepted += 1  # completion logged by the consumer
                    else:
                        retries = tries - 1 if granted else tries
                        log.append((arrival, start, ctx.sim.now, core_id,
                                    0, max(retries, 0)))
                # announce completion under the lock — bookkeeping blocks
                # even in timed mode, consumers must learn we are done
                yield from ctx.acquire(lock)
                yield from ctx.rmw(done_addr, _inc)
                yield from ctx.release(lock)
                produced[core_id] = accepted
            return program

        def make_consumer(core_id: int) -> Callable:
            def program(ctx):
                drained = 0
                while True:
                    yield from ctx.acquire(lock)
                    count = yield from ctx.load(count_addr)
                    stamp = 0
                    done = 0
                    if count > 0:
                        head = yield from ctx.load(head_addr)
                        stamp = yield from ctx.load(slots[head])
                        yield from ctx.store(slots[head], 0)
                        yield from ctx.store(head_addr, (head + 1) % capacity)
                        yield from ctx.store(count_addr, count - 1)
                    else:
                        done = yield from ctx.load(done_addr)
                    yield from ctx.release(lock)
                    if count > 0:
                        if service:
                            yield from ctx.compute(service)
                        arrival = stamp - 1
                        log.append((arrival, arrival, ctx.sim.now, core_id,
                                    1, 0))
                        drained += 1
                    elif done == n_producers:
                        break
                    else:
                        yield from ctx.idle(poll)
                consumed[core_id] = drained
            return program

        def validate(m: Machine) -> None:
            assert m.mem.backing.read(count_addr) == 0, "ring not drained"
            assert m.mem.backing.read(done_addr) == n_producers
            total_in = sum(produced)
            total_out = sum(consumed)
            assert total_in == total_out, \
                f"msgqueue: {total_in} enqueued but {total_out} drained"
            offered = sum(len(a) for a in arrival_lists)
            assert len(log) == offered, \
                f"msgqueue: {len(log)} records vs {offered} arrivals"

        programs = [make_producer(c) if c < n_producers else make_consumer(c)
                    for c in range(n)]
        return WorkloadInstance(
            name=self.name,
            programs=programs,
            locks=[lock],
            hc_locks=[lock],
            lock_labels={lock.uid: "MQ-L1"},
            validate=validate,
        )


class WebServerServing(ServingWorkload):
    """Connection-table web-server sketch: open / serve / close.

    Opening claims a slot from a free stack under the lock; the "service"
    itself runs lock-free for a seeded time (the concurrency the table
    capacity bounds); closing reacquires the lock to return the slot.  A
    full table is an immediate 503 — shed without waiting, like a
    listen-backlog overflow.
    """

    name = "webserver"

    def __init__(self, table_slots: int = 8, service_base: int = 120,
                 service_jitter: int = 80, **kwargs) -> None:
        super().__init__(**kwargs)
        if table_slots < 1:
            raise ValueError("need at least one connection slot")
        if service_base < 1 or service_jitter < 0:
            raise ValueError("need service_base >= 1, service_jitter >= 0")
        self.table_slots = table_slots
        self.service_base = service_base
        self.service_jitter = service_jitter

    def build(self, machine: Machine, hc_kinds: Sequence[str],
              other_kind: str = "tatas") -> WorkloadInstance:
        n = machine.config.n_cores
        capacity = self.table_slots
        lock = machine.make_lock(hc_kinds[0], name="conn-lock")
        conns = machine.mem.address_space.alloc_words_padded(capacity)
        free = machine.mem.address_space.alloc_words_padded(capacity)
        (top_addr,) = machine.mem.address_space.alloc_words_padded(1)
        # seed the free stack before the run: every slot starts available
        for i in range(capacity):
            machine.mem.backing.write(free[i], i)
        machine.mem.backing.write(top_addr, capacity)
        log = machine.request_log()
        deadline = self.deadline
        slice_ = self.acquire_slice
        max_attempts = self.max_attempts
        backoff_base = self.backoff_base
        timed = self.use_timed(lock)
        served = [0] * n
        plans: List[Tuple[List[int], List[int]]] = []
        for core in range(n):
            arrivals = self.arrivals_for(core, n)
            svc_rng = self._rng(core, salt=1)
            services = [self.service_base
                        + svc_rng.randrange(self.service_jitter + 1)
                        for _ in arrivals]
            plans.append((arrivals, services))

        def make_program(core_id: int) -> Callable:
            arrivals, services = plans[core_id]
            rng = self._rng(core_id, salt=2)

            def program(ctx):
                handled = 0
                for index, arrival in enumerate(arrivals):
                    if arrival > ctx.sim.now:
                        yield from ctx.idle(arrival - ctx.sim.now)
                    start = ctx.sim.now
                    cutoff = arrival + deadline
                    granted = False
                    tries = 0
                    if timed:
                        for attempt in range(max_attempts):
                            remaining = cutoff - ctx.sim.now
                            if remaining <= 0:
                                break
                            tries = attempt + 1
                            granted = yield from ctx.acquire(
                                lock, timeout=min(slice_, remaining))
                            if granted:
                                break
                            pause = min(rng.randrange(backoff_base,
                                                      2 * backoff_base)
                                        * (attempt + 1),
                                        cutoff - ctx.sim.now)
                            if pause > 0:
                                yield from ctx.idle(pause)
                    else:
                        granted = yield from ctx.acquire(lock)
                    slot = -1
                    if granted:
                        top = yield from ctx.load(top_addr)
                        if top > 0:
                            slot = yield from ctx.load(free[top - 1])
                            yield from ctx.store(top_addr, top - 1)
                            yield from ctx.rmw(conns[slot], _inc)
                        yield from ctx.release(lock)
                    if slot >= 0:
                        # the request itself: lock-free, concurrent up to
                        # the table capacity
                        yield from ctx.compute(services[index])
                        # closing must not be shed or the slot leaks
                        yield from ctx.acquire(lock)
                        yield from ctx.store(conns[slot], 0)
                        top = yield from ctx.load(top_addr)
                        yield from ctx.store(free[top], slot)
                        yield from ctx.store(top_addr, top + 1)
                        yield from ctx.release(lock)
                        handled += 1
                        log.append((arrival, start, ctx.sim.now, core_id,
                                    1, max(tries - 1, 0)))
                    else:
                        retries = tries - 1 if granted else tries
                        log.append((arrival, start, ctx.sim.now, core_id,
                                    0, max(retries, 0)))
                served[core_id] = handled
            return program

        def validate(m: Machine) -> None:
            top = m.mem.backing.read(top_addr)
            assert top == capacity, \
                f"webserver: {capacity - top} connection slot(s) leaked"
            open_conns = sum(m.mem.backing.read(a) for a in conns)
            assert open_conns == 0, f"webserver: {open_conns} conns open"
            stack = sorted(m.mem.backing.read(a) for a in free)
            assert stack == list(range(capacity)), \
                f"webserver: free stack corrupted: {stack}"
            completed = sum(1 for rec in log if rec[4])
            assert completed == sum(served)

        return WorkloadInstance(
            name=self.name,
            programs=[make_program(c) for c in range(n)],
            locks=[lock],
            hc_locks=[lock],
            lock_labels={lock.uid: "WEB-L1"},
            validate=validate,
        )


#: name -> class, merged into the parametric-workload registry
SERVING_WORKLOADS = {
    "kvstore": KVStoreServing,
    "msgqueue": MessageQueueServing,
    "webserver": WebServerServing,
}
