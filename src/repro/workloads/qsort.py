"""Parallel quicksort over a lock-protected work stack (the paper's QSort).

16384 integers, one lock (highly contended, PRCO-like: the work stack is a
shared producer/consumer structure).  Threads pop a segment; large segments
are partitioned (touching the segment's cache lines and pushing the two
halves back), small segments are sorted in place.  The single work-stack
lock throttles scalability exactly as the paper's Table IV shows (QSort
saturates near 12x at 32 cores).

Memory is modelled at line granularity — a partition pass loads and stores
each line of the segment once — while the per-element comparison work is
charged as compute cycles.  The stack itself (top-of-stack index + segment
records) lives in simulated shared memory, so every pop/push runs through
the coherence protocol under the lock.
"""

from __future__ import annotations

from typing import Sequence

from repro.machine import Machine
from repro.workloads.base import Workload, WorkloadInstance

__all__ = ["ParallelQuicksort"]

WORDS_PER_LINE = 8


class ParallelQuicksort(Workload):
    """Work-stack parallel quicksort."""

    name = "qsort"
    n_hc = 1
    access_pattern = "PRCO"

    def __init__(self, elements: int = 16384, serial_threshold: int = 512,
                 compare_cycles: int = 4) -> None:
        if elements < 2:
            raise ValueError("need at least two elements")
        if serial_threshold < 2:
            raise ValueError("serial threshold must be >= 2")
        self.elements = elements
        self.serial_threshold = serial_threshold
        self.compare_cycles = compare_cycles

    def build(self, machine: Machine, hc_kinds: Sequence[str],
              other_kind: str = "tatas") -> WorkloadInstance:
        mem = machine.mem
        n = machine.config.n_cores
        line_bytes = machine.config.line_bytes
        lock = machine.make_lock(hc_kinds[0], name="qsort-stacklock")
        # the array of elements, line-aligned; the untimed init phase wrote
        # it, so it starts warm in the L2 (the paper times the sort only)
        array_base = mem.address_space.alloc_array(self.elements)
        mem.warm_l2(array_base, self.elements * 8)
        # shared work stack: top index + (lo, hi) record slots
        max_segments = 4 * self.elements // self.serial_threshold + 16
        stack_top = mem.address_space.alloc_line()     # segments on the stack
        pending = mem.address_space.alloc_line()       # segments not yet done
        sorted_elems = mem.address_space.alloc_line()  # leaf elements finished
        seg_lo = mem.address_space.alloc_array(max_segments)
        seg_hi = mem.address_space.alloc_array(max_segments)
        # seed the stack with the full range
        mem.backing.write(seg_lo, 0)
        mem.backing.write(seg_hi, self.elements)
        mem.backing.write(stack_top, 1)
        mem.backing.write(pending, 1)
        threshold = self.serial_threshold
        compare = self.compare_cycles
        elements = self.elements

        def line_of_elem(idx: int) -> int:
            return array_base + (idx // WORDS_PER_LINE) * line_bytes

        def touch_segment(ctx, lo, hi):
            """Load+store every line of [lo, hi) once (a partition pass).

            When a pivot is not line-aligned, sibling segments share their
            boundary cache line; in the real program those are *distinct
            elements* of one line (false sharing), but this line-granular
            proxy makes the overlap look like a data race.  The touched
            values are a timing proxy and never validated, so the race is
            benign by construction.
            """
            first = lo // WORDS_PER_LINE
            last = (hi - 1) // WORDS_PER_LINE
            for line_idx in range(first, last + 1):
                addr = array_base + line_idx * line_bytes
                value = yield from ctx.load(addr)  # race: intentional(boundary-line false sharing between sibling segments)
                yield from ctx.store(addr, value + 1)  # race: intentional(boundary-line false sharing between sibling segments)

        def program(ctx):
            poll_backoff = 64
            while True:
                # pop a segment (or learn that sorting is finished)
                yield from ctx.acquire(lock)
                remaining = yield from ctx.load(pending)
                if remaining == 0:
                    yield from ctx.release(lock)
                    return
                top = yield from ctx.load(stack_top)
                if top == 0:
                    # nothing to steal right now -- others are partitioning;
                    # back off exponentially in a pause loop
                    yield from ctx.release(lock)
                    yield from ctx.idle(poll_backoff)
                    poll_backoff = min(poll_backoff * 2, 4096)
                    continue
                poll_backoff = 64
                lo = yield from ctx.load(seg_lo + 8 * (top - 1))
                hi = yield from ctx.load(seg_hi + 8 * (top - 1))
                yield from ctx.store(stack_top, top - 1)
                yield from ctx.release(lock)

                size = hi - lo
                if size <= threshold:
                    # serial leaf sort: insertion sort over the warm segment
                    # (~k^2/4 comparisons) + one pass over its lines
                    yield from touch_segment(ctx, lo, hi)
                    yield from ctx.compute(compare * size * size // 4)
                    yield from ctx.acquire(lock)
                    yield from ctx.rmw(sorted_elems, lambda v: v + size)
                    yield from ctx.rmw(pending, lambda v: v - 1)
                    yield from ctx.release(lock)
                else:
                    # partition: one pass over the data
                    yield from touch_segment(ctx, lo, hi)
                    yield from ctx.compute(compare * size)
                    mid = lo + size // 2  # pivot assumed median-ish
                    yield from ctx.acquire(lock)
                    top = yield from ctx.load(stack_top)
                    yield from ctx.store(seg_lo + 8 * top, lo)
                    yield from ctx.store(seg_hi + 8 * top, mid)
                    yield from ctx.store(seg_lo + 8 * (top + 1), mid)
                    yield from ctx.store(seg_hi + 8 * (top + 1), hi)
                    yield from ctx.store(stack_top, top + 2)
                    # this segment became two pending segments
                    yield from ctx.rmw(pending, lambda v: v + 1)
                    yield from ctx.release(lock)

        def validate(m: Machine) -> None:
            assert m.mem.backing.read(pending) == 0
            assert m.mem.backing.read(stack_top) == 0
            got = m.mem.backing.read(sorted_elems)
            assert got == elements, f"qsort finished {got}/{elements} elements"

        return WorkloadInstance(
            name=self.name,
            programs=[program] * n,
            locks=[lock],
            hc_locks=[lock],
            lock_labels={lock.uid: "QSORT-L1"},
            validate=validate,
        )
