"""Raytrace proxy (SPLASH-2 ``raytrace``, teapot input).

The paper's post-mortem analysis of Raytrace reports 34 locks of which
exactly 2 are highly contended, both with SCTR-like (global counter)
access patterns, and a lock share of execution time large enough that
idealizing just those two locks recovers nearly all of the IDEAL
configuration's benefit (Figure 1).

The proxy reproduces that structure (DESIGN.md, substitution 2): threads
pull rays from a global counter under highly-contended lock L1, trace each
ray (compute + scattered read-mostly scene-memory loads), periodically
update a global shading accumulator under highly-contended lock L2, and
occasionally grab one of 32 per-grid-cell locks that see almost no
contention.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.machine import Machine
from repro.workloads.base import Workload, WorkloadInstance

__all__ = ["RaytraceProxy"]


class RaytraceProxy(Workload):
    """Raytrace-like kernel: 34 locks, 2 highly contended."""

    name = "raytr"
    n_hc = 2
    access_pattern = "SCTR"

    def __init__(self, rays: int = 600, scene_lines: int = 512,
                 trace_compute: int = 3800, loads_per_ray: int = 16,
                 shade_every: int = 4, cell_every: int = 3,
                 seed: int = 42) -> None:
        self.rays = rays
        self.scene_lines = scene_lines
        self.trace_compute = trace_compute
        self.loads_per_ray = loads_per_ray
        self.shade_every = shade_every
        self.cell_every = cell_every
        self.seed = seed

    def build(self, machine: Machine, hc_kinds: Sequence[str],
              other_kind: str = "tatas") -> WorkloadInstance:
        mem = machine.mem
        n = machine.config.n_cores
        ray_lock = machine.make_lock(hc_kinds[0], name="raytr-raylock")
        shade_lock = machine.make_lock(hc_kinds[1], name="raytr-shadelock")
        cell_locks = [machine.make_lock(other_kind, name=f"raytr-cell{i}")
                      for i in range(32)]
        ray_counter = mem.address_space.alloc_line()
        shade_acc = mem.address_space.alloc_line()
        cell_counters = mem.address_space.alloc_words_padded(32)
        # the scene was built by the untimed init phase -> warm in L2
        scene = mem.address_space.alloc_array(self.scene_lines * 8)
        mem.warm_l2(scene, self.scene_lines * machine.config.line_bytes)
        line_bytes = machine.config.line_bytes
        rng_master = np.random.default_rng(self.seed)
        thread_seeds = rng_master.integers(0, 2**31, size=n)

        total_rays = self.rays
        trace_compute = self.trace_compute
        loads_per_ray = self.loads_per_ray
        shade_every = self.shade_every
        cell_every = self.cell_every
        scene_lines = self.scene_lines

        def make_program(core_id):
            rng = np.random.default_rng(int(thread_seeds[core_id]))

            def program(ctx):
                while True:
                    # grab the next ray id (highly-contended lock 1)
                    yield from ctx.acquire(ray_lock)
                    ray_id = yield from ctx.load(ray_counter)
                    if ray_id >= total_rays:
                        yield from ctx.release(ray_lock)
                        return
                    yield from ctx.store(ray_counter, ray_id + 1)
                    yield from ctx.release(ray_lock)
                    # trace: compute interleaved with scene reads
                    for _ in range(loads_per_ray):
                        line = int(rng.integers(0, scene_lines))
                        # the ray walk only touches the scene line to model
                        # its cache/coherence footprint; the value is unused
                        yield from ctx.load(scene + line * line_bytes)  # noqa: SIM006
                        yield from ctx.compute(trace_compute // loads_per_ray)
                    # periodic global shading update (hc lock 2)
                    if ray_id % shade_every == 0:
                        yield from ctx.acquire(shade_lock)
                        yield from ctx.rmw(shade_acc, lambda v: v + 1)
                        yield from ctx.release(shade_lock)
                    # rare per-cell bookkeeping (low-contention locks)
                    if ray_id % cell_every == 0:
                        cell = int(rng.integers(0, 32))
                        yield from ctx.acquire(cell_locks[cell])
                        yield from ctx.rmw(cell_counters[cell], lambda v: v + 1)
                        yield from ctx.release(cell_locks[cell])

            return program

        def validate(m: Machine) -> None:
            assert m.mem.backing.read(ray_counter) == total_rays
            expected_shades = len(range(0, total_rays, shade_every))
            assert m.mem.backing.read(shade_acc) == expected_shades
            cells = sum(m.mem.backing.read(a) for a in cell_counters)
            assert cells == len(range(0, total_rays, cell_every))

        labels = {ray_lock.uid: "RAYTR-L1", shade_lock.uid: "RAYTR-L2"}
        for lk in cell_locks:
            labels[lk.uid] = "RAYTR-LR"
        return WorkloadInstance(
            name=self.name,
            programs=[make_program(c) for c in range(n)],
            locks=[ray_lock, shade_lock, *cell_locks],
            hc_locks=[ray_lock, shade_lock],
            lock_labels=labels,
            validate=validate,
        )
