"""Workload abstraction.

A :class:`Workload` is a parameterized benchmark definition; calling
:meth:`Workload.build` on a fresh :class:`~repro.machine.Machine`
instantiates its shared data, its locks (highly-contended ones with the
requested lock kind — the paper's hybrid methodology) and one thread
program per core, returned as a :class:`WorkloadInstance`.

The instance also exposes per-lock labels (for the Figure 7 contention
plots) and a post-run ``validate`` hook that asserts the computation's
result was correct — a run that wins by corrupting its data must fail
loudly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.locks.base import Lock
from repro.machine import Machine

__all__ = ["Workload", "WorkloadInstance"]


@dataclass
class WorkloadInstance:
    """A workload bound to one machine, ready to run."""

    name: str
    programs: List[Callable]
    locks: List[Lock]
    hc_locks: List[Lock]
    lock_labels: Dict[int, str]               # lock.uid -> display label
    validate: Callable[[Machine], None] = field(default=lambda m: None)

    @property
    def n_locks(self) -> int:
        """Total distinct locks (Table III's "Locks" column)."""
        return len(self.locks)

    @property
    def n_hc_locks(self) -> int:
        """Highly-contended locks (Table III's "H-C Locks" column)."""
        return len(self.hc_locks)


class Workload(ABC):
    """A parameterized benchmark definition."""

    #: registry key and display name
    name: str = "workload"
    #: number of highly-contended locks this workload declares (Table III)
    n_hc = 1
    #: Table III "Access Pattern" note
    access_pattern: str = "-"

    @abstractmethod
    def build(self, machine: Machine, hc_kinds: Sequence[str],
              other_kind: str = "tatas") -> WorkloadInstance:
        """Instantiate on ``machine``.

        Args:
            machine: a fresh machine (its core count sets the thread count).
            hc_kinds: lock kind for each highly-contended lock, length
                :attr:`n_hc` (letting Figure 1 idealize them one at a time).
            other_kind: lock kind for every non-contended lock.
        """

    def instantiate(self, machine: Machine, hc_kind: str = "mcs",
                    other_kind: str = "tatas",
                    hc_kinds: Optional[Sequence[str]] = None) -> WorkloadInstance:
        """Convenience wrapper: one kind for all highly-contended locks."""
        kinds = list(hc_kinds) if hc_kinds is not None else [hc_kind] * self.n_hc
        if len(kinds) != self.n_hc:
            raise ValueError(
                f"{self.name}: expected {self.n_hc} highly-contended lock "
                f"kinds, got {len(kinds)}"
            )
        return self.build(machine, kinds, other_kind)

    @staticmethod
    def split_iterations(total: int, n_threads: int) -> List[int]:
        """Distribute ``total`` loop iterations across threads evenly."""
        base, extra = divmod(total, n_threads)
        return [base + (1 if t < extra else 0) for t in range(n_threads)]
