"""Synthetic lock workload for sensitivity/ablation studies.

A fully parameterized version of the SCTR pattern: ``n`` threads loop over
{acquire — critical section of tunable length and memory footprint —
release — tunable think time}.  The ablation experiments sweep its knobs to
answer the questions DESIGN.md calls out:

- how long must a critical section be before the lock implementation stops
  mattering (the GL-vs-MCS crossover)?
- how does handoff cost scale with G-line latency or tree depth?
- what does each arbitration policy do to per-thread fairness?
"""

from __future__ import annotations

from typing import Sequence

from repro.machine import Machine
from repro.workloads.base import Workload, WorkloadInstance

__all__ = ["SyntheticLockWorkload", "MultiHotLockWorkload",
           "RacyCounterWorkload"]


class SyntheticLockWorkload(Workload):
    """Parameterized acquire/CS/release/think loop over one shared lock."""

    name = "synth"
    n_hc = 1

    def __init__(self, iterations_per_thread: int = 20,
                 cs_compute: int = 0, cs_shared_words: int = 1,
                 think_cycles: int = 0) -> None:
        if iterations_per_thread < 1:
            raise ValueError("need at least one iteration")
        if cs_shared_words < 0 or cs_compute < 0 or think_cycles < 0:
            raise ValueError("negative workload parameter")
        self.iterations_per_thread = iterations_per_thread
        self.cs_compute = cs_compute
        self.cs_shared_words = cs_shared_words
        self.think_cycles = think_cycles

    def build(self, machine: Machine, hc_kinds: Sequence[str],
              other_kind: str = "tatas") -> WorkloadInstance:
        n = machine.config.n_cores
        lock = machine.make_lock(hc_kinds[0], name="synth-lock")
        shared = machine.mem.address_space.alloc_words_padded(
            max(self.cs_shared_words, 1))
        iters = self.iterations_per_thread
        cs_compute = self.cs_compute
        n_words = self.cs_shared_words
        think = self.think_cycles
        entries = {core: 0 for core in range(n)}

        def make_program(core_id):
            def program(ctx):
                for _ in range(iters):
                    yield from ctx.acquire(lock)
                    for w in range(n_words):
                        yield from ctx.rmw(shared[w], lambda v: v + 1)
                    if cs_compute:
                        yield from ctx.compute(cs_compute)
                    entries[core_id] += 1
                    yield from ctx.release(lock)
                    if think:
                        yield from ctx.compute(think)
            return program

        def validate(m: Machine) -> None:
            expected = n * iters
            for w in range(n_words):
                got = m.mem.backing.read(shared[w])
                assert got == expected, f"synth word {w}: {got} != {expected}"
            assert sum(entries.values()) == expected

        instance = WorkloadInstance(
            name=self.name,
            programs=[make_program(c) for c in range(n)],
            locks=[lock],
            hc_locks=[lock],
            lock_labels={lock.uid: "SYNTH-L1"},
            validate=validate,
        )
        instance.entries = entries  # per-thread CS counts (fairness studies)
        return instance


class RacyCounterWorkload(Workload):
    """Deliberately unsynchronized counter — the race detector's fixture.

    Every core runs ``iterations_per_thread`` x {load the shared counter,
    think, store counter+1}.  Three modes:

    - default: no lock at all — lost updates, and a guaranteed
      :mod:`repro.verify.races` hit at a deterministic (core, cycle,
      address) site pair;
    - ``locked=True``: the identical access pattern under one lock of the
      chosen hc kind — must be race-free under *every* registered kind
      (the detector's per-lock acceptance test);
    - ``annotated=True``: the racy accesses carry the
      ``# race: intentional(...)`` suppression, exercising the
      annotation API.
    """

    name = "racy"
    n_hc = 1

    def __init__(self, iterations_per_thread: int = 4,
                 think_cycles: int = 10, locked: bool = False,
                 annotated: bool = False) -> None:
        if iterations_per_thread < 1:
            raise ValueError("need at least one iteration")
        if think_cycles < 0:
            raise ValueError("negative workload parameter")
        if locked and annotated:
            raise ValueError("locked runs have nothing to annotate")
        self.iterations_per_thread = iterations_per_thread
        self.think_cycles = think_cycles
        self.locked = locked
        self.annotated = annotated

    def build(self, machine: Machine, hc_kinds: Sequence[str],
              other_kind: str = "tatas") -> WorkloadInstance:
        n = machine.config.n_cores
        lock = machine.make_lock(hc_kinds[0], name="racy-lock")
        counter = machine.mem.address_space.alloc_line(label="racy-counter")
        iters = self.iterations_per_thread
        think = self.think_cycles
        locked = self.locked
        annotated = self.annotated

        def program(ctx):
            for _ in range(iters):
                if locked:
                    yield from ctx.acquire(lock)
                    value = yield from ctx.load(counter)
                    yield from ctx.compute(think)
                    yield from ctx.store(counter, value + 1)
                    yield from ctx.release(lock)
                elif annotated:
                    value = yield from ctx.load(counter)   # race: intentional(detector-fixture load)
                    yield from ctx.compute(think)
                    yield from ctx.store(counter, value + 1)  # race: intentional(detector-fixture store)
                else:
                    value = yield from ctx.load(counter)
                    yield from ctx.compute(think)
                    yield from ctx.store(counter, value + 1)

        def validate(m: Machine) -> None:
            got = m.mem.backing.read(counter)
            if locked:
                assert got == n * iters, f"lost updates under lock: {got}"
            else:
                # unsynchronized increments lose updates (that's the point)
                assert 0 < got <= n * iters

        return WorkloadInstance(
            name=self.name,
            programs=[program] * n,
            locks=[lock],
            hc_locks=[lock],
            lock_labels={lock.uid: "RACY-L1"},
            validate=validate,
        )


class MultiHotLockWorkload(Workload):
    """``n_locks`` *independent* hot locks, cores striped across them.

    The GLock-provisioning ablation's workload: each core loops over
    {acquire its lock — bump its counter — release — think}, so a chip
    with fewer physical GLocks than hot locks must multiplex (sharing)
    and serializes unrelated critical sections.
    """

    name = "hotlocks"

    def __init__(self, n_locks: int = 4, iterations_per_thread: int = 25,
                 think_cycles: int = 30) -> None:
        if n_locks < 1 or iterations_per_thread < 1:
            raise ValueError("need at least one lock and one iteration")
        if think_cycles < 0:
            raise ValueError("negative workload parameter")
        self.n_locks = n_locks
        self.n_hc = n_locks
        self.iterations_per_thread = iterations_per_thread
        self.think_cycles = think_cycles

    def build(self, machine: Machine, hc_kinds: Sequence[str],
              other_kind: str = "tatas") -> WorkloadInstance:
        n = machine.config.n_cores
        locks = [machine.make_lock(kind, name=f"hot{i}")
                 for i, kind in enumerate(hc_kinds)]
        counters = machine.mem.address_space.alloc_words_padded(self.n_locks)
        iters = self.iterations_per_thread
        think = self.think_cycles

        def make_program(core_id):
            lock = locks[core_id % self.n_locks]
            counter = counters[core_id % self.n_locks]

            def program(ctx):
                for _ in range(iters):
                    yield from ctx.acquire(lock)
                    yield from ctx.rmw(counter, lambda v: v + 1)
                    yield from ctx.release(lock)
                    if think:
                        yield from ctx.compute(think)
            return program

        def validate(m: Machine) -> None:
            expected = n * iters
            got = sum(m.mem.backing.read(a) for a in counters)
            assert got == expected, f"lost updates: {got} != {expected}"

        return WorkloadInstance(
            name=self.name,
            programs=[make_program(c) for c in range(n)],
            locks=list(locks),
            hc_locks=list(locks),
            lock_labels={lock.uid: f"HOT-L{i + 1}"
                         for i, lock in enumerate(locks)},
            validate=validate,
        )
