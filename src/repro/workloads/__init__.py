"""Benchmarks: the paper's five microbenchmarks and three applications.

Microbenchmarks (Section IV-B, Table III) exercise canonical
highly-contended access patterns:

=========  ==========================================================
``sctr``   Single Counter — one counter, one lock, all threads
``mctr``   Multiple Counter — per-thread counters (own lines), one lock
``dbll``   Doubly-Linked List — dequeue head / enqueue tail, one lock
``prco``   Producer-Consumer — bounded FIFO, half produce half consume
``actr``   Affinity Counter — two locks + a barrier between them
=========  ==========================================================

Applications are proxy kernels reproducing the lock-relevant structure the
paper reports for SPLASH-2 Raytrace and Ocean and for QSort (DESIGN.md,
substitution 2):

==========  ========================================================
``raytr``   34 locks, 2 highly contended (SCTR pattern), ray loop
``ocean``   grid phases + barriers, 3 locks, 1 contended, <5% lock time
``qsort``   parallel quicksort over a lock-protected work stack (PRCO)
==========  ========================================================
"""

from repro.workloads.base import Workload, WorkloadInstance
from repro.workloads.microbench import (
    AffinityCounter,
    DoublyLinkedList,
    MultipleCounter,
    ProducerConsumer,
    SingleCounter,
)
from repro.workloads.raytrace import RaytraceProxy
from repro.workloads.ocean import OceanProxy
from repro.workloads.qsort import ParallelQuicksort
from repro.workloads.registry import WORKLOADS, make_workload

__all__ = [
    "Workload", "WorkloadInstance",
    "SingleCounter", "MultipleCounter", "DoublyLinkedList",
    "ProducerConsumer", "AffinityCounter",
    "RaytraceProxy", "OceanProxy", "ParallelQuicksort",
    "WORKLOADS", "make_workload",
]
