"""Simple Lock: raw test&set spinning.

Every acquisition attempt is an atomic ``test&set`` — a full GetM
transaction through the directory — so under contention this algorithm
floods the network with coherence traffic, exactly the behaviour the
paper's Section II describes as its main drawback.
"""

from __future__ import annotations

from repro.locks.base import Lock
from repro.mem.hierarchy import MemorySystem

__all__ = ["SimpleLock"]


class SimpleLock(Lock):
    """test&set spin lock on one shared flag word."""

    supports_timed_acquire = True

    #: cycles between attempts on the timed path — raw test&set every
    #: cycle would flood the directory exactly like the blocking path,
    #: but a shedding waiter is about to give up anyway, so it backs off
    #: a little between probes
    TIMED_POLL = 16

    def __init__(self, mem: MemorySystem, name: str = "") -> None:
        super().__init__(name)
        self.flag_addr = mem.address_space.alloc_line()  # own line, no false sharing

    def acquire(self, ctx):
        while True:
            old = yield from ctx.rmw(self.flag_addr, lambda v: 1)
            if old == 0:
                return

    def acquire_timed(self, ctx, deadline):
        while True:
            old = yield from ctx.rmw(self.flag_addr, lambda v: 1)
            if old == 0:
                return True
            now = ctx.sim.now
            if now >= deadline:
                return False
            yield from ctx.idle(min(self.TIMED_POLL, deadline - now))

    def release(self, ctx):
        yield from ctx.store(self.flag_addr, 0)
