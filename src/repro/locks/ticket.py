"""Ticket Lock: a fetch&increment ticket counter plus a now-serving counter.

FIFO-fair; all waiters spin on the single now-serving word, so every release
invalidates every waiter's copy (thundering-herd re-fetch) — cheaper than
Simple Lock but still O(waiters) traffic per handoff.
"""

from __future__ import annotations

from repro.locks.base import Lock
from repro.mem.hierarchy import MemorySystem

__all__ = ["TicketLock"]


class TicketLock(Lock):
    """Ticket lock (paper Section II)."""

    def __init__(self, mem: MemorySystem, name: str = "") -> None:
        super().__init__(name)
        # the two counters live in different lines so a ticket grab does not
        # steal the line waiters are spinning on
        self.ticket_addr = mem.address_space.alloc_line()
        self.serving_addr = mem.address_space.alloc_line()

    def acquire(self, ctx):
        my_ticket = yield from ctx.rmw(self.ticket_addr, lambda v: v + 1)
        yield from ctx.spin_until(self.serving_addr, lambda v: v == my_ticket)

    def release(self, ctx):
        yield from ctx.rmw(self.serving_addr, lambda v: v + 1)
