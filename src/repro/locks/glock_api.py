"""GL_Lock / GL_Unlock: the library-level lock API over a GLock device.

This is the programmer-facing wrapper of Figure 5: it satisfies the common
:class:`~repro.locks.base.Lock` interface so workloads can swap MCS for
GLocks with a one-line change, exactly the paper's methodology.

Under fault injection (``repro.faults``) the handle also owns the lock's
*graceful degradation* path: when the backing device trips — or aborts an
in-flight acquire by returning False — the handle permanently routes this
program lock through an embedded software lock (TATAS or MCS, per
``FaultPlan.fallback_kind``) allocated in shared memory on first use.
Lazy allocation matters: a fault-free run never touches the fallback, so
its memory layout (and therefore its results) stays byte-identical to a
build without this module's fault support.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.glock import GLockDevice
from repro.locks.base import Lock
from repro.mem.hierarchy import MemorySystem

__all__ = ["GLockHandle"]


class GLockHandle(Lock):
    """A program-level lock backed by a hardware GLock."""

    def __init__(self, device: GLockDevice, name: str = "",
                 mem: Optional[MemorySystem] = None,
                 n_threads: Optional[int] = None,
                 fallback_kind: str = "tatas") -> None:
        super().__init__(name)
        self.device = device
        self._mem = mem
        self._n_threads = n_threads
        self._fallback_kind = fallback_kind
        self._fallback: Optional[Lock] = None
        # core_id -> "glock" | "fallback", recorded per holder at acquire
        # time so release always undoes the path actually taken
        self._mode: Dict[int, str] = {}

    def _fallback_lock(self) -> Lock:
        """The embedded software lock, allocated on first degradation."""
        if self._fallback is None:
            if self._mem is None:
                raise RuntimeError(
                    f"GLock {self.name!r} tripped but has no memory system "
                    "for a software fallback"
                )
            if self._fallback_kind == "mcs":
                from repro.locks.mcs import MCSLock
                self._fallback = MCSLock(self._mem, self._n_threads or 1,
                                         name=f"{self.name}-fallback")
            else:
                from repro.locks.tatas import TatasLock
                self._fallback = TatasLock(self._mem,
                                           name=f"{self.name}-fallback")
        return self._fallback

    def acquire(self, ctx):
        ctx.core.instructions += 1  # mov 1, lock_req
        if self.device.healthy:
            ok = yield from self.device.acquire(ctx.core_id)
            if ok is not False:
                self._mode[ctx.core_id] = "glock"
                return
            # tripped while we waited (or raced the trip): degrade below
        self._mode[ctx.core_id] = "fallback"
        self.device.counters.add("faults.fallback_acquires")
        yield from self._fallback_lock().acquire(ctx)

    def release(self, ctx):
        ctx.core.instructions += 1  # mov 1, lock_rel
        if self._mode.pop(ctx.core_id, "glock") == "glock":
            yield from self.device.release(ctx.core_id)
        else:
            yield from self._fallback_lock().release(ctx)
