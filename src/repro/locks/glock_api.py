"""GL_Lock / GL_Unlock: the library-level lock API over a GLock device.

This is the programmer-facing wrapper of Figure 5: it satisfies the common
:class:`~repro.locks.base.Lock` interface so workloads can swap MCS for
GLocks with a one-line change, exactly the paper's methodology.
"""

from __future__ import annotations

from repro.core.glock import GLockDevice
from repro.locks.base import Lock

__all__ = ["GLockHandle"]


class GLockHandle(Lock):
    """A program-level lock backed by a hardware GLock."""

    def __init__(self, device: GLockDevice, name: str = "") -> None:
        super().__init__(name)
        self.device = device

    def acquire(self, ctx):
        ctx.core.instructions += 1  # mov 1, lock_req
        yield from self.device.acquire(ctx.core_id)

    def release(self, ctx):
        ctx.core.instructions += 1  # mov 1, lock_rel
        yield from self.device.release(ctx.core_id)
