"""Common lock interface.

A lock exposes two coroutines, :meth:`Lock.acquire` and :meth:`Lock.release`,
each taking the calling thread's :class:`~repro.cpu.core.ThreadContext`.
Thread programs never call these directly — they go through
``ctx.acquire(lock)`` / ``ctx.release(lock)`` so elapsed time lands in the
Lock category and acquire-wait intervals are recorded for the contention
analysis.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod

__all__ = ["Lock"]

_uids = itertools.count()


class Lock(ABC):
    """Abstract mutual-exclusion lock.

    Every implementation promises the release -> next-acquire
    happens-before edge on the same lock object: all memory operations a
    thread performed before ``release`` are ordered before everything the
    next owner does after its ``acquire`` returns.  The race detector
    (:mod:`repro.verify.races`) keys that edge on :attr:`uid`, which is
    why a GLock handle and its degraded software fallback — one ``uid``,
    two mechanisms — still form a single serialization chain.  See
    docs/protocol.md for the per-kind edge inventory.
    """

    def __init__(self, name: str = "") -> None:
        self.uid = next(_uids)
        self.name = name or f"lock{self.uid}"

    #: True when the class implements :meth:`acquire_timed`.  Thread
    #: programs must check this (``ctx.acquire`` does) before asking for a
    #: timeout — queue locks whose enqueued nodes cannot be abandoned
    #: safely leave it False.
    supports_timed_acquire = False

    @abstractmethod
    def acquire(self, ctx):
        """Coroutine: block until this thread owns the lock."""

    def acquire_timed(self, ctx, deadline):
        """Coroutine: try to own the lock until cycle ``deadline``.

        Returns True once owned; returns False (owning nothing, leaving
        no residue behind) when ``sim.now`` reaches ``deadline`` first.
        A deadline already in the past still gets one opportunistic
        attempt.  Only called when :attr:`supports_timed_acquire`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support timed acquire")

    @abstractmethod
    def release(self, ctx):
        """Coroutine: relinquish ownership."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r})"
