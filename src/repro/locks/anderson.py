"""Array-based queue lock (Anderson).

Replaces the Ticket Lock's single now-serving counter with an array of
per-waiter slots (one cache line each), so a release invalidates only the
*next* waiter's line — O(1) traffic per handoff.
"""

from __future__ import annotations

from typing import Dict

from repro.locks.base import Lock
from repro.mem.hierarchy import MemorySystem

__all__ = ["AndersonLock"]


class AndersonLock(Lock):
    """Array-based queue lock with ``n_slots`` padded slots."""

    def __init__(self, mem: MemorySystem, n_slots: int, name: str = "") -> None:
        super().__init__(name)
        if n_slots < 1:
            raise ValueError("need at least one slot")
        self.n_slots = n_slots
        self.tail_addr = mem.address_space.alloc_line()
        self.slot_addrs = mem.address_space.alloc_words_padded(n_slots)
        # slot 0 starts "free to enter"
        mem.backing.write(self.slot_addrs[0], 1)
        self._my_slot: Dict[int, int] = {}  # core_id -> slot index held

    def acquire(self, ctx):
        pos = yield from ctx.rmw(self.tail_addr, lambda v: v + 1)
        idx = pos % self.n_slots
        self._my_slot[ctx.core_id] = idx
        yield from ctx.spin_until(self.slot_addrs[idx], lambda v: v == 1)
        # reset our slot for its next reuse
        yield from ctx.store(self.slot_addrs[idx], 0)

    def release(self, ctx):
        idx = self._my_slot.pop(ctx.core_id)
        yield from ctx.store(self.slot_addrs[(idx + 1) % self.n_slots], 1)
