"""Concurrency restriction: admit few, park the rest.

Implements the core idea of *Avoiding Scalability Collapse by Restricting
Concurrency* (Dice & Kogan, see PAPERS.md): under saturation a lock's
throughput is maximized by letting only a small *active set* of threads
contend while the excess waiters are *parked* on a passive list, off the
coherence fabric entirely.  The wrapper composes with every registered
lock kind — ``cr:mcs``, ``cr8:tatas``, ``cr:glock`` — because all it does
is gate entry to the inner lock's ``acquire``:

- a thread already in the active set goes straight to the inner lock;
- when the active set has a free slot and nobody is parked, the thread
  claims the slot and proceeds;
- otherwise it parks on a FIFO passive list (a kernel :class:`Signal`
  per entry — zero simulated traffic while parked, exactly the point).

Long-term fairness comes from *rotation*: at most once per
``reactivation_cycles``, a releasing thread gives up its own slot to the
longest-parked waiter.  Two liveness backstops cover threads that finish
without releasing again: a release that leaves the inner lock idle hands
its slot over immediately, and a background reactivation timer reclaims
slots whose owners stopped acquiring and refills them from the passive
list.

Timed acquires (``ctx.acquire(lock, timeout=...)``) are supported even
when the *inner* lock is not timed (e.g. ``cr:mcs``): parking respects
the deadline via a scheduled timeout wake-up, and once admitted the wait
on the inner lock is bounded by the small active set.

Park/unpark pairs publish happens-before edges to the race detector
(:meth:`RaceDetector.on_unpark` / :meth:`on_park_wakeup`) so the
detector's clocks track the real ordering the handoff creates.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.locks.base import Lock
from repro.sim.kernel import Signal, Simulator
from repro.sim.stats import CounterSet

__all__ = ["ConcurrencyRestrictedLock", "DEFAULT_CR_ADMIT",
           "DEFAULT_REACTIVATION_CYCLES"]

#: active-set bound when ``cr:<kind>`` names no explicit ``k``
DEFAULT_CR_ADMIT = 4

#: default rotation / reactivation-timer period, in cycles — several
#: critical-section handoffs at baseline latencies, so the active set is
#: stable in the short term but cycles through all waiters over a run
DEFAULT_REACTIVATION_CYCLES = 3000


class _ParkEntry:
    """One parked thread: its wake-up signal plus handoff bookkeeping."""

    __slots__ = ("core", "signal", "parked_at", "granted")

    def __init__(self, core: int, signal: Signal, parked_at: int) -> None:
        self.core = core
        self.signal = signal
        self.parked_at = parked_at
        #: set (before the signal fires) by whoever admits this entry;
        #: False on wake-up means the park timed out instead
        self.granted = False


class ConcurrencyRestrictedLock(Lock):
    """Wrap ``inner`` so at most ``admit`` threads contend for it."""

    supports_timed_acquire = True

    def __init__(self, sim: Simulator, inner: Lock, admit: int = DEFAULT_CR_ADMIT,
                 reactivation_cycles: int = DEFAULT_REACTIVATION_CYCLES,
                 counters: Optional[CounterSet] = None,
                 name: str = "") -> None:
        super().__init__(name or f"cr:{inner.name}")
        if admit < 1:
            raise ValueError("cr admission bound must be >= 1")
        if reactivation_cycles < 1:
            raise ValueError("reactivation period must be >= 1")
        self.sim = sim
        self.inner = inner
        self.admit = admit
        self.reactivation_cycles = reactivation_cycles
        #: core -> cycle of its latest admission or successful acquire;
        #: membership set of the active threads, LRU-stamped so the timer
        #: can reclaim slots whose owners went quiet
        self._active: Dict[int, int] = {}
        self._passive: Deque[_ParkEntry] = deque()
        #: admitted threads currently waiting on or holding the inner lock
        self._inflight = 0
        self._last_rotation = 0
        self._last_admission = 0
        self._timer_running = False
        counters = counters if counters is not None else CounterSet()
        self._c_parks = counters.bind("cr.parks")
        self._c_unparks = counters.bind("cr.unparks")
        self._c_rotations = counters.bind("cr.rotations")
        self._c_timer_admits = counters.bind("cr.timer_admits")
        self._c_park_timeouts = counters.bind("cr.park_timeouts")

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def _admit(self, ctx, deadline):
        """Coroutine: join the active set; False = deadline hit while parked."""
        core = ctx.core_id
        if core in self._active:
            return True
        if len(self._active) < self.admit and not self._passive:
            self._active[core] = self.sim.now
            self._last_admission = self.sim.now
            return True
        entry = _ParkEntry(core, Signal(self.sim, name=f"{self.name}.park{core}"),
                           self.sim.now)
        self._passive.append(entry)
        self._c_parks.add()
        self._ensure_timer()
        if deadline is not None:
            remaining = deadline - self.sim.now
            if remaining <= 0:
                self._passive.remove(entry)
                self._c_park_timeouts.add()
                return False
            self.sim.schedule(remaining, entry.signal.fire)
        yield entry.signal
        if entry.granted:
            # whoever granted the slot published the happens-before edge;
            # join it now that this thread is running again
            if ctx.races is not None:
                ctx.races.on_park_wakeup(core, self)
            return True
        # the timeout wake-up won: withdraw from the passive list.  (If an
        # unpark landed in the same cycle, ``granted`` was already set
        # before our resumption ran and we took the branch above.)
        self._passive.remove(entry)
        self._c_park_timeouts.add()
        return False

    def _unpark(self, entry: _ParkEntry, ctx=None) -> None:
        """Admit a parked entry (caller already popped it from passive)."""
        entry.granted = True
        self._active[entry.core] = self.sim.now
        self._last_admission = self.sim.now
        self._c_unparks.add()
        if ctx is not None and ctx.races is not None:
            ctx.races.on_unpark(ctx.core_id, entry.core, self)
        entry.signal.fire()

    def _ensure_timer(self) -> None:
        if not self._timer_running:
            self._timer_running = True
            self.sim.spawn(self._reactivator(), name=f"{self.name}.reactivator")

    def _reactivator(self):
        """Background liveness backstop: refill slots nobody is vacating.

        Runs forever once the first thread parks; each tick is one event
        per ``reactivation_cycles``, and ``run_until_processes_finish``
        simply stops feeding it once the thread programs are done.
        """
        period = self.reactivation_cycles
        while True:
            yield period
            if not self._passive:
                continue
            now = self.sim.now
            if now - self._last_admission < period:
                continue  # admissions are flowing; nothing is stuck
            # no admission for a full period: the active threads stopped
            # releasing (likely finished).  Reclaim memberships that made
            # no recent use of the lock and refill from the passive list.
            for core in [c for c, t in self._active.items()
                         if now - t >= period]:
                del self._active[core]
            while self._passive and len(self._active) < self.admit:
                self._unpark(self._passive.popleft())
                self._c_timer_admits.add()

    # ------------------------------------------------------------------ #
    # Lock interface
    # ------------------------------------------------------------------ #
    def acquire(self, ctx):
        yield from self._admit(ctx, None)
        self._inflight += 1
        yield from self.inner.acquire(ctx)
        self._active[ctx.core_id] = self.sim.now

    def acquire_timed(self, ctx, deadline):
        admitted = yield from self._admit(ctx, deadline)
        if not admitted:
            return False
        self._inflight += 1
        if self.inner.supports_timed_acquire:
            ok = yield from self.inner.acquire_timed(ctx, deadline)
            if not ok:
                self._inflight -= 1
                return False
        else:
            # inner wait is bounded by the small active set even without
            # a timed path (this is what makes ``cr:mcs`` sheddable)
            yield from self.inner.acquire(ctx)
        self._active[ctx.core_id] = self.sim.now
        return True

    def release(self, ctx):
        yield from self.inner.release(ctx)
        self._inflight -= 1
        if not self._passive:
            return
        now = self.sim.now
        if len(self._active) < self.admit:
            self._unpark(self._passive.popleft(), ctx)
        elif now - self._last_rotation >= self.reactivation_cycles:
            # long-term fairness: at most once per period, trade this
            # thread's slot to the longest-parked waiter
            self._active.pop(ctx.core_id, None)
            self._unpark(self._passive.popleft(), ctx)
            self._c_rotations.add()
            self._last_rotation = now
        elif self._inflight == 0:
            # the inner lock just went idle: no admitted thread is
            # waiting, so hand this slot over rather than strand the
            # passive list until the reactivation timer notices
            self._active.pop(ctx.core_id, None)
            self._unpark(self._passive.popleft(), ctx)
