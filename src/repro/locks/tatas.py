"""test-and-test&set lock.

Spin with plain loads (local L1 hits) while the lock appears taken, and
issue the ``test&set`` only when it appears free — the optimization the
paper uses for every non-contended lock in its hybrid scheme.
"""

from __future__ import annotations

from repro.locks.base import Lock
from repro.mem.hierarchy import MemorySystem

__all__ = ["TatasLock"]


class TatasLock(Lock):
    """test-and-test&set spin lock."""

    supports_timed_acquire = True

    #: deadline-recheck cadence on the timed path; ``spin_until`` blocks
    #: unboundedly on the coherence signal, so the timed variant polls
    #: with plain loads (local once the line is Shared) instead
    TIMED_POLL = 24

    def __init__(self, mem: MemorySystem, name: str = "") -> None:
        super().__init__(name)
        self.flag_addr = mem.address_space.alloc_line()

    def acquire(self, ctx):
        while True:
            yield from ctx.spin_until(self.flag_addr, lambda v: v == 0)
            old = yield from ctx.rmw(self.flag_addr, lambda v: 1)
            if old == 0:
                return

    def acquire_timed(self, ctx, deadline):
        while True:
            value = yield from ctx.load(self.flag_addr)
            if value == 0:
                old = yield from ctx.rmw(self.flag_addr, lambda v: 1)
                if old == 0:
                    return True
            now = ctx.sim.now
            if now >= deadline:
                return False
            yield from ctx.idle(min(self.TIMED_POLL, deadline - now))

    def release(self, ctx):
        yield from ctx.store(self.flag_addr, 0)
