"""Ideal lock — Figure 1's upper bound.

Acquisition and release each take a single clock cycle and generate no
memory-hierarchy or network activity whatsoever; waiting threads are queued
FIFO and woken instantly on release.  Physically unrealizable; used to
quantify how much execution time lock synchronization costs.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.locks.base import Lock
from repro.sim.kernel import Signal, Simulator

__all__ = ["IdealLock"]


class IdealLock(Lock):
    """One-cycle, zero-traffic, FIFO-fair lock."""

    def __init__(self, sim: Simulator, name: str = "") -> None:
        super().__init__(name)
        self.sim = sim
        self._held_by: Optional[int] = None
        self._waiters: Deque[Tuple[int, Signal]] = deque()

    def acquire(self, ctx):
        yield 1  # the single-cycle acquire operation
        if self._held_by is None:
            self._held_by = ctx.core_id
            return
        sig = self.sim.signal(f"{self.name}-wait-{ctx.core_id}")
        self._waiters.append((ctx.core_id, sig))
        yield sig  # ownership was transferred to us by the releaser

    def release(self, ctx):
        if self._held_by != ctx.core_id:
            raise RuntimeError(
                f"{self.name}: core {ctx.core_id} released a lock held by "
                f"{self._held_by}"
            )
        yield 1  # the single-cycle release operation
        if self._waiters:
            # hand off directly so no acquirer can sneak in between
            next_core, sig = self._waiters.popleft()
            self._held_by = next_core
            sig.fire()
        else:
            self._held_by = None

    @property
    def holder(self) -> Optional[int]:
        """Core currently holding the lock (None if free)."""
        return self._held_by
