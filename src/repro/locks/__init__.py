"""Lock algorithm library.

Software locks (Section II of the paper) are expressed as coroutines over
the shared-memory substrate, so every acquire/release *actually runs
through* the MESI protocol and the mesh — their coherence traffic is
measured, not estimated.  The hardware-backed :class:`~repro.locks.glock_api.GLockHandle`
and the zero-overhead :class:`~repro.locks.ideal.IdealLock` complete the set.

=====================  ================================================
``simple``             test&set spin lock
``tatas``              test-and-test&set
``tatas_backoff``      test-and-test&set with exponential back-off
``ticket``             Ticket Lock (fetch&increment pair of counters)
``ticket_prop``        Ticket Lock with proportional back-off
``clh``                CLH list-based queue lock
``anderson``           Array-based queue lock
``mcs``                MCS list-based queue lock (the paper's baseline)
``ideal``              1-cycle, traffic-free lock (Figure 1's IDEAL)
``glock``              GLocks hardware token lock (the paper's proposal)
=====================  ================================================
"""

from repro.locks.base import Lock
from repro.locks.simple import SimpleLock
from repro.locks.tatas import TatasLock
from repro.locks.backoff import TatasBackoffLock
from repro.locks.ticket import TicketLock
from repro.locks.ticket_prop import TicketPropLock
from repro.locks.clh import CLHLock
from repro.locks.anderson import AndersonLock
from repro.locks.mcs import MCSLock
from repro.locks.ideal import IdealLock
from repro.locks.glock_api import GLockHandle
from repro.locks.registry import LOCK_KINDS, make_lock

__all__ = [
    "Lock", "SimpleLock", "TatasLock", "TatasBackoffLock", "TicketLock",
    "TicketPropLock", "CLHLock",
    "AndersonLock", "MCSLock", "IdealLock", "GLockHandle",
    "LOCK_KINDS", "make_lock",
]
