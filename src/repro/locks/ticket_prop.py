"""Ticket lock with proportional back-off.

The classic fix for the plain ticket lock's thundering herd: a waiter that
is ``k`` positions from the head sleeps roughly ``k x expected-hold-time``
cycles between probes of the now-serving counter instead of spinning on it
continuously, so a release invalidates far fewer cached copies.

(Mellor-Crummey & Scott discuss this variant alongside MCS; it keeps the
ticket lock's FIFO fairness while shedding most of its handoff traffic.)
"""

from __future__ import annotations

from repro.locks.base import Lock
from repro.mem.hierarchy import MemorySystem

__all__ = ["TicketPropLock"]


class TicketPropLock(Lock):
    """FIFO ticket lock with distance-proportional back-off."""

    def __init__(self, mem: MemorySystem, name: str = "",
                 hold_estimate: int = 120) -> None:
        super().__init__(name)
        if hold_estimate < 1:
            raise ValueError("hold estimate must be positive")
        self.ticket_addr = mem.address_space.alloc_line()
        self.serving_addr = mem.address_space.alloc_line()
        self.hold_estimate = hold_estimate

    def acquire(self, ctx):
        my_ticket = yield from ctx.rmw(self.ticket_addr, lambda v: v + 1)
        while True:
            serving = yield from ctx.load(self.serving_addr)
            distance = my_ticket - serving
            if distance == 0:
                return
            # sleep proportionally to our queue position, then re-probe
            yield from ctx.idle(distance * self.hold_estimate)

    def release(self, ctx):
        yield from ctx.rmw(self.serving_addr, lambda v: v + 1)
