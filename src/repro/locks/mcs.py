"""MCS list-based queue lock — the paper's software baseline.

Each thread enqueues a per-thread *qnode* (its own cache line) onto a
distributed waiting list via an atomic ``swap`` on the tail pointer, then
spins on a flag inside its own qnode.  A release hands the lock to the
successor by writing that successor's flag — exactly one invalidation per
handoff, which is why MCS is "considered the most efficient software
algorithm for lock synchronization" (Section II).

Pointers are simulated-memory addresses stored as integers; 0 is NULL.
compare&swap is expressed through the substrate's generic atomic
read-modify-write (see :meth:`repro.mem.l1.L1Cache.rmw`).
"""

from __future__ import annotations

from typing import Dict

from repro.locks.base import Lock
from repro.mem.address import WORD_BYTES
from repro.mem.hierarchy import MemorySystem

__all__ = ["MCSLock"]

NULL = 0


class MCSLock(Lock):
    """Mellor-Crummey & Scott list-based queue lock.

    ``n_threads`` qnodes are pre-allocated, one per potential contender
    (indexed by core id), each in its own cache line:
    word 0 = ``next`` pointer, word 1 = ``locked`` flag.
    """

    def __init__(self, mem: MemorySystem, n_threads: int, name: str = "") -> None:
        super().__init__(name)
        self.tail_addr = mem.address_space.alloc_line()
        self._qnode: Dict[int, int] = {
            core: mem.address_space.alloc_line() for core in range(n_threads)
        }

    @staticmethod
    def _next_of(qnode: int) -> int:
        return qnode

    @staticmethod
    def _locked_of(qnode: int) -> int:
        return qnode + WORD_BYTES

    def acquire(self, ctx):
        me = self._qnode[ctx.core_id]
        yield from ctx.store(self._next_of(me), NULL)
        # swap: atomically set tail to our qnode, get the predecessor
        pred = yield from ctx.rmw(self.tail_addr, lambda v: me)
        if pred == NULL:
            return  # lock was free
        yield from ctx.store(self._locked_of(me), 1)
        yield from ctx.store(self._next_of(pred), me)
        yield from ctx.spin_until(self._locked_of(me), lambda v: v == 0)

    def release(self, ctx):
        me = self._qnode[ctx.core_id]
        successor = yield from ctx.load(self._next_of(me))
        if successor == NULL:
            # try to swing the tail back to NULL (compare&swap)
            old = yield from ctx.rmw(
                self.tail_addr, lambda v: NULL if v == me else v
            )
            if old == me:
                return  # no successor: lock is free
            # a successor is linking itself in -- wait for the link
            successor = yield from ctx.spin_until(
                self._next_of(me), lambda v: v != NULL
            )
        yield from ctx.store(self._locked_of(successor), 0)
