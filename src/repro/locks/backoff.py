"""test-and-test&set with exponential back-off.

Anderson found exponential back-off to be the most effective delay between
acquisition attempts (paper Section II).  After every failed ``test&set``
the thread sleeps for a bounded, exponentially growing number of cycles
before spinning again.
"""

from __future__ import annotations

from repro.locks.base import Lock
from repro.mem.hierarchy import MemorySystem

__all__ = ["TatasBackoffLock"]


class TatasBackoffLock(Lock):
    """test-and-test&set with capped exponential back-off."""

    supports_timed_acquire = True

    def __init__(self, mem: MemorySystem, name: str = "",
                 base_delay: int = 8, max_delay: int = 1024) -> None:
        super().__init__(name)
        if base_delay < 1 or max_delay < base_delay:
            raise ValueError("need 1 <= base_delay <= max_delay")
        self.flag_addr = mem.address_space.alloc_line()
        self.base_delay = base_delay
        self.max_delay = max_delay

    def acquire(self, ctx):
        delay = self.base_delay
        while True:
            yield from ctx.spin_until(self.flag_addr, lambda v: v == 0)
            old = yield from ctx.rmw(self.flag_addr, lambda v: 1)
            if old == 0:
                return
            yield from ctx.compute(delay)  # back-off: local, no traffic
            delay = min(delay * 2, self.max_delay)

    def acquire_timed(self, ctx, deadline):
        delay = self.base_delay
        while True:
            value = yield from ctx.load(self.flag_addr)
            if value == 0:
                old = yield from ctx.rmw(self.flag_addr, lambda v: 1)
                if old == 0:
                    return True
            now = ctx.sim.now
            if now >= deadline:
                return False
            yield from ctx.idle(min(delay, deadline - now))
            delay = min(delay * 2, self.max_delay)

    def release(self, ctx):
        yield from ctx.store(self.flag_addr, 0)
