"""Lock factory registry.

Maps the lock-kind names used throughout the experiment harness
(``"mcs"``, ``"glock"``, ``"tatas"``...) to constructors.  Workload
definitions name lock kinds as strings; the machine resolves them here.
"""

from __future__ import annotations

import difflib
import re
from typing import Optional

from repro.core.glock import GLockPool
from repro.locks.anderson import AndersonLock
from repro.locks.backoff import TatasBackoffLock
from repro.locks.clh import CLHLock
from repro.locks.base import Lock
from repro.locks.glock_api import GLockHandle
from repro.locks.ideal import IdealLock
from repro.locks.mcs import MCSLock
from repro.locks.restrict import ConcurrencyRestrictedLock, DEFAULT_CR_ADMIT
from repro.locks.simple import SimpleLock
from repro.locks.tatas import TatasLock
from repro.locks.ticket import TicketLock
from repro.locks.ticket_prop import TicketPropLock
from repro.mem.hierarchy import MemorySystem
from repro.sim.kernel import Simulator

__all__ = ["LOCK_KINDS", "make_lock", "is_lock_kind", "validate_lock_kind"]

LOCK_KINDS = (
    "simple", "tatas", "tatas_backoff", "ticket", "ticket_prop", "anderson",
    "clh", "mcs", "ideal", "glock",
)

#: ``cr:<kind>`` / ``cr<k>:<kind>`` — concurrency-restriction wrapper
#: around any base kind (see :mod:`repro.locks.restrict`)
_CR_RE = re.compile(r"^cr(\d*):(.+)$")


def is_lock_kind(kind: str) -> bool:
    """True when ``kind`` names a constructible lock (incl. ``cr:`` forms)."""
    match = _CR_RE.match(kind)
    if match is not None:
        if match.group(1) and int(match.group(1)) < 1:
            return False
        return is_lock_kind(match.group(2))
    return kind in LOCK_KINDS


def validate_lock_kind(kind: str) -> None:
    """Raise ValueError (with a did-you-mean hint) for unknown kinds."""
    match = _CR_RE.match(kind)
    if match is not None:
        if match.group(1) and int(match.group(1)) < 1:
            raise ValueError(
                f"cr admission bound must be >= 1 in lock kind {kind!r}")
        try:
            validate_lock_kind(match.group(2))
        except ValueError as exc:
            raise ValueError(f"in cr-wrapped lock kind {kind!r}: {exc}") from None
        return
    if kind in LOCK_KINDS:
        return
    message = f"unknown lock kind {kind!r}"
    close = difflib.get_close_matches(kind, LOCK_KINDS, n=1, cutoff=0.6)
    if close:
        message += f"; did you mean {close[0]!r}?"
    message += (f" (choose from {', '.join(LOCK_KINDS)}; any kind can be "
                f"wrapped as 'cr:<kind>' or 'cr<k>:<kind>' for concurrency "
                f"restriction)")
    raise ValueError(message)


def make_lock(
    kind: str,
    *,
    sim: Simulator,
    mem: MemorySystem,
    n_threads: int,
    glock_pool: Optional[GLockPool] = None,
    name: str = "",
) -> Lock:
    """Construct a lock of ``kind``.

    Args:
        kind: one of :data:`LOCK_KINDS`.
        sim: the simulator (ideal/glock need it).
        mem: the memory system (software locks allocate shared state in it).
        n_threads: maximum contenders (sizes queue-lock state).
        glock_pool: required for ``kind="glock"``.
        name: diagnostic label.
    """
    match = _CR_RE.match(kind)
    if match is not None:
        validate_lock_kind(kind)  # reject bad inner kinds with context
        admit = int(match.group(1)) if match.group(1) else DEFAULT_CR_ADMIT
        inner = make_lock(match.group(2), sim=sim, mem=mem,
                          n_threads=n_threads, glock_pool=glock_pool,
                          name=f"{name or kind}.inner")
        return ConcurrencyRestrictedLock(sim, inner, admit=admit,
                                         counters=mem.counters, name=name)
    if kind == "simple":
        return SimpleLock(mem, name)
    if kind == "tatas":
        return TatasLock(mem, name)
    if kind == "tatas_backoff":
        return TatasBackoffLock(mem, name)
    if kind == "ticket":
        return TicketLock(mem, name)
    if kind == "ticket_prop":
        return TicketPropLock(mem, name)
    if kind == "clh":
        return CLHLock(mem, n_threads, name)
    if kind == "anderson":
        return AndersonLock(mem, n_threads, name)
    if kind == "mcs":
        return MCSLock(mem, n_threads, name)
    if kind == "ideal":
        return IdealLock(sim, name)
    if kind == "glock":
        if glock_pool is None:
            raise ValueError("kind='glock' needs a GLockPool")
        return GLockHandle(glock_pool.assign(), name, mem=mem,
                           n_threads=n_threads,
                           fallback_kind=glock_pool.fallback_kind)
    validate_lock_kind(kind)  # raises with a did-you-mean suggestion
    raise ValueError(f"lock kind {kind!r} is registered but unhandled")
