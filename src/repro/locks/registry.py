"""Lock factory registry.

Maps the lock-kind names used throughout the experiment harness
(``"mcs"``, ``"glock"``, ``"tatas"``...) to constructors.  Workload
definitions name lock kinds as strings; the machine resolves them here.
"""

from __future__ import annotations

from typing import Optional

from repro.core.glock import GLockPool
from repro.locks.anderson import AndersonLock
from repro.locks.backoff import TatasBackoffLock
from repro.locks.clh import CLHLock
from repro.locks.base import Lock
from repro.locks.glock_api import GLockHandle
from repro.locks.ideal import IdealLock
from repro.locks.mcs import MCSLock
from repro.locks.simple import SimpleLock
from repro.locks.tatas import TatasLock
from repro.locks.ticket import TicketLock
from repro.locks.ticket_prop import TicketPropLock
from repro.mem.hierarchy import MemorySystem
from repro.sim.kernel import Simulator

__all__ = ["LOCK_KINDS", "make_lock"]

LOCK_KINDS = (
    "simple", "tatas", "tatas_backoff", "ticket", "ticket_prop", "anderson",
    "clh", "mcs", "ideal", "glock",
)


def make_lock(
    kind: str,
    *,
    sim: Simulator,
    mem: MemorySystem,
    n_threads: int,
    glock_pool: Optional[GLockPool] = None,
    name: str = "",
) -> Lock:
    """Construct a lock of ``kind``.

    Args:
        kind: one of :data:`LOCK_KINDS`.
        sim: the simulator (ideal/glock need it).
        mem: the memory system (software locks allocate shared state in it).
        n_threads: maximum contenders (sizes queue-lock state).
        glock_pool: required for ``kind="glock"``.
        name: diagnostic label.
    """
    if kind == "simple":
        return SimpleLock(mem, name)
    if kind == "tatas":
        return TatasLock(mem, name)
    if kind == "tatas_backoff":
        return TatasBackoffLock(mem, name)
    if kind == "ticket":
        return TicketLock(mem, name)
    if kind == "ticket_prop":
        return TicketPropLock(mem, name)
    if kind == "clh":
        return CLHLock(mem, n_threads, name)
    if kind == "anderson":
        return AndersonLock(mem, n_threads, name)
    if kind == "mcs":
        return MCSLock(mem, n_threads, name)
    if kind == "ideal":
        return IdealLock(sim, name)
    if kind == "glock":
        if glock_pool is None:
            raise ValueError("kind='glock' needs a GLockPool")
        return GLockHandle(glock_pool.assign(), name, mem=mem,
                           n_threads=n_threads,
                           fallback_kind=glock_pool.fallback_kind)
    raise ValueError(f"unknown lock kind {kind!r}; choose from {LOCK_KINDS}")
