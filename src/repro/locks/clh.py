"""CLH list-based queue lock (Craig; Landin & Hagersten).

Like MCS, contenders form an implicit queue and each spins on one flag, but
a CLH thread spins on its *predecessor's* node rather than its own: acquire
swaps the tail pointer to the thread's node and spins until the predecessor
clears its ``locked`` word; release clears the thread's own node and the
thread adopts the predecessor's node for its next acquisition (node
recycling).  One fewer store than MCS on the handoff path, at the cost of
spinning on a remote line.

Included as a second queue-lock baseline beyond the paper's MCS: queue
locks differ in *where* the handoff invalidation lands, which shows up in
the per-handoff traffic numbers (see ``examples/lock_shootout.py``).
"""

from __future__ import annotations

from typing import Dict

from repro.locks.base import Lock
from repro.mem.hierarchy import MemorySystem

__all__ = ["CLHLock"]


class CLHLock(Lock):
    """CLH queue lock with per-thread recycled nodes."""

    def __init__(self, mem: MemorySystem, n_threads: int, name: str = "") -> None:
        super().__init__(name)
        self.tail_addr = mem.address_space.alloc_line()
        # a released dummy node seeds the queue
        dummy = mem.address_space.alloc_line()
        mem.backing.write(dummy, 0)
        mem.backing.write(self.tail_addr, dummy)
        self._spare: Dict[int, int] = {
            core: mem.address_space.alloc_line() for core in range(n_threads)
        }
        self._held: Dict[int, int] = {}  # core -> node it acquired with

    def acquire(self, ctx):
        node = self._spare[ctx.core_id]
        yield from ctx.store(node, 1)                     # locked := 1
        pred = yield from ctx.rmw(self.tail_addr, lambda v: node)
        yield from ctx.spin_until(pred, lambda v: v == 0)
        self._held[ctx.core_id] = node
        self._spare[ctx.core_id] = pred                   # recycle pred's node

    def release(self, ctx):
        node = self._held.pop(ctx.core_id)
        yield from ctx.store(node, 0)
