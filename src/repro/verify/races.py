"""Eraser-style lockset + vector-clock happens-before race detection.

Third pillar of the verification stack, after the model checker
(:mod:`repro.verify.modelcheck`) and the invariant sanitizer
(:mod:`repro.verify.invariants`): where those prove the *lock protocol*
correct, the race detector proves that workload *data* is actually
protected by the locks the workload declares.

It runs inside the deterministic simulator as a pure observer.
:class:`~repro.cpu.core.ThreadContext` reports every workload-level
``load``/``store``/``rmw``/``spin_until`` (accesses issued *inside* lock
and barrier implementations are excluded — their sync words are contended
by design) and every synchronization completion:

- ``ctx.acquire`` completion joins the acquirer's vector clock with the
  clock snapshotted at the lock's last release (release -> acquire edge,
  keyed by ``Lock.uid`` — GLock handles, software locks and degraded
  fallback paths all serialize through the same uid);
- ``ctx.release`` entry snapshots the releaser's clock and advances it;
- barrier arrival joins the per-episode accumulator clock, departure
  joins the accumulator back (the all-arrivals -> all-departures edge).

Per address the detector keeps FastTrack-style last-write / last-read
epochs plus an Eraser candidate lockset (intersection of the lock sets
held across all accesses).  A conflicting pair — same address, distinct
cores, at least one write — that is not ordered by happens-before is
reported exactly once per (address, site pair), with both access sites:
core, cycle, per-core op index, held locks, and the workload source line.

Deliberate races are silenced at either access's source line::

    yield from ctx.load(peer_row)  # race: intentional(boundary sharing)

Like the PR 5 profiler, attachment never enters a RunSpec/MachineSpec
digest, and detector-on runs produce byte-identical result fingerprints
to detector-off runs (asserted by the determinism suite).  Enable with
``repro-sim run --race-detect``, ``repro-sim experiment --race-detect``,
``pytest --race-detect``, or directly::

    machine = Machine(CMPConfig.baseline(8))
    detector = RaceDetector(machine).attach()
    machine.run(programs)
    print(detector.format_report())
"""

from __future__ import annotations

import linecache
import re
import sys
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.cpu import core as _cpu_core
from repro.sim.kernel import SimulationError

__all__ = ["AccessSite", "RaceReport", "RaceError", "RaceDetector",
           "RaceCollection", "attach_detector", "race_detection",
           "active_race_collection"]

#: frames from this file are skipped when attributing an access to its
#: workload source line (ctx.load/critical/... all live here)
_CORE_FILE = _cpu_core.__file__

#: the suppression annotation: ``# ... race: intentional(<reason>)``
_INTENT_RE = re.compile(r"race:\s*intentional\(([^)]*)\)")


class RaceError(SimulationError):
    """Raised at drain when ``raise_on_race`` and unsuppressed races exist."""


@dataclass(frozen=True)
class AccessSite:
    """One memory access as the detector saw it."""

    core: int
    cycle: int
    addr: int
    op_index: int          #: per-core index of this workload-level access
    kind: str              #: ``"R"``, ``"W"``, or ``"A"`` (atomic rmw)
    locks: Tuple[str, ...]  #: names of the locks held at the access
    location: str          #: ``path:line`` of the workload source

    def describe(self) -> str:
        held = ", ".join(self.locks) if self.locks else "none"
        return (f"{self.kind} core{self.core} @cycle {self.cycle} "
                f"op#{self.op_index} locks[{held}] {self.location}")


@dataclass(frozen=True)
class RaceReport:
    """An unordered conflicting access pair, reported once."""

    addr: int
    first: AccessSite
    second: AccessSite
    lockset: Tuple[str, ...]  #: Eraser candidate lockset at detection time
    reason: Optional[str] = None  #: intentional-annotation reason, if any

    def describe(self, addr_label: Optional[str] = None) -> str:
        where = addr_label or hex(self.addr)
        common = ", ".join(self.lockset) if self.lockset else "empty"
        head = f"race on {where} (candidate lockset: {common})"
        if self.reason:
            head += f" [intentional: {self.reason}]"
        return "\n".join([head,
                          f"  {self.first.describe()}",
                          f"  {self.second.describe()}"])


class _AddrState:
    """Per-address epochs + candidate lockset."""

    __slots__ = ("write", "write_site", "reads", "lockset")

    def __init__(self) -> None:
        self.write: Optional[Tuple[int, int]] = None  # (core, clock)
        self.write_site: Optional[AccessSite] = None
        # core -> (clock, site) of its latest read
        self.reads: Dict[int, Tuple[int, AccessSite]] = {}
        self.lockset: Optional[FrozenSet[int]] = None


class _BarrierState:
    """Per-barrier episode bookkeeping (keyed by arrival/departure count)."""

    __slots__ = ("arrived", "departed", "episodes", "departs_in")

    def __init__(self) -> None:
        self.arrived: Dict[int, int] = {}   # core -> episodes arrived
        self.departed: Dict[int, int] = {}  # core -> episodes departed
        self.episodes: Dict[int, Dict[int, int]] = {}  # episode -> clock
        self.departs_in: Dict[int, int] = {}  # episode -> departures seen


def _join(clock: Dict[int, int], other: Dict[int, int]) -> None:
    for core, tick in other.items():
        if tick > clock.get(core, 0):
            clock[core] = tick


def _short_path(filename: str) -> str:
    """A stable, readable form of a source path: the part after ``src/``
    (or ``tests/``) when present, else the basename."""
    normalized = filename.replace("\\", "/")
    for anchor in ("/src/", "/tests/"):
        pos = normalized.rfind(anchor)
        if pos >= 0:
            return normalized[pos + len(anchor):]
    return normalized.rsplit("/", 1)[-1]


class RaceDetector:
    """Happens-before + lockset race detection over one Machine's run.

    Args:
        machine: the machine to watch.  :meth:`attach` registers the
            detector as ``machine.races``; the per-core ThreadContexts
            report accesses and synchronization edges to it, and
            ``Machine.run`` calls :meth:`at_drain` once the parallel
            phase finishes.
        raise_on_race: raise :class:`RaceError` at drain when unsuppressed
            races were found (how ``pytest --race-detect`` fails tests).
        collection: optional :class:`RaceCollection` absorbing this
            detector's findings at drain (the ambient-mode aggregator).
    """

    def __init__(self, machine, *, raise_on_race: bool = False,
                 collection: Optional["RaceCollection"] = None) -> None:
        self.machine = machine
        self.raise_on_race = raise_on_race
        self.collection = collection
        n = machine.config.n_cores
        self._clocks: List[Dict[int, int]] = [{c: 1} for c in range(n)]
        self._held: List[Dict[int, str]] = [{} for _ in range(n)]
        self._op_counts = [0] * n
        self._lock_clocks: Dict[int, Dict[int, int]] = {}
        self._lock_names: Dict[int, str] = {}
        # (lock.uid, parked core) -> unparker's clock snapshot at handoff
        self._unpark_clocks: Dict[Tuple[int, int], Dict[int, int]] = {}
        self.timeouts_observed = 0
        self.unparks_observed = 0
        self._barriers: Dict[int, _BarrierState] = {}
        self._addr: Dict[int, _AddrState] = {}
        self._seen: Set[Tuple] = set()
        # (filename, lineno) -> "short:line"; and short location -> reason
        self._where_cache: Dict[Tuple[str, int], str] = {}
        self._intent: Dict[str, Optional[str]] = {}
        self.races: List[RaceReport] = []
        self.suppressed: List[RaceReport] = []
        self.accesses_checked = 0

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #
    def attach(self) -> "RaceDetector":
        """Register on the machine; returns self for chaining."""
        if self.machine.races is not None:
            raise RuntimeError("machine already has a race detector attached")
        self.machine.races = self
        return self

    def detach(self) -> None:
        """Unregister (contexts created afterwards stop reporting)."""
        if self.machine.races is self:
            self.machine.races = None

    # ------------------------------------------------------------------ #
    # access events (called by ThreadContext, outside sync wrappers only)
    # ------------------------------------------------------------------ #
    def on_access(self, ctx, addr: int, is_write: bool,
                  atomic: bool = False) -> None:
        """One workload-level memory access just completed.

        ``atomic`` marks an indivisible read-modify-write (``ctx.rmw``):
        following the C11/TSan model, two atomics on the same address
        never race with *each other* (no update can be lost), but an
        atomic against a plain load/store still does.
        """
        core = ctx.core_id
        self.accesses_checked += 1
        op = self._op_counts[core]
        self._op_counts[core] = op + 1
        clock = self._clocks[core]
        held = self._held[core]
        kind = "A" if atomic else ("W" if is_write else "R")
        site = AccessSite(core=core, cycle=self.machine.sim.now, addr=addr,
                          op_index=op, kind=kind,
                          locks=tuple(sorted(held.values())),
                          location=self._where())
        state = self._addr.get(addr)
        if state is None:
            state = self._addr[addr] = _AddrState()
        held_uids = frozenset(held)
        state.lockset = (held_uids if state.lockset is None
                         else state.lockset & held_uids)
        write = state.write
        if write is not None and write[0] != core \
                and write[1] > clock.get(write[0], 0) \
                and not (atomic and state.write_site.kind == "A"):
            self._report(state, state.write_site, site)
        if is_write:
            for read_core, (tick, read_site) in state.reads.items():
                if read_core != core and tick > clock.get(read_core, 0):
                    self._report(state, read_site, site)
            state.write = (core, clock[core])
            state.write_site = site
            state.reads.clear()
        else:
            state.reads[core] = (clock[core], site)

    # ------------------------------------------------------------------ #
    # synchronization edges (called by ThreadContext)
    # ------------------------------------------------------------------ #
    def on_acquire(self, core: int, lock) -> None:
        """``ctx.acquire(lock)`` completed on ``core``."""
        self._held[core][lock.uid] = lock.name
        self._lock_names[lock.uid] = lock.name
        released = self._lock_clocks.get(lock.uid)
        if released is not None:
            _join(self._clocks[core], released)

    def on_release(self, core: int, lock) -> None:
        """``ctx.release(lock)`` is starting on ``core``."""
        self._held[core].pop(lock.uid, None)
        clock = self._clocks[core]
        self._lock_clocks[lock.uid] = dict(clock)
        clock[core] = clock.get(core, 0) + 1

    def on_acquire_timeout(self, core: int, lock) -> None:
        """A timed ``ctx.acquire(lock, timeout=...)`` gave up on ``core``.

        A failed acquire creates *no* happens-before edge (the thread
        observed nothing it may rely on) and must leave nothing held —
        both asserted here so a buggy lock cannot silently corrupt the
        lockset analysis.
        """
        self._lock_names[lock.uid] = lock.name
        self.timeouts_observed += 1
        if lock.uid in self._held[core]:  # pragma: no cover - lock bug
            raise SimulationError(
                f"core{core} timed out acquiring {lock.name!r} while the "
                f"detector believed it already held it")

    def on_unpark(self, core: int, target: int, lock) -> None:
        """``core`` hands a concurrency-restriction slot of ``lock`` to
        the parked ``target``: snapshot the unparker's clock (the edge
        source) and advance it, exactly like a release."""
        clock = self._clocks[core]
        self._unpark_clocks[(lock.uid, target)] = dict(clock)
        clock[core] = clock.get(core, 0) + 1
        self.unparks_observed += 1

    def on_park_wakeup(self, core: int, lock) -> None:
        """``core`` resumed from a granted park on ``lock``: join the
        clock its unparker snapshotted.  Timer-driven admissions store no
        snapshot (no thread is the edge source) and join nothing."""
        snapshot = self._unpark_clocks.pop((lock.uid, core), None)
        if snapshot is not None:
            _join(self._clocks[core], snapshot)

    def on_barrier_arrive(self, core: int, barrier) -> None:
        """``core`` is entering ``barrier.wait``."""
        state = self._barriers.get(id(barrier))
        if state is None:
            state = self._barriers[id(barrier)] = _BarrierState()
        episode = state.arrived.get(core, 0)
        state.arrived[core] = episode + 1
        accumulator = state.episodes.setdefault(episode, {})
        clock = self._clocks[core]
        _join(accumulator, clock)
        clock[core] = clock.get(core, 0) + 1

    def on_barrier_depart(self, core: int, barrier) -> None:
        """``core`` left ``barrier.wait``."""
        state = self._barriers.get(id(barrier))
        if state is None:  # departure without arrival: nothing to join
            return
        episode = state.departed.get(core, 0)
        state.departed[core] = episode + 1
        accumulator = state.episodes.get(episode)
        if accumulator is not None:
            _join(self._clocks[core], accumulator)
            done = state.departs_in.get(episode, 0) + 1
            state.departs_in[episode] = done
            if done >= barrier.n_threads:  # episode complete: free its clock
                state.episodes.pop(episode, None)
                state.departs_in.pop(episode, None)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def _where(self) -> str:
        """Source location of the workload frame driving the access."""
        frame = sys._getframe(2)
        while frame is not None and frame.f_code.co_filename == _CORE_FILE:
            frame = frame.f_back
        if frame is None:
            return "<unknown>:0"
        key = (frame.f_code.co_filename, frame.f_lineno)
        location = self._where_cache.get(key)
        if location is None:
            location = f"{_short_path(key[0])}:{key[1]}"
            self._where_cache[key] = location
            self._intent[location] = self._intent_reason(*key)
        return location

    @staticmethod
    def _intent_reason(filename: str, lineno: int) -> Optional[str]:
        line = linecache.getline(filename, lineno)
        comment = line.find("#")
        if comment < 0:
            return None
        match = _INTENT_RE.search(line, comment)
        if match is None:
            return None
        return match.group(1).strip() or "unspecified"

    def _report(self, state: _AddrState, first: AccessSite,
                second: AccessSite) -> None:
        key = (second.addr, first.location, first.kind,
               second.location, second.kind)
        if key in self._seen:
            return
        self._seen.add(key)
        reason = (self._intent.get(first.location)
                  or self._intent.get(second.location))
        lockset = tuple(sorted(self._lock_names.get(uid, f"lock{uid}")
                               for uid in (state.lockset or ())))
        report = RaceReport(addr=second.addr, first=first, second=second,
                            lockset=lockset, reason=reason)
        if reason is None:
            self.races.append(report)
            if self.machine.sim.tracer is not None:
                self.machine.sim.tracer.record(
                    self.machine.sim.now, "race", f"core{second.core}",
                    report.describe(self._addr_label(second.addr)))
        else:
            self.suppressed.append(report)

    def _addr_label(self, addr: int) -> Optional[str]:
        describe = getattr(self.machine.mem.address_space, "describe", None)
        return describe(addr) if describe is not None else None

    def at_drain(self) -> None:
        """Called by ``Machine.run`` once every thread program finished."""
        if self.collection is not None:
            self.collection.absorb(self)
        if self.raise_on_race and self.races:
            raise RaceError(self.format_report())

    def format_report(self) -> str:
        """Human-readable summary plus one block per race."""
        lines = [f"race detector: {len(self.races)} race(s), "
                 f"{len(self.suppressed)} intentional, "
                 f"{self.accesses_checked} accesses checked"]
        for report in self.races + self.suppressed:
            lines.append(report.describe(self._addr_label(report.addr)))
        return "\n".join(lines)


class RaceCollection:
    """Aggregated findings across every machine built under
    :func:`race_detection` (one experiment can build hundreds)."""

    def __init__(self) -> None:
        self.races: List[RaceReport] = []
        self.suppressed: List[RaceReport] = []
        self.accesses_checked = 0
        self.machines = 0

    def absorb(self, detector: RaceDetector) -> None:
        self.machines += 1
        self.accesses_checked += detector.accesses_checked
        self.races.extend(detector.races)
        self.suppressed.extend(detector.suppressed)

    def format_report(self) -> str:
        lines = [f"race detector: {len(self.races)} race(s), "
                 f"{len(self.suppressed)} intentional, "
                 f"{self.accesses_checked} accesses checked "
                 f"across {self.machines} machine(s)"]
        for report in self.races + self.suppressed:
            lines.append(report.describe())
        return "\n".join(lines)


def attach_detector(machine, **kwargs) -> RaceDetector:
    """Build a :class:`RaceDetector` for ``machine`` and attach it."""
    return RaceDetector(machine, **kwargs).attach()


#: the ambient collection new Machines report to (see :func:`race_detection`)
_ACTIVE: Optional[RaceCollection] = None


def active_race_collection() -> Optional[RaceCollection]:
    """The collection installed by the innermost :func:`race_detection`."""
    return _ACTIVE


@contextmanager
def race_detection(collection: Optional[RaceCollection] = None
                   ) -> Iterator[RaceCollection]:
    """Attach a race detector to every Machine built inside the block.

    Mirrors :func:`repro.sim.profile.profiling`: ambient state, never part
    of a spec, which is how ``repro-sim experiment --race-detect`` reaches
    simulations constructed deep inside experiment modules without
    touching any digest.
    """
    global _ACTIVE
    if collection is None:
        collection = RaceCollection()
    previous = _ACTIVE
    _ACTIVE = collection
    try:
        yield collection
    finally:
        _ACTIVE = previous
