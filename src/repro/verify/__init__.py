"""Protocol verification layer for the GLocks reproduction.

Four coordinated tools guard the paper's central correctness claims (one
token per G-line network, starvation-free two-level round-robin
arbitration, single-signal release):

- :mod:`repro.verify.modelcheck` — an exhaustive state-space explorer that
  drives the *real* :class:`~repro.core.controllers.TokenManager` FSM
  through every interleaving of REQ/REL/TOKEN events a physical G-line
  network could produce, checking mutual exclusion, token conservation,
  deadlock-freedom and bounded-bypass fairness on small configurations.
- :mod:`repro.verify.invariants` — a runtime sanitizer that hooks the
  simulator event loop (``Simulator.on_event``) and validates per-cycle
  invariants on full paper-scale workloads (``--sanitize`` on the CLI, or
  ``pytest --sanitize`` for the test suite).
- :mod:`repro.verify.races` — a lockset + vector-clock data-race detector
  that rides the per-core memory path and the lock/barrier layer
  (``--race-detect`` on the CLI, or ``pytest --race-detect``), proving
  each lock kind's happens-before edges actually order the workloads.
- :mod:`repro.verify.lint` — an AST-based multi-rule static lint for
  simulator hazards, SIM001-SIM007 (``python -m repro.lint src/`` or
  ``repro-sim lint``).

See docs/protocol.md ("Verified invariants") for the property list and the
configuration sizes each property has been exhausted on.
"""

from repro.verify.invariants import InvariantSanitizer, InvariantViolation
from repro.verify.lint import LintFinding, lint_paths, lint_source
from repro.verify.modelcheck import (
    CheckResult,
    ModelCheckViolation,
    check_protocol,
)
from repro.verify.races import (
    RaceCollection,
    RaceDetector,
    RaceError,
    RaceReport,
    attach_detector,
    race_detection,
)

__all__ = [
    "CheckResult",
    "ModelCheckViolation",
    "check_protocol",
    "InvariantSanitizer",
    "InvariantViolation",
    "LintFinding",
    "lint_paths",
    "lint_source",
    "RaceCollection",
    "RaceDetector",
    "RaceError",
    "RaceReport",
    "attach_detector",
    "race_detection",
]
