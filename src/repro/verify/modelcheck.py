"""Exhaustive model checking of the GLocks token protocol.

The checker runs the *production* FSM — :class:`repro.core.controllers.
TokenManager` wired into a real :class:`repro.core.network.GLineNetwork` —
under a controlled scheduler that, instead of the deterministic event heap,
explores **every** order in which in-flight REQ/REL/TOKEN signals can be
delivered, interleaved with every order in which cores can issue requests
and releases.  The only ordering kept is the physical one: two signals on
the *same* G-line are pulses on a single wire and stay FIFO; signals on
different wires may arrive in any relative order (modelling arbitrary wire
lengths and G-line latencies).

Cores are modelled as eager loops (idle -> request -> hold -> release ->
idle, forever), so the reachable graph is finite and covers steady-state
contention, not just a single acquisition wave.  ``max_concurrent`` bounds
how many cores may be simultaneously active, which is what makes larger
meshes (e.g. the 4x4) tractable: the exploration is then exhaustive over
every interleaving of every choice of up-to-``max_concurrent`` active
cores.

Checked on every reachable state:

- **mutual exclusion** — at most one core holds the lock;
- **token conservation** — exactly one token exists, counting manager
  loci (``has_token`` with no busy child), in-flight TOKEN grants,
  in-flight REL signals and the holding core;
- **deadlock-freedom / no lost wake-ups** — a state with no in-flight
  signals and no holder must be fully quiescent: token parked at the
  primary, no raised request flags, no waiting core;
- **bounded bypass** (optional, ``fairness_bound``) — once a child's
  request flag is raised at a manager, that manager grants at most
  ``fairness_bound`` other children before serving it.  This is the
  per-manager admission property; composed over the (at most two) manager
  levels it bounds end-to-end bypass by the product of the per-level
  bounds.  (End-to-end bypass counted from the *issue* of a REQ is
  unbounded in this model — an adversarial scheduler can float the REQ
  signal on its wire indefinitely — so the flag-raise is the correct
  admission instant.)  Checked for ``round_robin`` and ``fifo``;
  ``static`` starves by design — the ablation's strawman.

A violation raises :class:`ModelCheckViolation` carrying the action trace
from the initial state, which replays the counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.controllers import TokenManager
from repro.core.network import GLineNetwork
from repro.sim.config import CMPConfig
from repro.sim.stats import CounterSet

__all__ = ["CheckResult", "ModelCheckViolation", "check_protocol"]

# core lifecycle states
IDLE, WAITING, HOLDING = 0, 1, 2

# event kinds that represent the token travelling through the network;
# together with manager loci and holding cores they must always sum to 1
_TOKEN_KINDS = frozenset({"_receive_token", "receive_token", "_on_release"})


class ModelCheckViolation(AssertionError):
    """A protocol property failed on some reachable interleaving."""

    def __init__(self, message: str, trace: List[str]) -> None:
        lines = "\n  ".join(trace) if trace else "<initial state>"
        super().__init__(f"{message}\ncounterexample ({len(trace)} steps):\n  {lines}")
        self.trace = trace


@dataclass(frozen=True)
class CheckResult:
    """Statistics from one exhausted state space (success — violations raise)."""

    n_cores: int
    levels: int
    arbitration: str
    max_concurrent: Optional[int]
    fairness_bound: Optional[int]
    n_states: int
    n_transitions: int
    max_pending: int

    def describe(self) -> str:
        scope = ("all cores eager" if self.max_concurrent is None
                 else f"<= {self.max_concurrent} concurrent cores")
        fair = ("" if self.fairness_bound is None
                else f", bypass bound {self.fairness_bound}")
        return (f"{self.n_cores} cores / {self.levels} levels / "
                f"{self.arbitration}: exhausted {self.n_states} states, "
                f"{self.n_transitions} transitions ({scope}{fair}) — "
                "mutual exclusion, token conservation, deadlock-freedom OK")


class _ControlledSim:
    """Simulator stand-in: captures scheduled signals instead of running them.

    The network's :class:`~repro.core.gline.GLine` objects call
    ``sim.schedule(latency, receiver, *args)``; here that appends the event
    to a pending list the explorer fires in every admissible order.
    """

    def __init__(self) -> None:
        self.now = 0  # noqa: SIM004 — this *is* the simulator stand-in
        self.tracer = None
        self.pending: List[Tuple[Any, str, tuple]] = []  # (channel, kind, (fn, args))

    def schedule(self, delay: int, fn: Callable, *args: Any) -> None:
        kind = getattr(getattr(fn, "__func__", fn), "__name__", repr(fn))
        owner = getattr(fn, "__self__", fn)
        if kind in ("_on_request", "_on_release"):
            # child -> manager up-line: REQ and REL share one wire
            channel = (id(owner), "up", args[0])
        elif kind in ("_receive_token", "receive_token"):
            channel = (id(owner), "down")
        else:  # pragma: no cover - would mean a new signal type in the FSM
            raise RuntimeError(f"model checker met unknown event {kind!r}")
        self.pending.append((channel, kind, (fn, args)))


class _Explorer:
    """DFS over the reachable joint state of network, wires and cores."""

    def __init__(self, n_cores: int, levels: int, arbitration: str,
                 max_concurrent: Optional[int],
                 fairness_bound: Optional[int],
                 max_states: int) -> None:
        self.n_cores = n_cores
        self.fairness_bound = fairness_bound
        self.max_concurrent = max_concurrent
        self.max_states = max_states
        self.sim = _ControlledSim()
        config = CMPConfig.baseline(n_cores)
        self.network = GLineNetwork(self.sim, config, CounterSet(),
                                    levels=levels, arbitration=arbitration)
        self.managers: List[TokenManager] = [self.network.root]
        if levels == 3:
            self.managers.extend(self.network.intermediates)
        self.managers.extend(self.network.secondaries)
        self.core_state = [IDLE] * n_cores
        # per-manager, per-child grant-bypass counters (fairness check):
        # bypass[m][i] counts grants manager m gave to other children while
        # child i's request flag stayed raised
        self.bypass = [[0] * len(m.children) for m in self.managers]
        self._grant_cbs = [self._make_grant_cb(c) for c in range(n_cores)]
        self._trace_of: Dict[Any, Tuple[Any, Optional[str]]] = {}
        self._cur_key: Any = None  # predecessor key while applying an action
        self._cur_action: Optional[str] = None
        self.n_states = 0
        self.n_transitions = 0
        self.max_pending = 0

    # ------------------------------------------------------------------ #
    # grant delivery (runs synchronously inside a fired TOKEN event)
    # ------------------------------------------------------------------ #
    def _make_grant_cb(self, core: int) -> Callable[[], None]:
        def granted() -> None:
            if self.core_state[core] != WAITING:
                self._violation(f"TOKEN delivered to core {core} which is "
                                f"not waiting (state {self.core_state[core]})")
            if HOLDING in self.core_state:
                holder = self.core_state.index(HOLDING)
                self._violation("mutual exclusion: TOKEN delivered to core "
                                f"{core} while core {holder} holds the lock")
            self.core_state[core] = HOLDING
        return granted

    # ------------------------------------------------------------------ #
    # fairness accounting (per-manager bounded bypass)
    # ------------------------------------------------------------------ #
    def _update_fairness(self, pre_mgrs) -> None:
        """Compare pre/post busy_child per manager to detect grants."""
        for m_idx, mgr in enumerate(self.managers):
            granted = mgr.busy_child
            counters = self.bypass[m_idx]
            if granted is not None and granted != pre_mgrs[m_idx][3]:
                counters[granted] = 0
                for i, flagged in enumerate(mgr.flags):
                    if flagged and i != granted:
                        counters[i] += 1
                        if counters[i] > self.fairness_bound:
                            self._violation(
                                f"bounded bypass: manager {mgr.name} granted "
                                f"{counters[i]} other children (bound "
                                f"{self.fairness_bound}) while child {i}'s "
                                f"request flag stayed raised — latest grant "
                                f"to child {granted}")
            # a cleared flag ends the admission window: reset its counter so
            # equivalent states hash identically
            for i, flagged in enumerate(mgr.flags):
                if not flagged:
                    counters[i] = 0

    # ------------------------------------------------------------------ #
    # state snapshot / restore / hashing
    # ------------------------------------------------------------------ #
    def _snapshot(self):
        mgrs = tuple(
            (tuple(m.flags), tuple(m._fifo_order), m.has_token,
             m.busy_child, m.rr_pos, m._requested_parent)
            for m in self.managers
        )
        return (mgrs, tuple(self.core_state),
                tuple(tuple(b) for b in self.bypass),
                tuple(self.sim.pending))

    def _restore(self, snap) -> None:
        mgrs, cores, bypass, pending = snap
        for m, (flags, fifo, has_token, busy, rr, reqp) in zip(self.managers, mgrs):
            m.flags[:] = flags
            m._fifo_order[:] = fifo
            m.has_token = has_token
            m.busy_child = busy
            m.rr_pos = rr
            m._requested_parent = reqp
        self.core_state[:] = cores
        for mine, saved in zip(self.bypass, bypass):
            mine[:] = saved
        self.sim.pending[:] = pending
        # a core's grant callback is registered exactly while it waits
        self.network._token_callbacks = {
            c: self._grant_cbs[c] for c in range(self.n_cores)
            if cores[c] == WAITING
        }

    @staticmethod
    def _key(snap) -> Any:
        mgrs, cores, bypass, pending = snap
        # pending order only matters per wire: canonicalize to sorted
        # per-channel FIFO sequences so equivalent interleavings coincide
        per_channel: Dict[Any, List[Tuple[str, tuple]]] = {}
        for channel, kind, (fn, args) in pending:
            per_channel.setdefault(channel, []).append((kind, args))
        wires = tuple(sorted(
            (channel, tuple(events)) for channel, events in per_channel.items()
        ))
        return (mgrs, cores, bypass, wires)

    # ------------------------------------------------------------------ #
    # transitions
    # ------------------------------------------------------------------ #
    def _enabled_actions(self, snap) -> List[Tuple[str, int]]:
        mgrs, cores, _bypass, pending = snap
        actions: List[Tuple[str, int]] = []
        seen_channels = set()
        for i, (channel, _kind, _ev) in enumerate(pending):
            if channel not in seen_channels:  # wire-FIFO: head of line only
                seen_channels.add(channel)
                actions.append(("fire", i))
        active = sum(1 for s in cores if s != IDLE)
        can_request = (self.max_concurrent is None
                       or active < self.max_concurrent)
        for c, s in enumerate(cores):
            if s == IDLE and can_request:
                actions.append(("req", c))
            elif s == HOLDING:
                actions.append(("rel", c))
        return actions

    def _apply(self, action: Tuple[str, int], snap) -> None:
        op, arg = action
        if op == "fire":
            _channel, _kind, (fn, args) = self.sim.pending.pop(arg)
            fn(*args)
        elif op == "req":
            self.core_state[arg] = WAITING
            self.network.request(arg, self._grant_cbs[arg])
        else:  # rel
            self.core_state[arg] = IDLE
            self.network.release(arg)  # noqa: SIM001 — plain REL signal
        if self.fairness_bound is not None:
            self._update_fairness(snap[0])

    @staticmethod
    def _describe(action: Tuple[str, int], snap) -> str:
        op, arg = action
        if op == "req":
            return f"core {arg}: REQ"
        if op == "rel":
            return f"core {arg}: REL"
        channel, kind, (fn, args) = snap[3][arg]
        owner = getattr(fn, "__self__", None)
        where = getattr(owner, "name", owner.__class__.__name__ if owner else "?")
        label = {"_on_request": "deliver REQ", "_on_release": "deliver REL",
                 "_receive_token": "deliver TOKEN",
                 "receive_token": "deliver TOKEN (leaf)"}.get(kind, kind)
        return f"{label} at {where} (args={args})"

    # ------------------------------------------------------------------ #
    # invariants
    # ------------------------------------------------------------------ #
    def _violation(self, message: str) -> None:
        trace: List[str] = []
        if self._cur_action is not None:
            trace.append(self._cur_action)
        key = self._cur_key
        while key is not None:
            parent, action = self._trace_of[key]
            if action is not None:
                trace.append(action)
            key = parent
        trace.reverse()
        raise ModelCheckViolation(message, trace)

    def _check_invariants(self) -> None:
        holders = [c for c, s in enumerate(self.core_state) if s == HOLDING]
        if len(holders) > 1:
            self._violation(f"mutual exclusion: cores {holders} all hold the lock")
        tokens = sum(1 for m in self.managers
                     if m.has_token and m.busy_child is None)
        tokens += sum(1 for _ch, kind, _ev in self.sim.pending
                      if kind in _TOKEN_KINDS)
        tokens += len(holders)
        if tokens != 1:
            self._violation(f"token conservation: counted {tokens} tokens "
                            "(manager loci + in-flight TOKEN/REL + holder)")
        if not self.sim.pending and not holders:
            # no activity and nobody holds the lock: the network must be
            # fully quiescent or someone is starved forever
            waiting = [c for c, s in enumerate(self.core_state) if s == WAITING]
            if waiting:
                self._violation(f"deadlock: cores {waiting} wait forever "
                                "(no in-flight signals, no holder)")
            for m in self.managers:
                if any(m.flags) or m.busy_child is not None:
                    self._violation(f"lost wake-up: manager {m.name} has "
                                    f"raised flags {m.flags} / busy child "
                                    f"{m.busy_child} in a quiescent state")
            if not self.network.root.has_token:
                self._violation("token did not park at the primary in a "
                                "quiescent state")

    # ------------------------------------------------------------------ #
    # the exploration loop
    # ------------------------------------------------------------------ #
    def run(self) -> Tuple[int, int, int]:
        initial = self._snapshot()
        initial_key = self._key(initial)
        self._trace_of[initial_key] = (None, None)
        self._cur_key, self._cur_action = initial_key, None
        self._check_invariants()
        visited = {initial_key}
        stack = [(initial, initial_key)]
        while stack:
            snap, key = stack.pop()
            for action in self._enabled_actions(snap):
                self._restore(snap)
                self._cur_key = key
                self._cur_action = self._describe(action, snap)
                self._apply(action, snap)
                self._check_invariants()
                self.n_transitions += 1
                self.max_pending = max(self.max_pending, len(self.sim.pending))
                succ = self._snapshot()
                succ_key = self._key(succ)
                if succ_key not in visited:
                    visited.add(succ_key)
                    self._trace_of[succ_key] = (key, self._cur_action)
                    stack.append((succ, succ_key))
                    if len(visited) > self.max_states:
                        raise RuntimeError(
                            f"state space exceeds max_states={self.max_states}; "
                            "lower max_concurrent or raise the limit")
        self.n_states = len(visited)
        return self.n_states, self.n_transitions, self.max_pending


def check_protocol(n_cores: int = 4, levels: int = 2,
                   arbitration: str = "round_robin", *,
                   max_concurrent: Optional[int] = None,
                   fairness_bound: Optional[int] = None,
                   max_states: int = 5_000_000) -> CheckResult:
    """Exhaust the protocol state space for one configuration.

    Raises :class:`ModelCheckViolation` (with a counterexample trace) if any
    property fails; returns exploration statistics otherwise.

    Args:
        n_cores: mesh size (4 = 2x2, 16 = 4x4, ...).
        levels: 2 (the paper's network) or 3 (hierarchical extension).
        arbitration: ``round_robin`` / ``fifo`` / ``static``.
        max_concurrent: bound on simultaneously active cores (None = all
            cores eager — exhaustive but exponential; keep to <= 4 cores).
        fairness_bound: if set, assert the per-manager admission property:
            once a child's request flag is raised at a manager, at most
            this many grants go to that manager's other children before it
            is served (round_robin / fifo only; the static policy starves
            by construction).
        max_states: hard cap on explored states (guards CI time).
    """
    if arbitration == "static" and fairness_bound is not None:
        raise ValueError("static arbitration starves by design; "
                         "fairness_bound only applies to round_robin/fifo")
    explorer = _Explorer(n_cores, levels, arbitration, max_concurrent,
                         fairness_bound, max_states)
    n_states, n_transitions, max_pending = explorer.run()
    return CheckResult(
        n_cores=n_cores, levels=levels, arbitration=arbitration,
        max_concurrent=max_concurrent, fairness_bound=fairness_bound,
        n_states=n_states, n_transitions=n_transitions,
        max_pending=max_pending,
    )
