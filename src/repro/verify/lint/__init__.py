"""Simulator-aware static lint (AST-based, zero dependencies).

A multi-rule framework (:mod:`repro.verify.lint.framework`) drives the
registered rules (:mod:`repro.verify.lint.rules`) over one shared AST
walk per file:

- ``SIM001`` — ``acquire``/``release`` coroutine call discarded
- ``SIM002`` — bool yielded as a cycle delay
- ``SIM003`` — unseeded global randomness in simulator code
- ``SIM004`` — kernel-owned state mutated outside ``sim/kernel.py``
- ``SIM005`` — lock acquired but not released on some path
- ``SIM006`` — ``ctx`` memory-op coroutine or loaded value discarded
- ``SIM007`` — shared mutable Python state in a workload module

Suppress per statement with ``# noqa: SIMxxx`` (or bare ``# noqa``) on
any physical line of the flagged statement — continuation lines count.

Run as ``python -m repro.lint <paths>`` or ``repro-sim lint <paths>``;
``--list-rules`` prints the registry, ``--select SIM005,SIM007`` narrows
a run.  Exit codes: 0 clean, 1 findings, 2 unreadable path.
"""

from repro.verify.lint.framework import (LintContext, LintFinding, Rule,
                                         iter_rules, lint_paths,
                                         lint_source, main, register_rule,
                                         rule_codes)
from repro.verify.lint import rules  # noqa: F401 — registers SIM001-SIM007

__all__ = ["LintFinding", "LintContext", "Rule", "register_rule",
           "iter_rules", "rule_codes", "lint_source", "lint_paths", "main"]
