"""Rule framework for the simulator-aware lint.

The lint is a set of independently registered :class:`Rule` classes
(:mod:`repro.verify.lint.rules`) driven over one shared AST walk per
file.  A rule declares the nodes it cares about by defining
``visit_<NodeType>`` methods (the dispatcher owns traversal — rules never
call ``generic_visit``) and reports through :meth:`Rule.add`; whole-file
rules can hook ``visit_Module`` and walk on their own.

Suppression is per *statement*, not per physical line: a finding whose
flagged node spans ``line..end_line`` is silenced by a ``# noqa`` (bare,
or listing the code) on **any** physical line of that span — so trailing
comments after a continuation line of a multi-line call work, which the
pre-framework lint got wrong.

Exit codes of :func:`main` (``python -m repro.lint`` / ``repro-sim
lint``), relied on by CI and tested in ``tests/test_lint.py``:

- ``0`` — every linted file is clean;
- ``1`` — at least one finding (after ``noqa`` suppression);
- ``2`` — a path could not be linted (missing file, not ``*.py``).
"""

from __future__ import annotations

import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Type

__all__ = ["LintFinding", "LintContext", "Rule", "register_rule",
           "iter_rules", "rule_codes", "lint_source", "lint_paths", "main"]


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location.

    ``end_line`` is the last physical line of the flagged statement
    (``0`` means single-line); the ``noqa`` scan covers the whole span.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    end_line: int = 0

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class LintContext:
    """Per-file state shared by every rule instance."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.normalized = path.replace("\\", "/")
        #: the one file allowed to mutate kernel-owned attributes
        self.is_kernel = (self.normalized.endswith("sim/kernel.py")
                          or self.normalized.endswith("sim/_kernel_pure.py"))
        #: workload modules get the shared-state rules (SIM007)
        self.is_workload = "workloads" in self.normalized.split("/")
        self.source = source
        self.findings: List[LintFinding] = []

    def add(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(LintFinding(
            path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
            end_line=getattr(node, "end_lineno", 0) or 0,
        ))


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`code` and :attr:`summary`, register with
    :func:`register_rule`, and implement ``visit_<NodeType>`` methods.
    :meth:`applies` lets a rule opt out of whole files (e.g. SIM004 inside
    the kernel itself).
    """

    code: str = ""
    summary: str = ""

    def __init__(self, ctx: LintContext) -> None:
        self.ctx = ctx

    def applies(self) -> bool:
        return True

    def add(self, node: ast.AST, message: str) -> None:
        self.ctx.add(node, self.code, message)


#: code -> rule class, in registration order (rules.py registers SIM001..N)
_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add ``cls`` to the rule registry."""
    if not cls.code:
        raise ValueError(f"{cls.__name__} has no code")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate lint rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def iter_rules() -> List[Type[Rule]]:
    """Registered rule classes, sorted by code."""
    return [cls for _, cls in sorted(_REGISTRY.items())]


def rule_codes() -> List[str]:
    """All registered codes, sorted (``["SIM001", ...]``)."""
    return sorted(_REGISTRY)


class _Dispatcher(ast.NodeVisitor):
    """One traversal calling every interested rule per node."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        self._handlers: Dict[str, List] = {}
        for rule in rules:
            for name in dir(type(rule)):
                if name.startswith("visit_"):
                    self._handlers.setdefault(name, []).append(
                        getattr(rule, name))

    def visit(self, node: ast.AST) -> None:
        for handler in self._handlers.get("visit_" + type(node).__name__, ()):
            handler(node)
        self.generic_visit(node)


_NOQA_RE = re.compile(r"#\s*noqa\b(?P<spec>[^#]*)", re.IGNORECASE)


def _noqa_codes(line: str) -> Optional[Set[str]]:
    """``None`` if the line carries no ``noqa``; an empty set for a bare
    ``# noqa`` (silence everything); else the listed codes."""
    match = _NOQA_RE.search(line)
    if match is None:
        return None
    spec = match.group("spec").strip()
    if not spec.startswith(":"):
        return set()
    # accept "SIM001", "SIM001, SIM004", "SIM001 — rationale text"
    return {part.strip().split()[0].upper()
            for part in spec[1:].split(",") if part.strip()}


def _suppressed(finding: LintFinding, lines: List[str]) -> bool:
    """True if any physical line of the finding's statement span carries a
    matching ``# noqa`` (bare or listing the finding's code)."""
    last = max(finding.line, finding.end_line or finding.line)
    for lineno in range(finding.line, last + 1):
        if not 1 <= lineno <= len(lines):
            continue
        codes = _noqa_codes(lines[lineno - 1])
        if codes is not None and (not codes or finding.code in codes):
            return True
    return False


def lint_source(source: str, path: str = "<string>",
                select: Optional[Iterable[str]] = None) -> List[LintFinding]:
    """Lint one module's source text; returns findings (empty = clean).

    ``select`` restricts the run to the given rule codes (default: all
    registered rules).
    """
    # the rules module self-registers on first import
    from repro.verify.lint import rules as _rules  # noqa: F401
    ctx = LintContext(path, source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        return [LintFinding(path=path, line=err.lineno or 0,
                            col=err.offset or 0, code="SIM000",
                            message=f"syntax error: {err.msg}")]
    wanted = None if select is None else {c.upper() for c in select}
    active = [cls(ctx) for cls in iter_rules()
              if wanted is None or cls.code in wanted]
    _Dispatcher([rule for rule in active if rule.applies()]).visit(tree)
    lines = source.splitlines()
    findings = [f for f in ctx.findings if not _suppressed(f, lines)]
    return sorted(findings, key=lambda f: (f.line, f.col, f.code))


def _iter_python_files(paths: Sequence[str]) -> Iterable[Path]:
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p
        else:
            raise FileNotFoundError(f"not a python file or directory: {raw}")


def lint_paths(paths: Sequence[str],
               select: Optional[Iterable[str]] = None) -> List[LintFinding]:
    """Lint every ``*.py`` under ``paths`` (files or directories)."""
    findings: List[LintFinding] = []
    for file in _iter_python_files(paths):
        findings.extend(lint_source(file.read_text(encoding="utf-8"),
                                    str(file), select=select))
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: ``python -m repro.lint <paths...>``.

    Exit codes: 0 = clean, 1 = findings, 2 = a path could not be linted.
    """
    import argparse

    from repro.verify.lint import rules as _rules  # noqa: F401

    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=("simulator-aware static lint "
                     f"({rule_codes()[0]}-{rule_codes()[-1]})"),
        epilog="exit codes: 0 clean, 1 findings, 2 unreadable path")
    parser.add_argument("paths", nargs="*",
                        help="python files or directories to lint")
    parser.add_argument("--select", metavar="CODES", default=None,
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print every registered rule and exit")
    args = parser.parse_args(argv)
    if args.list_rules:
        for cls in iter_rules():
            print(f"{cls.code}  {cls.summary}")
        return 0
    if not args.paths:
        parser.error("paths are required unless --list-rules is given")
    select = (None if args.select is None
              else [c.strip() for c in args.select.split(",") if c.strip()])
    try:
        findings = lint_paths(args.paths, select=select)
    except FileNotFoundError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.format())
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0
