"""The simulator-aware lint rules (SIM001-SIM007).

Generic linters cannot know that this codebase's ``acquire``/``release``
are *coroutines*, that the kernel turns yielded ints into cycle delays,
that the event heap owns simulated time, or that a workload ``build``
closure is instantiated once and shared by every core.  Each rule here
encodes one of those simulator-specific hazards; see the individual rule
docstrings, ``docs/race-detection.md`` (SIM005-SIM007 complement the
dynamic race detector), and ``tests/lint_fixtures/`` for worked examples.

Suppress a finding with ``# noqa: SIMxxx`` (or a bare ``# noqa``) on any
physical line of the flagged statement.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.verify.lint.framework import Rule, register_rule

__all__ = ["COROUTINE_METHODS", "CONTEXT_COROUTINES", "KERNEL_OWNED_ATTRS"]

#: method names that are generator coroutines throughout the codebase and
#: therefore must be driven with ``yield from`` (SIM001)
COROUTINE_METHODS = frozenset({"acquire", "release"})

#: ``ThreadContext`` coroutine methods a thread program drives through
#: ``yield from`` (SIM006); receiver must literally be ``ctx`` so that
#: unrelated ``load``/``store`` methods on other objects stay out of scope
CONTEXT_COROUTINES = frozenset({"load", "store", "rmw", "compute", "idle",
                                "spin_until"})

#: ``random``-module functions that are legitimate without a seed
_RANDOM_OK = frozenset({"Random", "SystemRandom", "seed", "getstate",
                        "setstate"})
#: ``numpy.random`` entry points that produce seeded/explicit generators
_NP_RANDOM_OK = frozenset({"default_rng", "Generator", "SeedSequence",
                           "RandomState", "BitGenerator", "PCG64"})

#: attributes owned by the event kernel: writable only in repro/sim/kernel.py
KERNEL_OWNED_ATTRS = frozenset({
    "now", "_heap", "_ready", "_free", "_seq",       # Simulator
    "_events_executed", "_finish_stamp",
    "_signal_registry", "_registry_compact_at", "_retain_values",
    "finished", "_gen", "waiting_on",                # Process
    "_waiters", "fire_count", "last_value",          # Signal
    "on_event",
})

#: container methods that mutate in place (SIM007 shared-state detection)
_MUTATING_METHODS = frozenset({"append", "add", "update", "setdefault",
                               "pop", "popitem", "extend", "insert",
                               "remove", "discard", "clear"})


def _ctx_call(node: ast.AST, methods: FrozenSet[str],
              receiver: Optional[str] = None) -> Optional[str]:
    """Return the method name if ``node`` is ``<recv>.<method>(...)`` with
    ``method`` in ``methods`` (and, when given, ``recv`` the literal name
    ``receiver``); else ``None``."""
    if not (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in methods):
        return None
    if receiver is not None and not (isinstance(node.func.value, ast.Name)
                                     and node.func.value.id == receiver):
        return None
    return node.func.attr


@register_rule
class DiscardedCoroutine(Rule):
    """SIM001 — ``acquire``/``release`` coroutine call discarded.

    ``ctx.acquire(lock)`` / ``device.release(core)`` as a bare statement
    (or a plain ``yield`` of it) creates the generator and throws it away:
    the lock operation silently never runs.  They must be driven with
    ``yield from``.
    """

    code = "SIM001"
    summary = "acquire/release coroutine called without 'yield from'"

    def visit_Expr(self, node: ast.Expr) -> None:
        name = _ctx_call(node.value, COROUTINE_METHODS)
        if name is not None:
            self.add(node,
                     f"coroutine '{name}(...)' called as a bare statement: "
                     "the generator is discarded and the lock operation "
                     "never runs — drive it with 'yield from'")

    def visit_Yield(self, node: ast.Yield) -> None:
        name = (_ctx_call(node.value, COROUTINE_METHODS)
                if node.value else None)
        if name is not None:
            self.add(node,
                     f"'yield {name}(...)' yields the generator object "
                     "itself — use 'yield from' to run the coroutine")


@register_rule
class BoolDelay(Rule):
    """SIM002 — bool yielded as a delay.

    ``yield True`` reaches the kernel as an int subclass and historically
    acted as a 1-cycle delay; the kernel now rejects bools at runtime and
    this rule catches them before a simulation ever runs.
    """

    code = "SIM002"
    summary = "bool yielded where a cycle delay is expected"

    def visit_Yield(self, node: ast.Yield) -> None:
        if (isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, bool)):
            self.add(node,
                     f"'yield {node.value.value}' is a bool, not a cycle "
                     "delay; the kernel rejects it at runtime")


@register_rule
class UnseededRandomness(Rule):
    """SIM003 — unseeded randomness in simulator code.

    Module-level ``random.random()`` / ``numpy.random.<fn>()`` draw from
    a process-global, unseeded stream and silently break bit-reproducible
    simulation.  Use ``random.Random(seed)`` or
    ``numpy.random.default_rng(seed)``.
    """

    code = "SIM003"
    summary = "global unseeded RNG breaks reproducibility"

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        # random.<fn>(...)
        if (isinstance(func.value, ast.Name) and func.value.id == "random"
                and func.attr not in _RANDOM_OK):
            self.add(node,
                     f"'random.{func.attr}()' uses the global unseeded "
                     "RNG and breaks reproducibility — use "
                     "random.Random(seed)")
        # np.random.<fn>(...) / numpy.random.<fn>(...)
        if (isinstance(func.value, ast.Attribute)
                and func.value.attr == "random"
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in ("np", "numpy")
                and func.attr not in _NP_RANDOM_OK):
            self.add(node,
                     f"'{func.value.value.id}.random.{func.attr}()' "
                     "uses numpy's global unseeded RNG — use "
                     "numpy.random.default_rng(seed)")


@register_rule
class KernelStateWrite(Rule):
    """SIM004 — kernel-owned state mutated from model code.

    Assigning ``sim.now``, ``proc.finished``, a signal's waiter list, etc.
    from a component or callback corrupts the event engine; all such state
    may only change inside ``repro/sim/kernel.py`` through the scheduling
    APIs (including ``add_on_event``/``remove_on_event`` for hooks).
    """

    code = "SIM004"
    summary = "kernel-owned attribute assigned outside sim/kernel.py"

    def applies(self) -> bool:
        return not self.ctx.is_kernel

    def _check(self, target: ast.AST, node: ast.AST) -> None:
        if (isinstance(target, ast.Attribute)
                and target.attr in KERNEL_OWNED_ATTRS):
            # allow hooking the public checkpoint: `sim.on_event = fn`
            if target.attr == "on_event":
                return
            self.add(node,
                     f"assignment to kernel-owned attribute "
                     f"'.{target.attr}' outside repro/sim/kernel.py — "
                     "model code must go through the scheduling APIs")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check(target, node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check(node.target, node)


class _TooManyStates(Exception):
    """SIM005 bail-out: the path-state set exploded; skip the function."""


@register_rule
class LeakedLock(Rule):
    """SIM005 — lock acquired but not released on some path.

    A path-sensitive walk over each function tracks the set of locks held
    after ``yield from ctx.acquire(X)`` / ``... ctx.release(X)`` (locks are
    keyed by the textual form of ``X``).  ``if`` branches fork the state,
    loops run zero-or-once, ``return``/``raise`` end a path, and ``finally``
    blocks apply to both normal and exiting paths.  Any path that leaves
    the function still holding a lock is reported at the acquire site —
    in this simulator a leaked lock deadlocks every later acquirer.

    Timed acquires — ``ok = yield from ctx.acquire(X, timeout=...)`` —
    fork the state into held/not-held, and the boolean they bind is
    correlated with later ``if ok:`` / ``if not ok:`` tests so the
    idiomatic shedding pattern (release only under ``if ok:``) analyzes
    cleanly without suppressions.  Reassigning the bound name drops the
    correlation.

    The analysis is intraprocedural and syntactic: helper coroutines that
    acquire on behalf of the caller are out of scope, and a function whose
    branching exceeds 64 simultaneous path states is skipped.
    """

    code = "SIM005"
    summary = "ctx.acquire(...) without a matching release on some path"

    _MAX_STATES = 64

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._analyze(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._analyze(node)

    # -- helpers --------------------------------------------------------
    @staticmethod
    def _lock_op(stmt: ast.stmt
                 ) -> Optional[Tuple[str, str, ast.stmt, Optional[str], bool]]:
        """``(op, lock_key, stmt, bound_var, timed)`` when ``stmt`` is
        ``[x =] yield from ctx.acquire/release(lock[, timeout=...])``."""
        value = None
        var = None
        if isinstance(stmt, ast.Expr):
            value = stmt.value
        elif isinstance(stmt, ast.Assign):
            value = stmt.value
            if (len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)):
                var = stmt.targets[0].id
        if not isinstance(value, ast.YieldFrom):
            return None
        name = _ctx_call(value.value, COROUTINE_METHODS, receiver="ctx")
        if name is None or not value.value.args:
            return None
        call = value.value
        timed = (len(call.args) > 1
                 or any(kw.arg == "timeout" for kw in call.keywords))
        return name, ast.dump(call.args[0]), stmt, var, timed

    @staticmethod
    def _test_var(test: ast.AST) -> Optional[Tuple[str, bool]]:
        """``(name, positive)`` for an ``if <name>:`` / ``if not <name>:``
        test; None for anything more complex."""
        if isinstance(test, ast.Name):
            return test.id, True
        if (isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not)
                and isinstance(test.operand, ast.Name)):
            return test.operand.id, False
        return None

    def _analyze(self, func: ast.AST) -> None:
        # cheap pre-scan: most functions never touch a lock
        if not any(self._lock_op(stmt) for stmt in ast.walk(func)
                   if isinstance(stmt, ast.stmt)):
            return
        self._first_acquire: Dict[str, ast.stmt] = {}
        #: boolean var name -> lock key it reflects (timed-acquire result)
        self._cond_vars: Dict[str, str] = {}
        exits: Set[FrozenSet[str]] = set()
        try:
            through = self._flow(func.body, {frozenset()}, exits)
        except _TooManyStates:
            return
        leaked: Set[str] = set()
        for state in through | exits:
            leaked |= state
        for key in sorted(leaked):
            site = self._first_acquire[key]
            lock_src = ast.unparse(site.value.value.args[0])  # type: ignore[attr-defined]
            self.add(site,
                     f"lock '{lock_src}' acquired here is not released on "
                     "every path out of the function — a leaked lock "
                     "deadlocks every later acquirer")

    def _flow(self, stmts: List[ast.stmt],
              states: Set[FrozenSet[str]],
              exits: Set[FrozenSet[str]]) -> Set[FrozenSet[str]]:
        """Push ``states`` through ``stmts``; paths that leave the function
        land in ``exits``; returns the fall-through states."""
        for stmt in stmts:
            if not states:
                break
            states = self._step(stmt, states, exits)
            if len(states) > self._MAX_STATES:
                raise _TooManyStates
        return states

    def _step(self, stmt: ast.stmt, states: Set[FrozenSet[str]],
              exits: Set[FrozenSet[str]]) -> Set[FrozenSet[str]]:
        op = self._lock_op(stmt)
        if op is not None:
            name, key, site, var, timed = op
            if name == "acquire":
                self._first_acquire.setdefault(key, site)
                if var is not None:
                    # untimed acquires always return True, so the binding
                    # is sound for them too (every state carries the key)
                    self._cond_vars[var] = key
                if timed:
                    # the acquire may have timed out: fork held/not-held
                    return {s | {key} for s in states} | set(states)
                return {s | {key} for s in states}
            return {s - {key} for s in states}
        if isinstance(stmt, ast.Assign):
            # reassigning a correlated boolean invalidates the correlation
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self._cond_vars.pop(target.id, None)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            exits |= states
            return set()
        if isinstance(stmt, ast.If):
            test = self._test_var(stmt.test)
            key = self._cond_vars.get(test[0]) if test is not None else None
            if key is not None:
                held = {s for s in states if key in s}
                free = states - held
                body_states, else_states = ((held, free) if test[1]
                                            else (free, held))
                taken = self._flow(stmt.body, set(body_states), exits)
                skipped = self._flow(stmt.orelse, set(else_states), exits)
                return taken | skipped
            taken = self._flow(stmt.body, set(states), exits)
            skipped = self._flow(stmt.orelse, set(states), exits)
            return taken | skipped
        if isinstance(stmt, (ast.For, ast.While, ast.AsyncFor)):
            # body runs zero or one time — enough to catch an acquire
            # whose release lives outside the loop (or vice versa)
            once = self._flow(stmt.body, set(states), exits)
            return self._flow(stmt.orelse, states | once, exits)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._flow(stmt.body, states, exits)
        if isinstance(stmt, ast.Try):
            inner_exits: Set[FrozenSet[str]] = set()
            normal = self._flow(stmt.body, set(states), inner_exits)
            for handler in stmt.handlers:
                # an exception may land after any prefix of the body; the
                # pre-body state is the sound entry approximation
                normal |= self._flow(handler.body, set(states), inner_exits)
            normal = self._flow(stmt.orelse, normal, inner_exits)
            if stmt.finalbody:
                # finally applies to fall-through AND exiting paths
                normal = self._flow(stmt.finalbody, normal, exits)
                exits |= self._flow(stmt.finalbody, inner_exits, exits)
            else:
                exits |= inner_exits
            return normal
        # nested defs get their own independent analysis via the dispatcher
        return states


@register_rule
class DiscardedContextOp(Rule):
    """SIM006 — a ``ThreadContext`` operation's effect is thrown away.

    Two shapes: a bare ``ctx.load(...)`` statement (or a plain ``yield``
    of it) discards the *coroutine*, so the memory operation never runs
    and costs zero cycles; and ``yield from ctx.load(...)`` as a bare
    statement runs the load but discards the *value*, which is almost
    always a missing ``x = `` — annotate deliberate cache-touch reads
    with ``# noqa: SIM006``.
    """

    code = "SIM006"
    summary = "ctx memory-op coroutine or loaded value discarded"

    def visit_Expr(self, node: ast.Expr) -> None:
        value = node.value
        name = _ctx_call(value, CONTEXT_COROUTINES, receiver="ctx")
        if name is not None:
            self.add(node,
                     f"'ctx.{name}(...)' as a bare statement discards the "
                     "coroutine: the operation never runs — drive it with "
                     "'yield from'")
            return
        if isinstance(value, ast.Yield) and value.value is not None:
            name = _ctx_call(value.value, CONTEXT_COROUTINES, receiver="ctx")
            if name is not None:
                self.add(node,
                         f"'yield ctx.{name}(...)' yields the generator "
                         "object itself — use 'yield from'")
                return
        if isinstance(value, ast.YieldFrom):
            name = _ctx_call(value.value, frozenset({"load"}),
                             receiver="ctx")
            if name is not None:
                self.add(node,
                         "loaded value is discarded — assign it "
                         "('x = yield from ctx.load(...)'), or mark a "
                         "deliberate cache touch with '# noqa: SIM006'")


@register_rule
class SharedWorkloadState(Rule):
    """SIM007 — Python-level shared mutable state in a workload.

    Applies only to files under a ``workloads/`` directory.  A workload's
    per-core state must live in simulated memory (where the race detector
    and coherence model see it) or be allocated per ``make_program`` call;
    two shapes silently share one Python object across all cores instead:

    - a mutable default argument (``def build(..., stats={})``) — one
      dict for every instantiation;
    - a module-level mutable container mutated from inside a function —
      one object for every machine in the process, which also breaks
      repeated-run determinism.
    """

    code = "SIM007"
    summary = "shared mutable Python state in a workload module"

    _MUTABLE_LITERALS = (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)

    def applies(self) -> bool:
        return self.ctx.is_workload

    @classmethod
    def _is_mutable_ctor(cls, node: ast.AST) -> bool:
        if isinstance(node, cls._MUTABLE_LITERALS):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("dict", "list", "set"))

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            if self._is_mutable_ctor(default):
                self.add(default,
                         f"mutable default argument in '{node.name}' is "
                         "one shared object across every call — default "
                         "to None and allocate inside, or put the state "
                         "in simulated memory")

    def visit_Module(self, node: ast.Module) -> None:
        shared: Dict[str, ast.stmt] = {}
        for stmt in node.body:
            if isinstance(stmt, ast.Assign) and self._is_mutable_ctor(
                    stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        shared[target.id] = stmt
            elif (isinstance(stmt, ast.AnnAssign) and stmt.value is not None
                    and self._is_mutable_ctor(stmt.value)
                    and isinstance(stmt.target, ast.Name)):
                shared[stmt.target.id] = stmt
        if not shared:
            return
        for func in ast.walk(node):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for sub in ast.walk(func):
                name = self._mutated_name(sub)
                if name is not None and name in shared:
                    self.add(sub,
                             f"module-level mutable '{name}' is mutated "
                             f"inside '{func.name}' — one Python object "
                             "shared by every core and every machine; "
                             "allocate per-core state in build() or use "
                             "simulated memory")

    @staticmethod
    def _mutated_name(node: ast.AST) -> Optional[str]:
        """Name of a module-level container this node mutates, if any."""
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if (isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)):
                    return target.value.id
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATING_METHODS
                and isinstance(node.func.value, ast.Name)):
            return node.func.value.id
        return None
