"""Runtime invariant sanitizer for full-scale simulations.

Where :mod:`repro.verify.modelcheck` exhausts small configurations, the
sanitizer rides along full 32-core paper workloads: it hooks the kernel's
``Simulator.on_event`` checkpoint and validates, after every executed
event:

- **monotonic time** — ``sim.now`` never decreases;
- **single holder per device** — a GLock's holder is a valid core id and
  is never simultaneously registered as a waiter on the same device;
- **bounded waiting** — no core waits on a device longer than
  ``starvation_bound`` cycles (catches lost TOKEN/REL signals long before
  the run's ``max_events`` valve trips);
- **token-network sanity** — a device's primary manager never ends up
  token-less while the whole network is idle.

At drain (:meth:`at_drain`, called by ``Machine.run`` once all thread
programs finished) it additionally checks that no process is left
suspended on a :class:`~repro.sim.kernel.Signal` that can no longer fire
("orphaned waiter") and that every device's token parked back at its
primary manager.

Enable it with ``repro-sim run --sanitize ...``, ``pytest --sanitize``,
or directly::

    machine = Machine(CMPConfig.baseline(32))
    InvariantSanitizer(machine).attach()
    machine.run(programs)   # raises InvariantViolation on any breach
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.kernel import (PROCESS_TYPES, Process, SimulationError,
                              Simulator)

__all__ = ["InvariantSanitizer", "InvariantViolation", "attach_sanitizer"]


class InvariantViolation(SimulationError):
    """A runtime invariant failed during a sanitized simulation."""


class InvariantSanitizer:
    """Per-event invariant checks over a :class:`~repro.machine.Machine`.

    Args:
        machine: the machine to watch (its GLock devices and simulator).
        starvation_bound: max cycles a core may wait for a TOKEN before the
            sanitizer declares it starved.  The default is generous enough
            for every paper workload at 32 cores; tighten it to hunt
            latency regressions.
        check_interval: run the per-event checks every N executed events
            (1 = every event).  Starvation accounting stays exact at any
            interval because request start times are read from the device.
    """

    def __init__(self, machine, *, starvation_bound: int = 1_000_000,
                 check_interval: int = 1) -> None:
        if starvation_bound < 1:
            raise ValueError("starvation_bound must be positive")
        if check_interval < 1:
            raise ValueError("check_interval must be positive")
        self.machine = machine
        self.starvation_bound = starvation_bound
        self.check_interval = check_interval
        self.checks_run = 0
        self.events_seen = 0
        self._last_now = 0
        # (device lock_id, core) -> cycle the request was first observed
        self._wait_since: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #
    def attach(self) -> "InvariantSanitizer":
        """Hook the machine's simulator; returns self for chaining.

        Joins the kernel's composable ``on_event`` chain
        (:meth:`~repro.sim.kernel.Simulator.add_on_event`), so other
        observers can coexist; a second *sanitizer* on the same machine is
        still refused.
        """
        sim: Simulator = self.machine.sim
        if self.machine.sanitizer is not None:
            raise RuntimeError("machine already has a sanitizer attached")
        sim.enable_signal_registry()
        sim.add_on_event(self._on_event)
        self.machine.sanitizer = self
        return self

    def detach(self) -> None:
        """Remove the hook (the signal registry stays enabled)."""
        self.machine.sim.remove_on_event(self._on_event)
        if self.machine.sanitizer is self:
            self.machine.sanitizer = None

    # ------------------------------------------------------------------ #
    # per-event checkpoint
    # ------------------------------------------------------------------ #
    def _on_event(self, sim: Simulator) -> None:
        self.events_seen += 1
        if sim.now < self._last_now:
            raise InvariantViolation(
                f"time ran backwards: {self._last_now} -> {sim.now}")
        self._last_now = sim.now
        if self.events_seen % self.check_interval:
            return
        self.checks_run += 1
        n_cores = self.machine.config.n_cores
        for device in self.machine.glocks.devices:
            holder = device.holder
            waiters = device.network._token_callbacks
            if holder is not None:
                if not 0 <= holder < n_cores:
                    raise InvariantViolation(
                        f"GLock {device.lock_id}: holder {holder} is not a "
                        f"valid core id (0..{n_cores - 1})")
                if holder in waiters:
                    raise InvariantViolation(
                        f"GLock {device.lock_id}: core {holder} holds the "
                        "lock and is simultaneously queued as a waiter")
            self._check_starvation(device, waiters, sim.now)

    def _check_starvation(self, device, waiters, now: int) -> None:
        lock_id = device.lock_id
        for core in waiters:
            since = self._wait_since.setdefault((lock_id, core), now)
            if now - since > self.starvation_bound:
                raise InvariantViolation(
                    f"GLock {lock_id}: core {core} has waited "
                    f"{now - since} cycles for a TOKEN (bound "
                    f"{self.starvation_bound}) — lost signal or starvation")
        # forget cores that are no longer waiting on this device
        stale = [key for key in self._wait_since
                 if key[0] == lock_id and key[1] not in waiters]
        for key in stale:
            del self._wait_since[key]

    # ------------------------------------------------------------------ #
    # drain checkpoint
    # ------------------------------------------------------------------ #
    def at_drain(self, procs: Optional[Iterable[Process]] = None) -> None:
        """Validate end-of-phase invariants once the parallel phase ended."""
        sim: Simulator = self.machine.sim
        # A suspended process is provably orphaned only once the event queue
        # is empty: nothing can ever fire its signal.  When events remain,
        # the parallel phase ended mid-flight and abandoned helpers
        # (directory transactions, pollers) are expected — see
        # run_until_processes_finish.  Plain callback waiters are never
        # orphans for the same reason.
        if sim.pending_events == 0:
            orphans: List[str] = []
            for sig in sim.live_signals():
                for fn in sig._waiters:
                    # pure-backend waiters are bound ``Process._step``
                    # methods; compiled-backend waiters are the Process
                    # objects themselves
                    owner = getattr(fn, "__self__", fn)
                    if isinstance(owner, PROCESS_TYPES) and not owner.finished:
                        orphans.append(
                            f"{owner.name} on {sig.name or '<unnamed>'}")
            if orphans:
                raise InvariantViolation(
                    "orphaned Signal waiters at drain (a process is "
                    "suspended on a signal that will never fire): "
                    f"{sorted(orphans)}")
        if procs is not None:
            stuck = [p.name for p in procs if not p.finished]
            if stuck:
                raise InvariantViolation(
                    f"processes unfinished at drain: {stuck}")
        for device in self.machine.glocks.devices:
            if device.holder is not None:
                raise InvariantViolation(
                    f"GLock {device.lock_id}: still held by core "
                    f"{device.holder} after the parallel phase")
            if device.network._token_callbacks:
                raise InvariantViolation(
                    f"GLock {device.lock_id}: cores "
                    f"{sorted(device.network._token_callbacks)} still wait "
                    "for a TOKEN after the parallel phase")


def attach_sanitizer(machine, **kwargs) -> InvariantSanitizer:
    """Convenience: ``InvariantSanitizer(machine, **kwargs).attach()``."""
    return InvariantSanitizer(machine, **kwargs).attach()
