"""Simulator-aware static lint (AST-based, zero dependencies).

Generic linters cannot know that this codebase's ``acquire``/``release``
are *coroutines*, that the kernel turns yielded ints into cycle delays, or
that the event heap owns simulated time.  This pass encodes those
simulator-specific hazards:

``SIM001`` — coroutine call discarded
    ``ctx.acquire(lock)`` / ``device.release(core)`` as a bare statement
    (or a plain ``yield`` of it) creates the generator and throws it away:
    the lock operation silently never runs.  They must be driven with
    ``yield from``.

``SIM002`` — bool yielded as a delay
    ``yield True`` reaches the kernel as an int subclass and historically
    acted as a 1-cycle delay; the kernel now rejects bools at runtime and
    this rule catches them before a simulation ever runs.

``SIM003`` — unseeded randomness in simulator code
    Module-level ``random.random()`` / ``numpy.random.<fn>()`` draw from
    a process-global, unseeded stream and silently break bit-reproducible
    simulation.  Use ``random.Random(seed)`` or
    ``numpy.random.default_rng(seed)``.

``SIM004`` — kernel-owned state mutated from model code
    Assigning ``sim.now``, ``proc.finished``, a signal's waiter list, etc.
    from a component or callback corrupts the event engine; all such state
    may only change inside ``repro/sim/kernel.py`` through the scheduling
    APIs.

A finding can be suppressed per line with ``# noqa: SIM001`` (or a bare
``# noqa``) — e.g. for a plain (non-coroutine) method that happens to be
called ``release``.

Run as ``python -m repro.lint <paths>`` or ``repro-sim lint <paths>``;
exits non-zero when findings exist.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

__all__ = ["LintFinding", "lint_source", "lint_paths", "main"]

#: method names that are generator coroutines throughout the codebase and
#: therefore must be driven with ``yield from`` (SIM001)
COROUTINE_METHODS = frozenset({"acquire", "release"})

#: ``random``-module functions that are legitimate without a seed
_RANDOM_OK = frozenset({"Random", "SystemRandom", "seed", "getstate", "setstate"})
#: ``numpy.random`` entry points that produce seeded/explicit generators
_NP_RANDOM_OK = frozenset({"default_rng", "Generator", "SeedSequence",
                           "RandomState", "BitGenerator", "PCG64"})

#: attributes owned by the event kernel: writable only in repro/sim/kernel.py
KERNEL_OWNED_ATTRS = frozenset({
    "now", "_heap", "_ready", "_free", "_seq",       # Simulator
    "_events_executed", "_finish_stamp",
    "_signal_registry", "_registry_compact_at", "_retain_values",
    "finished", "_gen", "waiting_on",                # Process
    "_waiters", "fire_count", "last_value",          # Signal
    "on_event",
})

#: file whose job is to mutate that state
KERNEL_FILE_SUFFIX = ("sim/kernel.py", "sim\\kernel.py")


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, is_kernel: bool) -> None:
        self.path = path
        self.is_kernel = is_kernel
        self.findings: List[LintFinding] = []

    def _add(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(LintFinding(
            path=self.path, line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0), code=code, message=message))

    # ------------------------------------------------------------------ #
    # SIM001: coroutine call discarded
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coroutine_call(node: ast.AST) -> Optional[str]:
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in COROUTINE_METHODS):
            return node.func.attr
        return None

    def visit_Expr(self, node: ast.Expr) -> None:
        name = self._coroutine_call(node.value)
        if name is not None:
            self._add(node, "SIM001",
                      f"coroutine '{name}(...)' called as a bare statement: "
                      "the generator is discarded and the lock operation "
                      "never runs — drive it with 'yield from'")
        self.generic_visit(node)

    def visit_Yield(self, node: ast.Yield) -> None:
        # SIM001: `yield x.acquire()` suspends on a generator object, which
        # the kernel rejects; the author meant `yield from`
        name = self._coroutine_call(node.value) if node.value else None
        if name is not None:
            self._add(node, "SIM001",
                      f"'yield {name}(...)' yields the generator object "
                      "itself — use 'yield from' to run the coroutine")
        # SIM002: bool delay
        if isinstance(node.value, ast.Constant) and isinstance(node.value.value, bool):
            self._add(node, "SIM002",
                      f"'yield {node.value.value}' is a bool, not a cycle "
                      "delay; the kernel rejects it at runtime")
        self.generic_visit(node)

    # ------------------------------------------------------------------ #
    # SIM003: unseeded randomness
    # ------------------------------------------------------------------ #
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            # random.<fn>(...)
            if (isinstance(func.value, ast.Name) and func.value.id == "random"
                    and func.attr not in _RANDOM_OK):
                self._add(node, "SIM003",
                          f"'random.{func.attr}()' uses the global unseeded "
                          "RNG and breaks reproducibility — use "
                          "random.Random(seed)")
            # np.random.<fn>(...) / numpy.random.<fn>(...)
            if (isinstance(func.value, ast.Attribute)
                    and func.value.attr == "random"
                    and isinstance(func.value.value, ast.Name)
                    and func.value.value.id in ("np", "numpy")
                    and func.attr not in _NP_RANDOM_OK):
                self._add(node, "SIM003",
                          f"'{func.value.value.id}.random.{func.attr}()' "
                          "uses numpy's global unseeded RNG — use "
                          "numpy.random.default_rng(seed)")
        self.generic_visit(node)

    # ------------------------------------------------------------------ #
    # SIM004: kernel-owned state mutated outside the kernel
    # ------------------------------------------------------------------ #
    def _check_kernel_write(self, target: ast.AST, node: ast.AST) -> None:
        if self.is_kernel:
            return
        if isinstance(target, ast.Attribute) and target.attr in KERNEL_OWNED_ATTRS:
            # allow hooking the public checkpoint: `sim.on_event = fn`
            if target.attr == "on_event":
                return
            self._add(node, "SIM004",
                      f"assignment to kernel-owned attribute "
                      f"'.{target.attr}' outside repro/sim/kernel.py — "
                      "model code must go through the scheduling APIs")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_kernel_write(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_kernel_write(node.target, node)
        self.generic_visit(node)


def _suppressed(finding: LintFinding, lines: List[str]) -> bool:
    """True if the finding's source line carries a matching ``# noqa``."""
    if not 1 <= finding.line <= len(lines):
        return False
    line = lines[finding.line - 1]
    marker = line.find("# noqa")
    if marker < 0:
        return False
    spec = line[marker + len("# noqa"):].strip()
    if not spec.startswith(":"):
        return True  # bare `# noqa` silences everything on the line
    # accept "SIM001", "SIM001, SIM004", "SIM001 — rationale text"
    codes = {part.strip().split()[0]
             for part in spec[1:].split(",") if part.strip()}
    return finding.code in codes


def lint_source(source: str, path: str = "<string>") -> List[LintFinding]:
    """Lint one module's source text; returns findings (empty = clean)."""
    normalized = path.replace("\\", "/")
    is_kernel = normalized.endswith("sim/kernel.py")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        return [LintFinding(path=path, line=err.lineno or 0,
                            col=err.offset or 0, code="SIM000",
                            message=f"syntax error: {err.msg}")]
    visitor = _Visitor(path, is_kernel)
    visitor.visit(tree)
    lines = source.splitlines()
    findings = [f for f in visitor.findings if not _suppressed(f, lines)]
    return sorted(findings, key=lambda f: (f.line, f.col, f.code))


def _iter_python_files(paths: Sequence[str]) -> Iterable[Path]:
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p
        else:
            raise FileNotFoundError(f"not a python file or directory: {raw}")


def lint_paths(paths: Sequence[str]) -> List[LintFinding]:
    """Lint every ``*.py`` under ``paths`` (files or directories)."""
    findings: List[LintFinding] = []
    for file in _iter_python_files(paths):
        findings.extend(lint_source(file.read_text(encoding="utf-8"), str(file)))
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: ``python -m repro.lint <paths...>``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="simulator-aware static lint (SIM001-SIM004)")
    parser.add_argument("paths", nargs="+",
                        help="python files or directories to lint")
    args = parser.parse_args(argv)
    try:
        findings = lint_paths(args.paths)
    except FileNotFoundError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.format())
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via repro.lint
    sys.exit(main())
