"""The fault model: a deterministic, serializable fault schedule.

A :class:`FaultPlan` is pure data.  Probabilistic faults draw from one
``random.Random(seed)`` consumed in simulator event order, so a plan
replays identically across processes (serial and pool workers agree
byte-for-byte); explicit faults fire at absolute ``(cycle, component)``
points.  Because the plan round-trips through JSON it participates in
:meth:`repro.runner.RunSpec.digest` — fault sweeps get result caching
and parallel execution for free, while fault-free specs omit the plan
entirely and keep their pre-existing cache digests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Sequence, Tuple

__all__ = ["FaultPlan"]

Points = Tuple[Tuple[int, str], ...]


def _as_points(raw: Sequence) -> Points:
    """Normalize ``[(cycle, name), ...]`` into a sorted tuple of tuples."""
    return tuple(sorted((int(cycle), str(name)) for cycle, name in raw))


@dataclass(frozen=True)
class FaultPlan:
    """Everything the injector needs to break one machine's G-lines.

    Rates are per-signal probabilities evaluated at each
    :meth:`~repro.core.gline.GLine.transmit`; explicit points name a
    component (a G-line or a token manager, by its diagnostic name, e.g.
    ``"S0.1->child2"`` or ``"R0"``) and an absolute cycle.

    Recovery knobs ride along because they only matter under faults:
    ``watchdog_budget`` bounds the acquire-side spin before a timeout is
    reported, and ``trip_threshold`` is the number of token
    regenerations a device attempts before declaring itself unhealthy
    and degrading to the software fallback (``fallback_kind``).
    """

    seed: int = 0
    #: per-signal probability that a 1-bit pulse is silently lost
    drop_rate: float = 0.0
    #: per-signal probability of arriving ``1..delay_cycles`` cycles late
    delay_rate: float = 0.0
    delay_cycles: int = 8
    #: per-signal probability that the transmitting G-line goes stuck-at
    stuck_rate: float = 0.0
    #: per-signal probability that the receiving manager dies permanently
    death_rate: float = 0.0
    #: explicit stuck-at points: (cycle, G-line name)
    stuck_lines: Points = ()
    #: explicit controller deaths: (cycle, manager name)
    dead_managers: Points = ()
    watchdog_budget: int = 20_000
    trip_threshold: int = 10
    fallback_kind: str = "tatas"

    def __post_init__(self) -> None:
        for name in ("drop_rate", "delay_rate", "stuck_rate", "death_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.delay_cycles < 1:
            raise ValueError("delay_cycles must be at least one cycle")
        if self.watchdog_budget < 1:
            raise ValueError("watchdog_budget must be positive")
        if self.trip_threshold < 0:
            raise ValueError("trip_threshold must be non-negative")
        if self.fallback_kind not in ("tatas", "mcs"):
            raise ValueError(
                f"fallback_kind must be 'tatas' or 'mcs', "
                f"got {self.fallback_kind!r}")
        object.__setattr__(self, "stuck_lines", _as_points(self.stuck_lines))
        object.__setattr__(self, "dead_managers",
                           _as_points(self.dead_managers))

    @classmethod
    def none(cls) -> "FaultPlan":
        """The null plan: nothing is ever injected.

        A machine built with this plan is byte-identical to one built
        with no plan at all — :attr:`enabled` is False, so no injector
        is created and the plan is omitted from spec serialization.
        """
        return cls()

    @property
    def enabled(self) -> bool:
        """True when the plan can actually inject something."""
        return bool(self.drop_rate or self.delay_rate or self.stuck_rate
                    or self.death_rate or self.stuck_lines
                    or self.dead_managers)

    def with_seed(self, seed: int) -> "FaultPlan":
        """Copy of this plan with a different RNG seed (sweep helper)."""
        return replace(self, seed=seed)

    # ------------------------------------------------------------------ #
    # serialization (spec hashing)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Deterministic plain-dict form (stable key order, JSON-safe)."""
        return {
            "seed": self.seed,
            "drop_rate": self.drop_rate,
            "delay_rate": self.delay_rate,
            "delay_cycles": self.delay_cycles,
            "stuck_rate": self.stuck_rate,
            "death_rate": self.death_rate,
            "stuck_lines": [[c, n] for c, n in self.stuck_lines],
            "dead_managers": [[c, n] for c, n in self.dead_managers],
            "watchdog_budget": self.watchdog_budget,
            "trip_threshold": self.trip_threshold,
            "fallback_kind": self.fallback_kind,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(
            seed=data["seed"],
            drop_rate=data["drop_rate"],
            delay_rate=data["delay_rate"],
            delay_cycles=data["delay_cycles"],
            stuck_rate=data["stuck_rate"],
            death_rate=data["death_rate"],
            stuck_lines=_as_points(data["stuck_lines"]),
            dead_managers=_as_points(data["dead_managers"]),
            watchdog_budget=data["watchdog_budget"],
            trip_threshold=data["trip_threshold"],
            fallback_kind=data["fallback_kind"],
        )

    def describe(self) -> str:
        """Short human-readable label (experiment tables, logs)."""
        parts = [f"seed={self.seed}"]
        for name in ("drop_rate", "delay_rate", "stuck_rate", "death_rate"):
            rate = getattr(self, name)
            if rate:
                parts.append(f"{name.replace('_rate', '')}={rate:g}")
        if self.stuck_lines:
            parts.append(f"stuck={len(self.stuck_lines)}pt")
        if self.dead_managers:
            parts.append(f"dead={len(self.dead_managers)}pt")
        return " ".join(parts) if self.enabled else "none"
