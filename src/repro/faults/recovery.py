"""Detection and recovery: watchdog, token regeneration, health trip.

One :class:`RecoveryController` guards one :class:`~repro.core.glock.
GLockDevice`.  The protocol (fully specified in ``docs/fault-model.md``):

1. **Detect** — every ``GL_Lock`` arms a timeout watchdog; if the TOKEN
   has not arrived after ``watchdog_budget`` cycles the core reports a
   timeout (and keeps spinning — detection never aborts the wait).
2. **Quiesce** — the controller bumps the network's recovery epoch
   (voiding every in-flight REQ/REL/TOKEN pulse), then waits until no
   core holds the device and a settle window of more than one G-line
   flight time has passed.  If a holder appears during the window, an
   in-flight grant landed: the network is making progress, so the
   recovery attempt aborts without touching anything.
3. **Regenerate** — with the network provably token-less, every
   manager's FSM is reset, the primary manager R is re-seeded with a
   fresh token, and a REQ is re-raised for every core still waiting.
4. **Trip** — after ``trip_threshold`` regenerations the device declares
   itself permanently unhealthy: waiting cores are aborted (their
   acquire returns ``False``) and, together with all future acquirers,
   they fall back to the lock's embedded software path
   (:class:`~repro.locks.glock_api.GLockHandle` /
   :class:`~repro.core.virtual.VirtualGLock`).

Mutual exclusion is never violated: a token is only ever regenerated
while no core holds the device and the epoch bump guarantees no stale
grant can still be delivered.  The runtime invariant sanitizer
(:mod:`repro.verify.invariants`) asserts this under every chaos test.
"""

from __future__ import annotations

from repro.faults.injector import NetworkFaultPort
from repro.faults.plan import FaultPlan
from repro.sim.kernel import Signal

__all__ = ["RecoveryController"]


class RecoveryController:
    """Watchdog + token-regeneration + health state for one GLock device."""

    def __init__(self, device, port: NetworkFaultPort,
                 plan: FaultPlan) -> None:
        self.device = device
        self.port = port
        self.plan = plan
        self.sim = device.sim
        self.counters = device.counters
        #: completed token regenerations (trips at ``trip_threshold``)
        self.recoveries = 0
        self._recovering = False
        latency = device.network.config.gline.gline_latency
        # strictly longer than any single G-line flight, so by the end of
        # the window every pre-bump zero-delay cascade has resolved
        self._settle = 2 * latency + 2
        self._poll = max(4 * latency, 8)

    # ------------------------------------------------------------------ #
    # detection (armed by GLockDevice.acquire)
    # ------------------------------------------------------------------ #
    def arm_watchdog(self, core_id: int, token: Signal) -> None:
        """Bound the acquire-side spin: report if TOKEN misses the budget."""
        self.sim.schedule(self.plan.watchdog_budget, self._check,
                          core_id, token, token.fire_count)

    def _check(self, core_id: int, token: Signal, baseline: int) -> None:
        if token.fire_count != baseline or not self.device.healthy:
            return  # granted (or aborted by a trip) — watchdog retires
        self.counters.add("faults.timeouts")
        if self.sim.tracer is not None:
            self.sim.tracer.record(self.sim.now, "fault",
                                   f"glock{self.device.lock_id}",
                                   f"core {core_id} TOKEN timeout "
                                   f"({self.plan.watchdog_budget} cycles)")
        self._begin_recovery()
        self.sim.schedule(self.plan.watchdog_budget, self._check,
                          core_id, token, baseline)

    # ------------------------------------------------------------------ #
    # quiesce handshake
    # ------------------------------------------------------------------ #
    def _begin_recovery(self) -> None:
        if self._recovering or not self.device.healthy:
            return
        self._recovering = True
        # void every in-flight pulse: nothing sent before this instant can
        # be delivered, so no stale TOKEN can grant after the reset below
        self.port.epoch += 1
        self._quiesce()

    def _quiesce(self) -> None:
        if self.device.holder is not None:
            self.sim.schedule(self._poll, self._quiesce)
            return
        self.sim.schedule(self._settle, self._after_settle)

    def _after_settle(self) -> None:
        if self.device.holder is not None:
            # a pre-bump grant landed during the window: the network made
            # progress on its own, so this was a false alarm
            self.counters.add("faults.recoveries_aborted")
            self._recovering = False
            return
        if self.recoveries >= self.plan.trip_threshold:
            self._trip()
            return
        # second bump: void pulses transmitted *during* the settle window
        # (e.g. a grant chain racing the check at this very cycle) — only
        # the re-REQs raised by the reset below carry the new epoch
        self.port.epoch += 1
        self.recoveries += 1
        self.counters.add("faults.recoveries")
        if self.sim.tracer is not None:
            self.sim.tracer.record(self.sim.now, "fault",
                                   f"glock{self.device.lock_id}",
                                   f"token regenerated (recovery "
                                   f"#{self.recoveries})")
        self.device.network.reset_for_recovery()
        self._recovering = False

    # ------------------------------------------------------------------ #
    # graceful degradation
    # ------------------------------------------------------------------ #
    def _trip(self) -> None:
        self.counters.add("faults.trips")
        if self.sim.tracer is not None:
            self.sim.tracer.record(self.sim.now, "fault",
                                   f"glock{self.device.lock_id}",
                                   "device tripped -> software fallback")
        self.device.healthy = False
        self._recovering = False
        self.port.epoch += 1  # nothing in flight may land after the trip
        network = self.device.network
        waiters = sorted(network._token_callbacks.items())
        network._token_callbacks.clear()
        for _core, callback in waiters:
            callback(False)  # acquire observes the abort and falls back
