"""Runtime fault injection: the machine-level injector and per-network ports.

One :class:`FaultInjector` exists per fault-armed
:class:`~repro.machine.Machine`; it owns the plan's seeded RNG (drawn in
simulator event order, so injection is a deterministic function of the
plan) and hands each :class:`~repro.core.network.GLineNetwork` a
:class:`NetworkFaultPort`.  The port is the single choke point every
G-line signal of that network passes through:

- **transient drop** — the pulse is simply never delivered;
- **stuck-at line** — the transmitting G-line joins a permanent dead
  set; every later pulse on it is eaten;
- **delayed delivery** — the pulse arrives 1..``delay_cycles`` late;
- **controller death** — the receiving token manager is marked dead:
  it never reacts to another signal and never initiates one.

The port also carries the network's recovery *epoch*: every scheduled
delivery is stamped with the epoch at transmit time, and the
:class:`~repro.faults.recovery.RecoveryController` bumps the epoch
before regenerating a token, voiding everything still in flight — the
mechanism that makes token regeneration unable to violate mutual
exclusion (see ``docs/fault-model.md``).
"""

from __future__ import annotations

import random
from typing import Any, Callable, List, Tuple

from repro.faults.plan import FaultPlan
from repro.sim.kernel import Simulator
from repro.sim.stats import CounterSet

__all__ = ["FaultInjector", "NetworkFaultPort"]


class FaultInjector:
    """Machine-wide fault state: one RNG, one port per G-line network."""

    def __init__(self, sim: Simulator, counters: CounterSet,
                 plan: FaultPlan) -> None:
        self.sim = sim
        self.counters = counters
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.ports: List[NetworkFaultPort] = []

    def port_for(self, network) -> "NetworkFaultPort":
        """Create (and arm) the fault port for one G-line network."""
        port = NetworkFaultPort(self, network)
        self.ports.append(port)
        return port


class NetworkFaultPort:
    """Injection point and recovery epoch for one network's G-lines."""

    def __init__(self, injector: FaultInjector, network) -> None:
        self.injector = injector
        self.sim = injector.sim
        self.counters = injector.counters
        self.plan = injector.plan
        self.rng = injector.rng
        self.lock_id = network.lock_id
        #: bumped by the recovery controller; stale deliveries are voided
        self.epoch = 0
        #: names of G-lines that have gone permanently stuck-at
        self.stuck: set = set()
        #: every TokenManager of this network (kill targets)
        self.managers: List[Any] = []
        for cycle, name in self.plan.stuck_lines:
            self.sim.schedule_at(cycle, self._stick, name)
        for cycle, name in self.plan.dead_managers:
            self.sim.schedule_at(cycle, self._kill, name)

    # ------------------------------------------------------------------ #
    # registration (network construction)
    # ------------------------------------------------------------------ #
    def register_manager(self, manager) -> None:
        self.managers.append(manager)

    # ------------------------------------------------------------------ #
    # explicit (cycle, component) faults
    # ------------------------------------------------------------------ #
    def _stick(self, name: str) -> None:
        if name not in self.stuck:
            self.stuck.add(name)
            self.counters.add("faults.injected.stuck")
            self._trace("stuck", name)

    def _kill(self, name: str) -> None:
        for manager in self.managers:
            if manager.name == name and not manager.dead:
                manager.dead = True
                self.counters.add("faults.injected.controller_death")
                self._trace("controller-death", name)

    # ------------------------------------------------------------------ #
    # the transmit choke point (called by GLine.transmit)
    # ------------------------------------------------------------------ #
    def transmit(self, line, receiver: Callable[..., None],
                 args: Tuple[Any, ...]) -> None:
        """Deliver (or corrupt) one 1-bit pulse from ``line``."""
        plan = self.plan
        if line.name in self.stuck:
            self.counters.add("faults.dropped.stuck")
            self._trace("eaten by stuck line", line.name)
            return
        if plan.stuck_rate and self.rng.random() < plan.stuck_rate:
            self.stuck.add(line.name)
            self.counters.add("faults.injected.stuck")
            self.counters.add("faults.dropped.stuck")
            self._trace("line goes stuck-at", line.name)
            return
        if plan.drop_rate and self.rng.random() < plan.drop_rate:
            self.counters.add("faults.injected.drop")
            self._trace("signal dropped", line.name)
            return
        delay = line.latency
        if plan.delay_rate and self.rng.random() < plan.delay_rate:
            extra = self.rng.randint(1, plan.delay_cycles)
            delay += extra
            self.counters.add("faults.injected.delay")
            self._trace(f"signal delayed +{extra}", line.name)
        if plan.death_rate and self.rng.random() < plan.death_rate:
            target = getattr(receiver, "__self__", None)
            if target is not None and getattr(target, "dead", None) is False:
                target.dead = True
                self.counters.add("faults.injected.controller_death")
                self._trace("controller-death", target.name)
        self.sim.schedule(delay, self._deliver, self.epoch, receiver, args)

    def _deliver(self, epoch: int, receiver: Callable[..., None],
                 args: Tuple[Any, ...]) -> None:
        if epoch != self.epoch:
            # the recovery controller reset the network while this pulse
            # was in flight; delivering it now could double-grant a token
            self.counters.add("faults.recovery.signals_voided")
            return
        target = getattr(receiver, "__self__", None)
        if target is not None and getattr(target, "dead", False):
            self.counters.add("faults.dropped.dead_controller")
            return
        receiver(*args)

    def _trace(self, what: str, component: str) -> None:
        if self.sim.tracer is not None:
            self.sim.tracer.record(self.sim.now, "fault",
                                   f"glock{self.lock_id}",
                                   f"{what} [{component}]")
