"""Fault injection and recovery for the G-line lock hardware.

The paper assumes the dedicated G-line network is perfect wire; this
package lets a simulation break that assumption deterministically and
asks the question the paper cannot: what happens to a GLocks CMP when
the hardware misbehaves?

Three layers (see ``docs/fault-model.md``):

- :class:`FaultPlan` — the fault *model*: a frozen, seed-driven value
  object describing transient signal drops, stuck-at G-lines, delayed
  TOKEN delivery and permanent controller death.  It serializes into
  :class:`~repro.runner.MachineSpec`, so the experiment engine's content
  hashing, disk cache and process-pool fan-out work unchanged.
- :class:`FaultInjector` / :class:`NetworkFaultPort` — the runtime
  injection points, consulted by every :meth:`repro.core.gline.GLine.
  transmit` of a fault-armed machine (fault-free machines never touch
  this package: the hot path is byte-identical to the seed simulator).
- :class:`RecoveryController` — detection and recovery: an acquire-side
  timeout watchdog, a quiesce-then-regenerate token protocol at the
  device, and a per-device health trip that degrades the lock to its
  embedded software fallback (see ``repro.locks.glock_api`` and
  ``repro.core.virtual``).
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.faults.injector import FaultInjector, NetworkFaultPort
from repro.faults.plan import FaultPlan
from repro.faults.recovery import RecoveryController

__all__ = ["FaultPlan", "FaultInjector", "NetworkFaultPort",
           "RecoveryController", "fault_summary"]


def fault_summary(counters: Mapping[str, int]) -> Dict[str, int]:
    """Condense a run's ``faults.*`` counters into the headline numbers.

    Works on any counter mapping (``RunResult.counters``,
    ``CounterSet.as_dict()``); all keys are present even when zero, so
    reports and CSV exports have a stable schema.
    """
    def total(prefix: str) -> int:
        return sum(v for k, v in counters.items() if k.startswith(prefix))

    return {
        "injected_faults": total("faults.injected."),
        "dropped_signals": total("faults.dropped."),
        "timeouts": counters.get("faults.timeouts", 0),
        "recoveries": counters.get("faults.recoveries", 0),
        "trips": counters.get("faults.trips", 0),
        "fallbacks": counters.get("faults.fallback_acquires", 0),
    }
