"""Energy accounting over a finished run.

Consumes a :class:`~repro.machine.RunResult`'s counters and produces a
component-wise energy breakdown for the full CMP — cores, L1s, L2 banks +
directory, DRAM, the main data NoC, the G-line lock network, and leakage —
the inputs to the Figure 10 ED²P comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.energy.models import EnergyModel
from repro.machine import RunResult

__all__ = ["EnergyAccount", "account_run"]


@dataclass(frozen=True)
class EnergyAccount:
    """Energy per component, in picojoules."""

    core_pj: float
    l1_pj: float
    l2_pj: float
    dram_pj: float
    noc_pj: float
    gline_pj: float
    leakage_pj: float

    @property
    def total_pj(self) -> float:
        """Full-CMP energy."""
        return (self.core_pj + self.l1_pj + self.l2_pj + self.dram_pj
                + self.noc_pj + self.gline_pj + self.leakage_pj)

    def breakdown(self) -> Dict[str, float]:
        """Component-name -> picojoules."""
        return {
            "core": self.core_pj,
            "l1": self.l1_pj,
            "l2": self.l2_pj,
            "dram": self.dram_pj,
            "noc": self.noc_pj,
            "gline": self.gline_pj,
            "leakage": self.leakage_pj,
        }


def account_counts(counters: Dict[str, int], instructions: int,
                   switch_bytes: int, byte_hops: int, elapsed_cycles: int,
                   n_cores: int, n_glocks: int,
                   model: EnergyModel | None = None) -> EnergyAccount:
    """Energy account from raw counter values.

    The building block shared by :func:`account_run` (whole parallel phase)
    and :class:`~repro.energy.power_trace.PowerSampler` (windowed deltas).
    """
    model = model or EnergyModel()
    model.validate()
    c = counters
    core_pj = instructions * model.instruction_pj
    l1_pj = c.get("l1.accesses", 0) * model.l1_access_pj
    l2_data = c.get("l2.data_accesses", 0)
    l2_dir_only = c.get("l2.accesses", 0) - l2_data
    l2_pj = (l2_data * model.l2_access_pj
             + max(l2_dir_only, 0) * model.dir_access_pj)
    dram_pj = (c.get("mem.reads", 0) + c.get("mem.writes", 0)) * model.dram_access_pj
    # NoC: every byte pays one router traversal per switch and one link hop
    noc_pj = (switch_bytes * model.router_byte_pj
              + byte_hops * model.link_byte_pj)
    gline_pj = c.get("gline.signals", 0) * model.gline_signal_pj
    leakage_pj = elapsed_cycles * (
        n_cores * model.tile_leakage_pj_per_cycle
        + n_glocks * model.gline_leakage_pj_per_cycle
    )
    return EnergyAccount(
        core_pj=core_pj,
        l1_pj=l1_pj,
        l2_pj=l2_pj,
        dram_pj=dram_pj,
        noc_pj=noc_pj,
        gline_pj=gline_pj,
        leakage_pj=leakage_pj,
    )


def account_run(result: RunResult, model: EnergyModel | None = None) -> EnergyAccount:
    """Energy account for one parallel phase."""
    return account_counts(
        counters=result.counters,
        instructions=result.instructions,
        switch_bytes=sum(result.traffic.values()),
        byte_hops=result.byte_hops,
        elapsed_cycles=result.makespan,
        n_cores=result.config.n_cores,
        n_glocks=result.config.gline.n_glocks,
        model=model,
    )
