"""Energy and power models.

The paper's Sim-PowerCMP integrates Wattch/CACTI (core + caches), HotLeakage
(static power) and Orion (NoC), plus the G-line consumption model of
Krishna et al. for the GLocks network.  We substitute a single parameterized
per-event energy table (:class:`~repro.energy.models.EnergyModel`) with
32nm-class constants that preserve the *relative* magnitudes those tools
produce — which is what the normalized ED²P comparison of Figure 10
depends on (see DESIGN.md, substitution 4).
"""

from repro.energy.accounting import EnergyAccount, account_counts, account_run
from repro.energy.power_trace import PowerSample, PowerSampler
from repro.energy.metrics import ed2p, edp
from repro.energy.models import EnergyModel

__all__ = ["EnergyModel", "EnergyAccount", "account_counts", "account_run",
           "ed2p", "edp", "PowerSample", "PowerSampler"]
