"""Energy-delay metrics.

The paper reports the energy-delay² product (ED²P) for the full CMP,
normalized to the MCS configuration — ED²P weights performance twice, so a
mechanism that both saves energy *and* shortens execution is rewarded
superlinearly.
"""

from __future__ import annotations

from repro.energy.accounting import EnergyAccount

__all__ = ["edp", "ed2p", "normalized_ratio"]


def edp(account: EnergyAccount, makespan_cycles: int) -> float:
    """Energy-delay product: E x T (pJ x cycles)."""
    return account.total_pj * makespan_cycles


def ed2p(account: EnergyAccount, makespan_cycles: int) -> float:
    """Energy-delay² product: E x T² (pJ x cycles²) — Figure 10's metric."""
    return account.total_pj * makespan_cycles ** 2


def normalized_ratio(value: float, baseline: float) -> float:
    """``value / baseline`` with a guard for degenerate baselines."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return value / baseline
