"""Windowed power sampling.

A :class:`PowerSampler` attached to a machine before ``run`` snapshots the
energy counters every ``window`` cycles; after the run,
:meth:`PowerSampler.power_series` yields average power per window (in
watts, using the chip's 3GHz clock).  This exposes the *temporal* side of
the energy story — e.g. ACTR's alternation between a lock-storm phase
(NoC power spike under MCS) and a barrier phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.energy.accounting import account_counts
from repro.energy.models import CYCLE_SECONDS, EnergyModel
from repro.machine import Machine

__all__ = ["PowerSample", "PowerSampler"]

PICO = 1e-12


@dataclass(frozen=True)
class PowerSample:
    """Average power over one window."""

    start_cycle: int
    end_cycle: int
    energy_pj: float

    @property
    def watts(self) -> float:
        """Average power over the window in watts."""
        seconds = (self.end_cycle - self.start_cycle) * CYCLE_SECONDS
        return self.energy_pj * PICO / seconds if seconds > 0 else 0.0


class PowerSampler:
    """Samples a machine's cumulative energy every ``window`` cycles."""

    def __init__(self, machine: Machine, window: int = 5000,
                 model: Optional[EnergyModel] = None) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        self.machine = machine
        self.window = window
        self.model = model or EnergyModel()
        self._snapshots: List[tuple] = []
        self._attached = False

    def attach(self) -> None:
        """Start sampling; call before ``machine.run``."""
        if self._attached:
            raise RuntimeError("sampler already attached")
        self._attached = True
        self._take_snapshot()
        self.machine.sim.spawn(self._poll(), name="power-sampler")

    def _poll(self):
        while True:
            yield self.window
            self._take_snapshot()

    def _cumulative_energy(self) -> float:
        m = self.machine
        account = account_counts(
            counters=m.counters.as_dict(),
            instructions=sum(core.instructions for core in m.cores),
            switch_bytes=m.mem.traffic.switch_bytes(),
            byte_hops=m.mem.traffic.byte_hops,
            elapsed_cycles=m.sim.now,
            n_cores=m.config.n_cores,
            n_glocks=m.config.gline.n_glocks,
            model=self.model,
        )
        return account.total_pj

    def _take_snapshot(self) -> None:
        self._snapshots.append((self.machine.sim.now, self._cumulative_energy()))

    def power_series(self) -> List[PowerSample]:
        """Per-window average power (skips zero-length windows)."""
        samples = []
        for (t0, e0), (t1, e1) in zip(self._snapshots, self._snapshots[1:]):
            if t1 > t0:
                samples.append(PowerSample(t0, t1, e1 - e0))
        return samples

    @property
    def n_snapshots(self) -> int:
        return len(self._snapshots)
