"""Per-event energy table.

Constants are picojoules per event, drawn from the published ranges for
32/45nm-class designs that the paper's toolchain (Wattch/CACTI/Orion and the
G-line model of Krishna et al.) reports:

- a simple in-order core burns ~10-20 pJ per instruction;
- a 32KB L1 access is a few pJ; a 256KB L2 bank access ~3-5x that;
- DRAM access dominates everything (~nJ scale);
- a router traversal is ~0.5-1 pJ/byte and a 1mm link ~0.1-0.2 pJ/byte
  (Orion 2.0 numbers);
- a G-line broadcast is sub-pJ per signal (capacitive feed-forward wires —
  Ho et al., Mensink et al. — are the technology's selling point);
- leakage is charged per structure per cycle.

Only the *ratios* matter for the paper's normalized ED²P results; the test
suite pins the orderings (DRAM >> L2 > L1 > G-line, router+link per byte in
between) so an edit that breaks the hierarchy fails loudly.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EnergyModel"]

#: 3GHz clock -> cycle time in seconds (used by metrics helpers)
CYCLE_SECONDS = 1.0 / 3.0e9


@dataclass(frozen=True)
class EnergyModel:
    """Per-event dynamic energies (picojoules) and per-cycle leakage."""

    # dynamic, per event
    instruction_pj: float = 12.0     # core pipeline energy per instruction
    l1_access_pj: float = 4.0        # 32KB 4-way read/write
    l2_access_pj: float = 18.0       # 256KB bank access (tag+data)
    dir_access_pj: float = 3.0       # directory-state-only operation
    dram_access_pj: float = 2500.0   # off-chip access
    router_byte_pj: float = 0.8      # per byte per router traversal
    link_byte_pj: float = 0.15       # per byte per link hop
    gline_signal_pj: float = 0.3     # one 1-bit G-line broadcast

    # leakage, per core-tile per cycle (core + L1 + L2 slice + router share)
    tile_leakage_pj_per_cycle: float = 1.6
    # leakage of one GLock network per cycle (controllers + wires)
    gline_leakage_pj_per_cycle: float = 0.02

    def validate(self) -> None:
        """Assert the orderings the ED²P comparison relies on."""
        if not (self.dram_access_pj > self.l2_access_pj > self.l1_access_pj):
            raise ValueError("memory-hierarchy energy ordering violated")
        if not (self.gline_signal_pj < self.l1_access_pj):
            raise ValueError("a G-line signal must be cheaper than an L1 access")
        if min(
            self.instruction_pj, self.l1_access_pj, self.l2_access_pj,
            self.dir_access_pj, self.dram_access_pj, self.router_byte_pj,
            self.link_byte_pj, self.gline_signal_pj,
            self.tile_leakage_pj_per_cycle, self.gline_leakage_pj_per_cycle,
        ) < 0:
            raise ValueError("energies must be non-negative")
