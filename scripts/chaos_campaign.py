#!/usr/bin/env python
"""Self-asserting chaos campaign for CI.

Runs a seeded crash/hang/poison shim through the campaign supervisor and
checks the whole robustness story end to end:

1. **collect pass** — every healthy spec completes, the crash-once and
   hang-once specs recover (retry after a worker kill / timeout), and the
   poison spec is quarantined after ``quarantine_threshold`` solo kills —
   nothing escapes the supervisor;
2. **resume pass** — re-running the campaign from its manifest executes
   zero specs: done results come from the disk cache, the poison spec
   stays parked.

Exit code 0 and the final ``CHAOS CAMPAIGN OK`` line mean both passes
held.  Usage::

    PYTHONPATH=src python scripts/chaos_campaign.py
"""

import json
import os
import signal
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.runner import Engine, RunSpec, Supervisor  # noqa: E402
from repro.runner.outcome import OK, QUARANTINED  # noqa: E402

SCRATCH_ENV = "REPRO_CHAOS_SCRATCH"


def chaos_execute(spec):
    """Worker entry point: behavior is encoded in the spec itself."""
    params = dict(spec.workload_params)
    behavior = params.get("behavior", "ok")
    marker = (Path(os.environ[SCRATCH_ENV])
              / f"{behavior}-{params.get('idx', 0)}.marker")
    if behavior == "poison":
        os.kill(os.getpid(), signal.SIGKILL)
    elif behavior == "crash_once" and not marker.exists():
        marker.write_text("x")
        os.kill(os.getpid(), signal.SIGKILL)
    elif behavior == "hang_once" and not marker.exists():
        marker.write_text("x")
        time.sleep(300)
    return f"ok:{behavior}:{params.get('idx', 0)}"


def spec_for(behavior, idx=0):
    return RunSpec(workload="synth", hc_kind="tatas",
                   workload_params={"behavior": behavior, "idx": idx})


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="chaos-campaign-"))
    scratch = workdir / "scratch"
    scratch.mkdir()
    os.environ[SCRATCH_ENV] = str(scratch)
    cache_dir = str(workdir / "cache")
    manifest_path = workdir / "campaign.json"

    specs = ([spec_for("ok", i) for i in range(4)]
             + [spec_for("poison"), spec_for("crash_once"),
                spec_for("hang_once")])

    # ---- pass 1: seeded chaos under fail_policy="collect" -------------
    engine = Engine(jobs=2, timeout=3.0, retries=1,
                    execute_fn=chaos_execute, cache_dir=cache_dir)
    supervisor = Supervisor(engine, fail_policy="collect",
                            quarantine_threshold=2, backoff_base=0.05,
                            backoff_cap=0.2, manifest_path=manifest_path)
    result = supervisor.run_campaign(specs)
    print(engine.summary())
    print(supervisor.summary())

    by_behavior = {dict(o.spec.workload_params)["behavior"]: o
                   for o in result.outcomes}
    assert len(result.outcomes) == len(specs), "an outcome per spec"
    for i in range(4):
        outcome = result.outcomes[i]
        assert outcome.status == OK, f"healthy spec {i}: {outcome.describe()}"
    assert by_behavior["crash_once"].status == OK, "crash-once must recover"
    assert by_behavior["hang_once"].status == OK, "hang-once must recover"
    assert by_behavior["poison"].status == QUARANTINED, \
        f"poison must be quarantined: {by_behavior['poison'].describe()}"
    assert by_behavior["poison"].kills >= 2
    assert supervisor.pool_deaths >= 1, "the kills must be visible in stats"

    quarantine_file = Path(str(manifest_path) + ".quarantine.json")
    parked = json.loads(quarantine_file.read_text())
    assert [e["digest"] for e in parked] == [by_behavior["poison"].digest]
    print(f"pass 1 ok: {len(result.ok)} completed, "
          f"{len(result.quarantined)} quarantined "
          f"(pool_deaths={supervisor.pool_deaths}, "
          f"timeout_kills={supervisor.timeout_kills})")

    # ---- pass 2: --resume executes nothing ----------------------------
    engine2 = Engine(jobs=2, timeout=3.0, retries=1,
                     execute_fn=chaos_execute, cache_dir=cache_dir)
    supervisor2 = Supervisor(engine2, resume_from=manifest_path)
    resumed = supervisor2.run_campaign(specs)
    print(engine2.summary())
    print(supervisor2.summary())

    assert engine2.stats.executed == 0, \
        f"resume must execute nothing, ran {engine2.stats.executed}"
    assert [o.status for o in resumed.outcomes] \
        == [o.status for o in result.outcomes], "resume preserves outcomes"
    assert resumed.outcomes[4].status == QUARANTINED, \
        "quarantine must survive resume"
    print(f"pass 2 ok: resume executed 0 specs, "
          f"{engine2.stats.disk_hits} served from cache")

    print("CHAOS CAMPAIGN OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
