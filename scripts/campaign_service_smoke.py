#!/usr/bin/env python
"""CI smoke test for the campaign service daemon.

Boots `repro-sim serve` as a subprocess, submits the same campaign from
two concurrent HTTP clients, and asserts the service contract:

1. both jobs finish `done` and together execute the matrix exactly once
   (the second submission is served entirely from the shared warm cache,
   `executed == 0`);
2. both clients download byte-identical JSONL;
3. the daemon's published JSONL is byte-identical to an inline
   `campaign run --publish` of the same file — the daemon is a cache and
   a queue, never a different answer.

Exit 0 on success, 1 with a one-line FAILED message otherwise.
"""

import os
import pathlib
import subprocess
import sys
import tempfile
import threading
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

ENV = dict(os.environ)
ENV["PYTHONPATH"] = str(REPO / "src") + os.pathsep + ENV.get("PYTHONPATH", "")

from repro.runner.service import http_get_json, http_get_text, http_submit

CAMPAIGN = REPO / "examples" / "campaign_smoke.yaml"
HOST = "127.0.0.1"
PORT = 8642


def wait_ready(url, deadline=30.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        try:
            if http_get_text(url, "/healthz").strip() == "ok":
                return
        except OSError:
            time.sleep(0.2)
    raise RuntimeError(f"daemon at {url} never became healthy")


def wait_done(url, job_id, deadline=120.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        status = http_get_json(url, f"/jobs/{job_id}")
        if status["status"] in ("done", "failed"):
            return status
        time.sleep(0.2)
    raise RuntimeError(f"{job_id} never finished")


def main():
    yaml_text = CAMPAIGN.read_text()
    with tempfile.TemporaryDirectory() as tmp:
        tmp = pathlib.Path(tmp)
        url = f"http://{HOST}:{PORT}"
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--host", HOST, "--port", str(PORT),
             "--cache-dir", str(tmp / "cache"),
             "--results-dir", str(tmp / "results")],
            cwd=REPO, env=ENV,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        try:
            wait_ready(url)

            replies = {}

            def client(name):
                replies[name] = http_submit(url, yaml_text)

            threads = [threading.Thread(target=client, args=(name,))
                       for name in ("a", "b")]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            stats = {name: wait_done(url, reply["job"])
                     for name, reply in replies.items()}
            for name, status in stats.items():
                assert status["status"] == "done", (
                    f"client {name}: {status}")
            n_specs = replies["a"]["specs"]
            executed = sorted(s["executed"] for s in stats.values())
            assert executed == [0, n_specs], (
                f"expected one cold + one warm job, got executed={executed}")
            warm = next(s for s in stats.values() if s["executed"] == 0)
            assert warm["cache_hits"] == n_specs, warm

            bodies = [http_get_text(url, f"/jobs/{r['job']}/results")
                      for r in replies.values()]
            assert bodies[0] == bodies[1], "clients saw different results"
        finally:
            daemon.terminate()
            daemon.wait(timeout=15)

        # Reference: the same campaign published by an inline CLI run.
        inline = tmp / "inline.jsonl"
        subprocess.run(
            [sys.executable, "-m", "repro.cli", "campaign", "run",
             str(CAMPAIGN), "--backend", "inline", "--no-cache",
             "--publish", str(inline)],
            cwd=REPO, env=ENV, check=True, stdout=subprocess.DEVNULL)
        assert inline.read_text() == bodies[0], (
            "daemon JSONL differs from inline campaign run")

    print(f"campaign-service smoke OK: {n_specs} specs, "
          f"second client warm (executed=0), JSONL byte-identical to inline")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except (AssertionError, RuntimeError) as exc:
        print(f"FAILED: {exc}")
        sys.exit(1)
