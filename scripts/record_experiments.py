"""Run every experiment at full paper scale and print a results digest.

Used to produce the paper-vs-measured tables in EXPERIMENTS.md::

    python scripts/record_experiments.py [--scale 1.0] [--cores 32]

Takes on the order of tens of minutes at full scale (the TATAS post-mortem
runs of Figures 1 and 7 simulate thundering herds cycle by cycle).
"""

import argparse
import json
import os
import sys
import time

from repro.cli import DEFAULT_CACHE_DIR
from repro.experiments import (
    fig01_ideal, fig07_contention, fig08_exectime, fig09_traffic,
    fig10_ed2p, table1_cost, table4_speedup,
)
from repro.runner import Engine, use_engine


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--cores", type=int, default=32)
    parser.add_argument("--json", type=str, default="",
                        help="also dump a machine-readable digest here")
    parser.add_argument("--csv-dir", type=str, default="",
                        help="also export per-figure CSV files here")
    parser.add_argument("--jobs", type=int, default=1,
                        help="simulator runs to execute in parallel")
    parser.add_argument("--cache-dir", type=str, default="",
                        help="persistent result cache (default: "
                             "$REPRO_SIM_CACHE_DIR or ~/.cache/repro-sim)")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the on-disk result cache entirely")
    args = parser.parse_args()
    if args.no_cache:
        cache_dir = None
    else:
        cache_dir = os.path.expanduser(
            args.cache_dir or os.environ.get("REPRO_SIM_CACHE_DIR")
            or DEFAULT_CACHE_DIR)
    engine = Engine(jobs=args.jobs, cache_dir=cache_dir)
    digest = {}

    def stage(name, fn, render):
        t0 = time.time()
        print(f"=== {name} ===", flush=True)
        with use_engine(engine):
            results = fn()
        print(render(results))
        print(f"[{name}: {time.time() - t0:.0f}s]\n", flush=True)
        return results

    r1 = stage("Table I", lambda: table1_cost.run(49), table1_cost.render)
    digest["table1"] = {"measured": r1["measured"]}

    r7 = stage("Figure 7",
               lambda: fig07_contention.run(scale=args.scale, n_cores=args.cores),
               fig07_contention.render)
    digest["fig7"] = {
        name: {label: p.aggregate_rate(21) for label, p in profiles.items()}
        for name, profiles in r7.items()
    }

    r8 = stage("Figure 8",
               lambda: fig08_exectime.run(scale=args.scale, n_cores=args.cores),
               fig08_exectime.render)
    digest["fig8"] = {"ratios": r8["ratios"], "averages": r8["averages"]}

    r9 = stage("Figure 9",
               lambda: fig09_traffic.run(scale=args.scale, n_cores=args.cores),
               fig09_traffic.render)
    digest["fig9"] = {"ratios": r9["ratios"], "averages": r9["averages"]}

    r10 = stage("Figure 10",
                lambda: fig10_ed2p.run(scale=args.scale, n_cores=args.cores),
                fig10_ed2p.render)
    digest["fig10"] = {
        "ratios": {k: v["GL"] for k, v in r10["bars"].items()},
        "averages": r10["averages"],
    }

    r4 = stage("Table IV",
               lambda: table4_speedup.run(scale=args.scale),
               table4_speedup.render)
    digest["table4"] = {f"{n}/{l}": sp for (n, l), sp in r4.items()}

    r01 = stage("Figure 1",
                lambda: fig01_ideal.run(scale=args.scale, n_cores=args.cores),
                fig01_ideal.render)
    digest["fig1"] = {cfg: v["normalized_time"] for cfg, v in r01.items()}

    if args.csv_dir:
        from repro.analysis.export import export_bars, export_series

        export_bars(f"{args.csv_dir}/fig08_time.csv", r8["bars"])
        export_bars(f"{args.csv_dir}/fig09_traffic.csv", r9["bars"])
        export_series(f"{args.csv_dir}/fig10_ed2p.csv",
                      {k: v["GL"] for k, v in r10["bars"].items()},
                      key_name="benchmark", value_name="gl_ed2p_ratio")
        export_series(f"{args.csv_dir}/fig01_ideal.csv",
                      {cfg: v["normalized_time"] for cfg, v in r01.items()},
                      key_name="config", value_name="normalized_time")
        print(f"CSV files written to {args.csv_dir}/")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(digest, fh, indent=2, default=float)
        print(f"digest written to {args.json}")
        # paper-vs-measured validation over the digest we just wrote
        from repro.experiments import validate

        print()
        print(validate.render(validate.run(args.json)))
    print(engine.summary())
    return 0


if __name__ == "__main__":
    sys.exit(main())
